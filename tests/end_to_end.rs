//! End-to-end integration: generator → zoo → ground truth → training →
//! scheduling, across every crate boundary.

use ams::prelude::*;

fn pipeline() -> (ModelZoo, Dataset, TruthTable, TrainedAgent) {
    let zoo = ModelZoo::standard();
    let catalog = zoo.catalog();
    let dataset = Dataset::generate(DatasetProfile::Coco2017, 100, 4242);
    let truth = TruthTable::build(&zoo, &catalog, &dataset, 0.5);
    let split = dataset.split_1_to_4();
    let (train_items, _) = truth.split(split);
    let cfg = TrainConfig {
        episodes: 60,
        ..TrainConfig::fast_test(Algo::DuelingDqn)
    };
    let (agent, _) = train(train_items, zoo.len(), &cfg);
    (zoo, dataset, truth, agent)
}

#[test]
fn full_pipeline_under_all_budgets() {
    let (zoo, dataset, truth, agent) = pipeline();
    let scheduler = AdaptiveModelScheduler::new(
        zoo,
        Box::new(AgentPredictor::new(agent)),
        0.5,
        dataset.world_seed,
    );
    let split = dataset.split_1_to_4();
    let (_, test_items) = truth.split(split);

    for item in test_items.iter().take(10) {
        let unconstrained = scheduler.label_item(item, Budget::Unconstrained);
        let deadline = scheduler.label_item(item, Budget::Deadline { ms: 1000 });
        let memory = scheduler.label_item(
            item,
            Budget::DeadlineMemory {
                ms: 1000,
                mem_mb: 12288,
            },
        );

        assert!(deadline.elapsed_ms <= 1000);
        assert!(memory.elapsed_ms <= 1000);
        for out in [&unconstrained, &deadline, &memory] {
            assert!(out.recall >= 0.0 && out.recall <= 1.0 + 1e-9);
            assert!(out.value <= item.total_value + 1e-9);
            // labels are sorted, valuable, and consistent with recall
            for w in out.labels.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
            if out.recall > 0.0 {
                assert!(!out.labels.is_empty());
            }
        }
        // a looser budget never recalls less under the same policy family
        let tight = scheduler.label_item(item, Budget::Deadline { ms: 300 });
        assert!(deadline.recall >= tight.recall - 1e-9);
    }
}

#[test]
fn label_scene_matches_label_item() {
    let (zoo, dataset, truth, agent) = pipeline();
    let scheduler = AdaptiveModelScheduler::new(
        zoo,
        Box::new(AgentPredictor::new(agent)),
        0.5,
        dataset.world_seed,
    );
    // label_scene rebuilds the same deterministic outputs as the table row
    let idx = 30usize;
    let via_scene = scheduler.label_scene(&dataset.scenes[idx], Budget::Deadline { ms: 2000 });
    let via_item = scheduler.label_item(truth.item(idx), Budget::Deadline { ms: 2000 });
    assert_eq!(via_scene.executed, via_item.executed);
    assert_eq!(via_scene.labels.len(), via_item.labels.len());
    assert!((via_scene.recall - via_item.recall).abs() < 1e-12);
}

#[test]
fn cross_dataset_truth_tables_are_independent() {
    let zoo = ModelZoo::standard();
    let catalog = zoo.catalog();
    let a = Dataset::generate(DatasetProfile::Places365, 40, 1);
    let b = Dataset::generate(DatasetProfile::Stanford40, 40, 1);
    let ta = TruthTable::build(&zoo, &catalog, &a, 0.5);
    let tb = TruthTable::build(&zoo, &catalog, &b, 0.5);
    // person-heavy Stanford40 items should, on average, have more valuable
    // models than scene-centric Places365 items
    let avg = |t: &TruthTable| {
        t.items()
            .iter()
            .map(|i| i.valuable_models(0.5).len())
            .sum::<usize>() as f64
            / t.len() as f64
    };
    assert!(
        avg(&tb) > avg(&ta),
        "Stanford40 ({:.1}) should need more models than Places365 ({:.1})",
        avg(&tb),
        avg(&ta)
    );
}

#[test]
fn relation_graph_integrates_with_scheduler() {
    let zoo = ModelZoo::standard();
    let catalog = zoo.catalog();
    let dataset = Dataset::generate(DatasetProfile::Coco2017, 120, 9);
    let truth = TruthTable::build(&zoo, &catalog, &dataset, 0.5);
    let split = dataset.split_1_to_4();
    let (train_items, test_items) = truth.split(split);
    let graph = ModelRelationGraph::build(train_items, zoo.len(), catalog.len(), 0.5);
    let scheduler = AdaptiveModelScheduler::new(
        zoo,
        Box::new(GraphPredictor::new(graph)),
        0.5,
        dataset.world_seed,
    );
    let out = scheduler.label_item(&test_items[0], Budget::Deadline { ms: 1500 });
    assert!(out.elapsed_ms <= 1500);
}
