//! Integration tests of the training pipeline: the four schemas, END-action
//! behaviour, θ priorities, and determinism across the crate boundary.

use ams::prelude::*;

fn truth(n: usize, seed: u64) -> (ModelZoo, TruthTable) {
    let zoo = ModelZoo::standard();
    let ds = Dataset::generate(DatasetProfile::Coco2017, n, seed);
    let table = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
    (zoo, table)
}

#[test]
fn four_schemas_produce_working_predictors() {
    let (zoo, table) = truth(60, 3);
    for algo in Algo::ALL {
        let cfg = TrainConfig {
            episodes: 50,
            ..TrainConfig::fast_test(algo)
        };
        let (agent, stats) = train(table.items(), zoo.len(), &cfg);
        assert!(stats.learn_steps > 0, "{algo}");
        // the agent must plug into the scheduler stack and respect budgets
        let predictor = AgentPredictor::new(agent);
        let r = schedule_deadline(&predictor, &zoo, table.item(0), 1500, 0.5);
        assert!(r.elapsed_ms <= 1500, "{algo}");
    }
}

#[test]
fn end_action_lets_episodes_stop_early() {
    let (_, table) = truth(60, 5);
    let with_end = TrainConfig {
        episodes: 120,
        ..TrainConfig::fast_test(Algo::Dqn)
    };
    let without_end = TrainConfig {
        use_end_action: false,
        ..with_end.clone()
    };
    let (_, s_with) = train(table.items(), 30, &with_end);
    let (_, s_without) = train(table.items(), 30, &without_end);
    // without END every episode runs all 30 models; with END the trained
    // agent learns to terminate, so late episodes are shorter on average
    assert!(s_without.episode_lengths.iter().all(|&l| l == 30));
    let late_with: f64 = s_with.episode_lengths[80..]
        .iter()
        .map(|&l| l as f64)
        .sum::<f64>()
        / 40.0;
    assert!(
        late_with < 30.0,
        "END action should shorten late episodes (avg {late_with:.1})"
    );
}

#[test]
fn theta_priority_shifts_reward_toward_model() {
    let (_, table) = truth(60, 7);
    let face = ModelId(6); // face-det-flagship
    let base = RewardConfig::default();
    let boosted = RewardConfig::default().with_theta(face, 10.0, 30);
    // same item, same new labels: boosted θ yields strictly larger reward
    let item = table
        .items()
        .iter()
        .find(|it| it.model_value[face.index()] > 0.0)
        .expect("an item where the face detector is valuable");
    let mut env_base = LabelingEnv::new(item, &base, 30, true);
    let mut env_boost = LabelingEnv::new(item, &boosted, 30, true);
    let r_base = env_base.step(face.index()).reward;
    let r_boost = env_boost.step(face.index()).reward;
    assert!(r_boost > r_base);
}

#[test]
fn training_is_reproducible_across_calls() {
    let (_, table) = truth(40, 11);
    let cfg = TrainConfig {
        episodes: 25,
        ..TrainConfig::fast_test(Algo::DoubleDqn)
    };
    let (a, sa) = train(table.items(), 30, &cfg);
    let (b, sb) = train(table.items(), 30, &cfg);
    assert_eq!(sa.episode_rewards, sb.episode_rewards);
    assert_eq!(sa.steps, sb.steps);
    let qa = a.q_values(&[10, 90, 400]);
    let qb = b.q_values(&[10, 90, 400]);
    for (x, y) in qa.iter().zip(&qb) {
        assert!((x - y).abs() < 1e-7);
    }
}

#[test]
fn eval_metrics_consistent_with_rollouts() {
    let (zoo, table) = truth(50, 13);
    let cfg = TrainConfig {
        episodes: 40,
        ..TrainConfig::fast_test(Algo::Dqn)
    };
    let (agent, _) = train(table.items(), zoo.len(), &cfg);
    let summary = evaluate_q_greedy(&agent, &zoo, table.items(), 0.7, 0.5);
    assert!(summary.avg_recall >= 0.7 - 1e-9);
    assert!(summary.avg_models >= 1.0);
    assert!(summary.avg_time_s > 0.0);
}
