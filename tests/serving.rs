//! End-to-end serving integration: the full deployable pipeline — trained
//! DRL agent → adaptive scheduler → sharded serving front-end — must
//! produce exactly the statistics the serial stream engine does over the
//! same item stream when backpressure never triggers, while the batched
//! admission layer compresses virtual execution cost.

use ams::prelude::*;
use std::sync::Arc;

fn pipeline() -> (TruthTable, TrainedAgent, u64) {
    let zoo = ModelZoo::standard();
    let dataset = Dataset::generate(DatasetProfile::Coco2017, 36, 2026);
    let truth = TruthTable::build(&zoo, &zoo.catalog(), &dataset, 0.5);
    let cfg = TrainConfig {
        episodes: 16,
        ..TrainConfig::fast_test(Algo::Dqn)
    };
    let (agent, _) = train(truth.items(), zoo.len(), &cfg);
    (truth, agent, dataset.world_seed)
}

fn scheduler_for(agent: TrainedAgent, world_seed: u64) -> AdaptiveModelScheduler {
    AdaptiveModelScheduler::new(
        ModelZoo::standard(),
        Box::new(AgentPredictor::new(agent)),
        0.5,
        world_seed,
    )
}

#[test]
fn served_agent_pipeline_matches_serial_engine() {
    let (truth, agent, world_seed) = pipeline();
    let budget = Budget::Deadline { ms: 800 };

    let mut serial = StreamProcessor::new(scheduler_for(agent.clone(), world_seed), budget);
    serial.process_all(truth.items());
    let want = serial.stats().clone();

    let cfg = ServeConfig {
        shards: 3,
        workers_per_shard: 2,
        max_batch: 4,
        policy: BackpressurePolicy::Block,
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler_for(agent, world_seed), budget, cfg);
    for item in truth.items() {
        assert_ne!(
            server.submit(Arc::new(item.clone())),
            SubmitOutcome::Rejected,
            "lossless serving config must accept every request"
        );
    }
    let report = server.shutdown();

    // Nothing shed → serve-mode stats are the serial engine's, exactly.
    assert!(report.is_conserved());
    assert_eq!(report.completed, want.items as u64);
    assert_eq!(
        report.rejected + report.shed_oldest + report.shed_deadline,
        0
    );
    assert_eq!(report.stats.items, want.items);
    assert_eq!(report.stats.total_exec_ms, want.total_exec_ms);
    assert_eq!(report.stats.total_executions, want.total_executions);
    assert_eq!(report.stats.per_model_runs, want.per_model_runs);
    assert_eq!(report.stats.low_recall_items, want.low_recall_items);
    assert!((report.stats.recall_sum - want.recall_sum).abs() < 1e-9);
    assert!((report.stats.value_sum - want.value_sum).abs() < 1e-9);
    assert!((report.stats.mean_recall() - want.mean_recall()).abs() < 1e-12);

    // Batched admission only compresses the virtual execution bill.
    assert!(report.virtual_exec_ms > 0);
    assert!(report.virtual_exec_ms <= report.stats.total_exec_ms);

    // Telemetry covered every request with a coherent wait/execute split.
    assert_eq!(report.total.count, want.items as u64);
    assert_eq!(report.queue_wait.count, report.execute.count);
    assert!(report.total.max_us >= report.execute.max_us);
    assert!(report.total.p99_us >= report.total.p50_us);
}

#[test]
fn served_report_survives_json_round_trip() {
    let (truth, agent, world_seed) = pipeline();
    let budget = Budget::Deadline { ms: 800 };
    let server = AmsServer::start(
        scheduler_for(agent, world_seed),
        budget,
        ServeConfig::default(),
    );
    for item in truth.items().iter().take(12) {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let back: ServeReport = serde_json::from_str(&json).expect("report parses");
    assert_eq!(back.completed, report.completed);
    assert_eq!(back.stats.per_model_runs, report.stats.per_model_runs);
    assert_eq!(back.total.p99_us, report.total.p99_us);
    assert!((back.shed_rate() - report.shed_rate()).abs() < 1e-12);
}
