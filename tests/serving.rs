//! End-to-end serving integration: the full deployable pipeline — trained
//! DRL agent → adaptive scheduler → sharded serving front-end — must
//! produce exactly the statistics the serial stream engine does over the
//! same item stream when backpressure never triggers, while the batched
//! admission layer compresses virtual execution cost.

use ams::prelude::*;
use std::sync::Arc;

fn pipeline() -> (TruthTable, TrainedAgent, u64) {
    let zoo = ModelZoo::standard();
    let dataset = Dataset::generate(DatasetProfile::Coco2017, 36, 2026);
    let truth = TruthTable::build(&zoo, &zoo.catalog(), &dataset, 0.5);
    let cfg = TrainConfig {
        episodes: 16,
        ..TrainConfig::fast_test(Algo::Dqn)
    };
    let (agent, _) = train(truth.items(), zoo.len(), &cfg);
    (truth, agent, dataset.world_seed)
}

fn scheduler_for(agent: TrainedAgent, world_seed: u64) -> AdaptiveModelScheduler {
    AdaptiveModelScheduler::new(
        ModelZoo::standard(),
        Box::new(AgentPredictor::new(agent)),
        0.5,
        world_seed,
    )
}

#[test]
fn served_agent_pipeline_matches_serial_engine() {
    let (truth, agent, world_seed) = pipeline();
    let budget = Budget::Deadline { ms: 800 };

    let mut serial = StreamProcessor::new(scheduler_for(agent.clone(), world_seed), budget);
    serial.process_all(truth.items());
    let want = serial.stats().clone();

    let cfg = ServeConfig {
        shards: 3,
        workers_per_shard: 2,
        max_batch: 4,
        policy: BackpressurePolicy::Block,
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler_for(agent, world_seed), budget, cfg);
    let client = server.client();
    let mut tickets = Vec::new();
    for item in truth.items() {
        tickets.push(
            client
                .submit(Arc::new(item.clone()))
                .ticket()
                .expect("lossless serving config must accept every request"),
        );
    }
    // Per-request delivery: exactly one Labeled event per ticket, summing
    // to the serial engine's aggregate story.
    let mut delivered = 0u64;
    let mut value_sum = 0.0f64;
    let mut recall_sum = 0.0f64;
    while let Some(ev) = client.recv() {
        let result = ev.labeled().expect("lossless run only labels");
        value_sum += result.label_value;
        recall_sum += result.recall;
        delivered += 1;
    }
    assert_eq!(delivered, tickets.len() as u64);
    assert!((value_sum - want.value_sum).abs() < 1e-9);
    assert!((recall_sum - want.recall_sum).abs() < 1e-9);
    let report = server.shutdown();

    // Nothing shed → serve-mode stats are the serial engine's, exactly.
    assert!(report.is_conserved());
    assert_eq!(report.completed, want.items as u64);
    assert_eq!(
        report.rejected + report.shed_oldest + report.shed_deadline,
        0
    );
    assert_eq!(report.stats.items, want.items);
    assert_eq!(report.stats.total_exec_ms, want.total_exec_ms);
    assert_eq!(report.stats.total_executions, want.total_executions);
    assert_eq!(report.stats.per_model_runs, want.per_model_runs);
    assert_eq!(report.stats.low_recall_items, want.low_recall_items);
    assert!((report.stats.recall_sum - want.recall_sum).abs() < 1e-9);
    assert!((report.stats.value_sum - want.value_sum).abs() < 1e-9);
    assert!((report.stats.mean_recall() - want.mean_recall()).abs() < 1e-12);

    // Batched admission only compresses the virtual execution bill.
    assert!(report.virtual_exec_ms > 0);
    assert!(report.virtual_exec_ms <= report.stats.total_exec_ms);

    // Telemetry covered every request with a coherent wait/execute split.
    assert_eq!(report.total.count, want.items as u64);
    assert_eq!(report.queue_wait.count, report.execute.count);
    assert!(report.total.max_us >= report.execute.max_us);
    assert!(report.total.p99_us >= report.total.p50_us);
}

/// The full pipeline under affinity routing + adaptive batching: labeling
/// results stay exactly serial, the router accounts every request, and
/// the controller publishes a coherent trajectory.
#[test]
fn served_pipeline_with_affinity_and_adaptive_matches_serial() {
    let (truth, agent, world_seed) = pipeline();
    let budget = Budget::Deadline { ms: 800 };

    let mut serial = StreamProcessor::new(scheduler_for(agent.clone(), world_seed), budget);
    serial.process_all(truth.items());
    let want = serial.stats().clone();

    let cfg = ServeConfig {
        shards: 2,
        workers_per_shard: 1,
        max_batch: 4,
        policy: BackpressurePolicy::Block,
        routing: RoutingMode::Affinity(AffinityConfig::default()),
        adaptive: Some(AdaptiveBatchConfig {
            target_p99_ms: 10_000,
            min_batch: 1,
            max_batch: 8,
            window: 6,
            ..AdaptiveBatchConfig::default()
        }),
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler_for(agent, world_seed), budget, cfg);
    for item in truth.items() {
        assert_ne!(
            server.submit(Arc::new(item.clone())),
            SubmitOutcome::Rejected,
            "lossless affinity config must accept every request"
        );
    }
    let report = server.shutdown();

    assert!(report.is_conserved());
    assert_eq!(report.completed, want.items as u64);
    assert_eq!(report.stats.per_model_runs, want.per_model_runs);
    assert_eq!(report.stats.total_exec_ms, want.total_exec_ms);
    assert!((report.stats.recall_sum - want.recall_sum).abs() < 1e-9);

    // Router ledger: every submission routed exactly once.
    assert_eq!(report.routing, "affinity");
    assert_eq!(
        report.affinity_hits + report.affinity_spills,
        report.offered
    );
    // Coalescing metrics are well-formed.
    assert!(report.model_invocations > 0);
    assert!(report.mean_coalesced() >= 1.0);
    assert!(report.mean_batch_size() >= 1.0);

    // Controller ran and its report is internally consistent.
    let adaptive = report
        .adaptive
        .as_ref()
        .expect("adaptive controller configured");
    assert_eq!(adaptive.shards.len(), 2);
    for shard in &adaptive.shards {
        assert!(shard.final_max_batch >= 1 && shard.final_max_batch <= 8);
        assert_eq!(shard.trajectory.len(), shard.adjustments as usize);
    }

    // And the full report (with the new fields) survives serde.
    let json = serde_json::to_string(&report).expect("report serializes");
    let back: ServeReport = serde_json::from_str(&json).expect("report parses");
    assert_eq!(back.routing, report.routing);
    assert_eq!(back.affinity_hits, report.affinity_hits);
    assert_eq!(back.model_invocations, report.model_invocations);
    let back_adaptive = back.adaptive.expect("adaptive survives serde");
    assert_eq!(
        back_adaptive.shards[0].trajectory,
        report.adaptive.as_ref().unwrap().shards[0].trajectory
    );
}

/// The deployable pipeline under SLO-aware serving: a trained agent behind
/// admission control, value-weighted shedding, and EDF dequeue still
/// accounts every request exactly once, and the per-class value ledger
/// sums to the report's aggregate story.
#[test]
fn served_pipeline_with_slo_classes_keeps_the_ledger_exact() {
    let (truth, agent, world_seed) = pipeline();
    let budget = Budget::Deadline { ms: 800 };
    let cfg = ServeConfig {
        shards: 2,
        workers_per_shard: 1,
        queue_capacity: 4,
        max_batch: 4,
        policy: BackpressurePolicy::ShedOldest,
        routing: RoutingMode::Affinity(AffinityConfig::default()),
        exec_emulation_scale: 1e-2,
        slo: Some(SloConfig::aware(vec![
            SloClass::new("interactive", 30, 4.0),
            SloClass::new("bulk", 5_000, 1.0),
        ])),
        ..ServeConfig::default()
    };
    let server = AmsServer::start(scheduler_for(agent, world_seed), budget, cfg);
    let client = server.client();
    let mut issued = 0u64;
    for (i, item) in truth.items().iter().enumerate() {
        let outcome = client.submit_class(Arc::new(item.clone()), i % 2);
        issued += u64::from(!outcome.is_rejected());
        // Cancel a straggler mid-stream: the ledger must absorb the race
        // (either the cancel wins, or the request resolves normally).
        if i == 20 {
            if let Some(ticket) = outcome.as_ticket() {
                ticket.cancel();
            }
        }
    }
    let report = server.shutdown();
    // Exactly-once: every issued ticket delivered one terminal event.
    let events = client.drain();
    assert_eq!(events.len() as u64, issued);
    let cancelled_events = events.iter().filter(|e| e.is_cancelled()).count() as u64;
    assert_eq!(cancelled_events, report.cancelled);
    assert!(report.is_conserved());
    assert_eq!(report.offered, 36);
    let slo = report.slo.as_ref().expect("slo ledger present");
    assert!(slo.is_conserved());
    assert!(slo.admission_control && slo.value_weighted_shedding && slo.edf_dequeue);
    assert_eq!(slo.classes.iter().map(|c| c.offered).sum::<u64>(), 36);
    assert_eq!(
        slo.classes.iter().map(|c| c.completed).sum::<u64>(),
        report.completed
    );
    for c in &slo.classes {
        assert!(
            (c.value_offered - c.value_completed - c.value_shed - c.value_cancelled).abs() < 1e-6,
            "class {} value ledger",
            c.name
        );
    }
    assert!(slo.deadline_met_rate() <= 1.0);
    // The router still accounts every submission under SLO serving.
    assert_eq!(
        report.affinity_hits + report.affinity_spills,
        report.offered
    );
    // And the enriched report round-trips for the bench records.
    let json = serde_json::to_string(&report).expect("serializes");
    let back: ServeReport = serde_json::from_str(&json).expect("parses");
    assert_eq!(back.shed_admission, report.shed_admission);
    let back_slo = back.slo.expect("slo survives serde");
    assert!((back_slo.value_shed_loss() - slo.value_shed_loss()).abs() < 1e-9);
}

#[test]
fn served_report_survives_json_round_trip() {
    let (truth, agent, world_seed) = pipeline();
    let budget = Budget::Deadline { ms: 800 };
    let server = AmsServer::start(
        scheduler_for(agent, world_seed),
        budget,
        ServeConfig::default(),
    );
    for item in truth.items().iter().take(12) {
        server.submit(Arc::new(item.clone()));
    }
    let report = server.shutdown();
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let back: ServeReport = serde_json::from_str(&json).expect("report parses");
    assert_eq!(back.completed, report.completed);
    assert_eq!(back.stats.per_model_runs, report.stats.per_model_runs);
    assert_eq!(back.total.p99_us, report.total.p99_us);
    assert!((back.shed_rate() - report.shed_rate()).abs() < 1e-12);
}
