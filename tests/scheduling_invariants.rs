//! Cross-crate property tests on the scheduling algorithms: budgets are
//! never exceeded, optimal* really is an upper bound, memory is conserved.

use ams::core::predictor::{OraclePredictor, UniformPredictor};
use ams::core::scheduler::optimal_star;
use ams::prelude::*;
use proptest::prelude::*;

fn fixture() -> (ModelZoo, TruthTable) {
    let zoo = ModelZoo::standard();
    let ds = Dataset::generate(DatasetProfile::MirFlickr25, 30, 88);
    let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
    (zoo, truth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn algorithm1_never_exceeds_deadline(budget_ms in 0u64..6000, item_idx in 0usize..30) {
        let (zoo, truth) = fixture();
        let oracle = OraclePredictor::new(zoo.len(), 0.5);
        let r = schedule_deadline(&oracle, &zoo, truth.item(item_idx), budget_ms, 0.5);
        prop_assert!(r.elapsed_ms <= budget_ms);
        let sum: u64 = r.executed.iter().map(|&m| u64::from(zoo.spec(m).time_ms)).sum();
        prop_assert_eq!(sum, r.elapsed_ms);
        prop_assert!(r.trace.is_serial());
    }

    #[test]
    fn algorithm2_respects_both_budgets(
        budget_ms in 100u64..3000,
        mem_mb in 8000u32..20000,
        item_idx in 0usize..30,
    ) {
        let (zoo, truth) = fixture();
        let oracle = OraclePredictor::new(zoo.len(), 0.5);
        let r = schedule_deadline_memory(&oracle, &zoo, truth.item(item_idx), budget_ms, mem_mb, 0.5);
        prop_assert!(r.peak_mem_mb <= mem_mb, "peak {} > {}", r.peak_mem_mb, mem_mb);
        prop_assert!(r.trace.respects_memory(mem_mb));
        // every completed model finished within the deadline
        let completed: std::collections::HashSet<usize> =
            r.completed.iter().map(|m| m.index()).collect();
        for span in &r.trace.spans {
            if completed.contains(&span.job) {
                prop_assert!(span.end_ms <= budget_ms);
            }
        }
    }

    #[test]
    fn optimal_star_upper_bounds_schedulers(budget_ms in 0u64..6000, item_idx in 0usize..30) {
        let (zoo, truth) = fixture();
        let item = truth.item(item_idx);
        let oracle = OraclePredictor::new(zoo.len(), 0.5);
        let uniform = UniformPredictor::new(zoo.len());
        let star = optimal_star::optimal_star_deadline(&zoo, item, budget_ms, 0.5);
        for value in [
            schedule_deadline(&oracle, &zoo, item, budget_ms, 0.5).value,
            schedule_deadline(&uniform, &zoo, item, budget_ms, 0.5).value,
        ] {
            prop_assert!(star >= value - 1e-9, "star {} < scheduled {}", star, value);
        }
    }

    #[test]
    fn optimal_star_memory_bounds_algorithm2(
        budget_ms in 100u64..2000,
        mem_mb in 8192u32..16384,
        item_idx in 0usize..30,
    ) {
        let (zoo, truth) = fixture();
        let item = truth.item(item_idx);
        let oracle = OraclePredictor::new(zoo.len(), 0.5);
        let star = optimal_star::optimal_star_deadline_memory(&zoo, item, budget_ms, mem_mb, 0.5);
        let exact = schedule_deadline_memory(&oracle, &zoo, item, budget_ms, mem_mb, 0.5).value;
        prop_assert!(star >= exact - 1e-9);
    }

    #[test]
    fn value_function_is_monotone_and_submodular(
        item_idx in 0usize..30,
        mut subset_bits in 0u64..(1 << 30),
        extra in 0usize..30,
        probe in 0usize..30,
    ) {
        // Lemma 1: f is non-negative, non-decreasing and submodular.
        let (_zoo, truth) = fixture();
        let item = truth.item(item_idx);
        subset_bits &= (1 << 30) - 1;
        let small: Vec<ModelId> = (0..30).filter(|i| subset_bits >> i & 1 == 1).map(|i| ModelId(i as u8)).collect();
        let mut large = small.clone();
        if !large.iter().any(|m| m.index() == extra) {
            large.push(ModelId(extra as u8));
        }
        let f_small = item.value_of_set(&small, 0.5);
        let f_large = item.value_of_set(&large, 0.5);
        prop_assert!(f_small >= 0.0);
        prop_assert!(f_large >= f_small - 1e-9, "monotonicity");

        // submodularity: marginal of `probe` shrinks as the set grows
        if !small.iter().any(|m| m.index() == probe) && probe != extra {
            let mut s_state = LabelSet::new(item.universe());
            for &m in &small {
                item.apply(&mut s_state, m, 0.5);
            }
            let mut l_state = LabelSet::new(item.universe());
            for &m in &large {
                item.apply(&mut l_state, m, 0.5);
            }
            let m_small = item.marginal_value(&s_state, ModelId(probe as u8), 0.5);
            let m_large = item.marginal_value(&l_state, ModelId(probe as u8), 0.5);
            prop_assert!(m_small >= m_large - 1e-9, "submodularity {} < {}", m_small, m_large);
        }
    }
}
