#!/usr/bin/env bash
# Perf regression gate: rerun the smoke benchmarks and compare them against
# the committed smoke baselines under results-smoke/. Fails if throughput,
# recall, the batching saving, the affinity-routing win, the SLO-aware
# shedding win (lower value-weighted shed loss + no-worse deadline-met
# rate + request conservation in both modes), the label-cache zipf
# economics (monotone bill saving, cache-on beating cache-off at repeat
# >= 0.6, the repeat-0 no-op, per-point conservation), the wire-protocol
# guarantees (the net_sweep's forked loopback clients must get labels
# byte-identical to the in-process reference digest, serial-identical
# stats through the socket, exactly one terminal completion per wire
# request, and per-point conservation + event reconciliation), the
# online-adaptation drift guarantees (the drift_sweep's frozen run must
# stay byte-identical to the serial engine, the adaptive run must have
# hot-swapped generations and banked strictly more post-shift value,
# with conservation + event reconciliation in both modes), or the
# adaptive controller's target compliance regresses beyond tolerance
# (tolerances live in crates/ams-bench/src/gate.rs, with rationale).
#
#   ./scripts/bench_gate.sh               # self-test + rerun + compare
#   ./scripts/bench_gate.sh --self-test   # only prove the gate can fail
#
# Called from scripts/check.sh (full and --smoke modes) and from the CI
# full lane. Smoke records are written under target/ — the committed
# BENCH_serve.json / BENCH_hotpath.json full-run records are never
# clobbered by a gate run.

set -euo pipefail
cd "$(dirname "$0")/.."

SERVE_BASE=results-smoke/BENCH_serve.smoke.json
HOTPATH_BASE=results-smoke/BENCH_hotpath.smoke.json

self_test_only=0
for arg in "$@"; do
    case "$arg" in
    --self-test) self_test_only=1 ;;
    *)
        echo "unknown flag: $arg" >&2
        exit 2
        ;;
    esac
done

# 1) Prove the gate can fail: inject synthetic regressions into copies of
#    the baselines; every one must be caught or this exits non-zero.
echo "==> bench_gate self-test (injected regressions must be caught)"
cargo run --release -q -p ams-bench --bin bench_gate -- \
    self-test "$SERVE_BASE" "$HOTPATH_BASE"

if [[ $self_test_only -eq 1 ]]; then
    exit 0
fi

# 2) Re-measure. The serve smoke run also asserts serve==serial stats
#    equivalence, the routing win, and adaptive target compliance
#    in-process — it aborts on violation before the gate even compares.
echo "==> bench_serve --smoke"
cargo run --release -q -p ams-bench --bin bench_serve -- --smoke >/dev/null
echo "==> bench_hotpath --smoke"
cargo run --release -q -p ams-bench --bin bench_hotpath -- --smoke >/dev/null

# 3) Compare against the committed baselines.
echo "==> bench_gate serve"
cargo run --release -q -p ams-bench --bin bench_gate -- \
    serve "$SERVE_BASE" target/BENCH_serve.smoke.json
echo "==> bench_gate hotpath"
cargo run --release -q -p ams-bench --bin bench_gate -- \
    hotpath "$HOTPATH_BASE" target/BENCH_hotpath.smoke.json

echo "Bench gate passed."
