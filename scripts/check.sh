#!/usr/bin/env bash
# One-command gate for every PR: formatting, lints, and the tier-1 verify.
#
#   ./scripts/check.sh          # fmt + clippy + build --release + test
#   ./scripts/check.sh --quick  # skip the release build (debug tests only)
#
# PROPTEST_CASES=16 ./scripts/check.sh gives a faster property-test pass
# while iterating; leave it unset for the full default case counts.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    *)
        echo "unknown flag: $arg" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $quick -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release

    # Serving-path gate: a seconds-long sweep that asserts serve-mode stats
    # still equal the serial engine's (writes target/BENCH_serve.smoke.json,
    # never the committed BENCH_serve.json).
    echo "==> bench_serve --smoke"
    cargo run --release -p ams-bench --bin bench_serve -- --smoke >/dev/null
fi

echo "==> cargo test -q"
cargo test -q

echo "All checks passed."
