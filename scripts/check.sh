#!/usr/bin/env bash
# One-command gate for every PR: formatting, lints (clippy + the ams-lint
# workspace analyzer), the perf gate, and the tier-1 verify. Three modes:
#
#   ./scripts/check.sh          # full: fmt + clippy + release build
#                               #       + bench gate + tier-1 tests
#   ./scripts/check.sh --quick  # fmt + clippy + a fast label-cache pass
#                               #       (PROPTEST_CASES=16) + debug tests
#                               #       (no release build, no bench gate)
#   ./scripts/check.sh --smoke  # fmt + clippy + bench gate only (the
#                               #       fast perf-regression lane; runs
#                               #       scripts/bench_gate.sh, which also
#                               #       asserts serve==serial equivalence)
#
# PROPTEST_CASES=16 ./scripts/check.sh gives a faster property-test pass
# while iterating; leave it unset for the full default case counts.

set -euo pipefail
cd "$(dirname "$0")/.."

mode=full
for arg in "$@"; do
    case "$arg" in
    --quick) mode=quick ;;
    --smoke) mode=smoke ;;
    *)
        echo "unknown flag: $arg" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Workspace-specific static analysis (all modes — it is fast): first prove
# every rule can fire on its injected-violation fixtures, then require the
# tree itself to be clean. Rules and allow-list syntax: LINTS.md.
echo "==> ams-lint --self-test"
cargo run -q -p ams-lint -- --self-test
echo "==> ams-lint (workspace must be clean)"
cargo run -q -p ams-lint -- .

if [[ $mode == full ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

if [[ $mode == full || $mode == smoke ]]; then
    # Perf-regression gate: smoke sweeps compared against the committed
    # baselines (plus the in-process serve==serial equivalence assert).
    ./scripts/bench_gate.sh
fi

if [[ $mode == quick ]]; then
    # Targeted first pass over the label cache: the stripe/eviction unit
    # tests plus the cross-policy coalescing + cancellation-storm suite,
    # capped at 16 proptest cases so exactly-once violations surface in
    # seconds before the full debug run below.
    echo "==> label-cache tests (PROPTEST_CASES=16)"
    PROPTEST_CASES=16 cargo test -q -p ams-serve --lib cache::
    PROPTEST_CASES=16 cargo test -q -p ams-serve --test cache_coalescing
fi

if [[ $mode == full || $mode == quick ]]; then
    echo "==> cargo test -q"
    cargo test -q
fi

echo "All checks passed."
