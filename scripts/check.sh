#!/usr/bin/env bash
# One-command gate for every PR: formatting, lints, the perf gate, and the
# tier-1 verify. Three modes:
#
#   ./scripts/check.sh          # full: fmt + clippy + release build
#                               #       + bench gate + tier-1 tests
#   ./scripts/check.sh --quick  # fmt + clippy + debug tests (no release
#                               #       build, no bench gate)
#   ./scripts/check.sh --smoke  # fmt + clippy + bench gate only (the
#                               #       fast perf-regression lane; runs
#                               #       scripts/bench_gate.sh, which also
#                               #       asserts serve==serial equivalence)
#
# PROPTEST_CASES=16 ./scripts/check.sh gives a faster property-test pass
# while iterating; leave it unset for the full default case counts.

set -euo pipefail
cd "$(dirname "$0")/.."

mode=full
for arg in "$@"; do
    case "$arg" in
    --quick) mode=quick ;;
    --smoke) mode=smoke ;;
    *)
        echo "unknown flag: $arg" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ $mode == full ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

if [[ $mode == full || $mode == smoke ]]; then
    # Perf-regression gate: smoke sweeps compared against the committed
    # baselines (plus the in-process serve==serial equivalence assert).
    ./scripts/bench_gate.sh
fi

if [[ $mode == full || $mode == quick ]]; then
    echo "==> cargo test -q"
    cargo test -q
fi

echo "All checks passed."
