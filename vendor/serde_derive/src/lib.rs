//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! shapes this workspace uses — non-generic structs with named fields,
//! tuple structs, and enums whose variants are unit, tuple or struct-like
//! — by hand-parsing the item's token stream (no `syn`/`quote` available
//! offline). The generated impls target the value-tree model of the
//! vendored `serde` crate and follow upstream serde's external data
//! model: objects keyed by field name, externally tagged enum variants,
//! transparent newtype structs.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Item {
    name: String,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Self { toks: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skip `#[...]` attributes (doc comments included).
    fn skip_attrs(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Bracket {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Skip a type (or any token run) up to a top-level `,`, tracking
    /// angle-bracket depth so commas inside generics don't split early.
    /// Consumes the trailing comma when present.
    fn skip_to_comma(&mut self) {
        let mut angle: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle += 1;
                    } else if c == '>' {
                        angle -= 1;
                    } else if c == ',' && angle <= 0 {
                        self.pos += 1; // consume ','
                        return;
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
    }
}

/// Parse `field: Type, ...` named-field lists.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        c.skip_vis();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident()?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, found {other:?}")),
        }
        c.skip_to_comma();
        fields.push(name);
    }
    Ok(fields)
}

/// Count the fields of a tuple struct/variant body `(Type, Type, ...)`.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut c = Cursor::new(group);
    let mut count = 0;
    loop {
        c.skip_attrs();
        c.skip_vis();
        if c.at_end() {
            break;
        }
        c.skip_to_comma();
        count += 1;
    }
    count
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(group);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident()?;
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.pos += 1;
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.pos += 1;
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // optional discriminant `= expr` (treated as unit payload)
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == '=' {
                c.skip_to_comma();
                variants.push(Variant { name, kind });
                continue;
            }
        }
        // optional trailing comma
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == ',' {
                c.pos += 1;
            }
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let keyword = c.expect_ident()?;
    let name = c.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stand-in derive does not support generic type `{name}`"
            ));
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => return Err(format!("unsupported struct body: {other:?}")),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("unsupported enum body: {other:?}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item { name, kind })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pushes}])")
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: String =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i}),")).collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from({vn:?})),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vn:?}), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Array(::std::vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => \
                                 ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from({vn:?}), \
                                 ::serde::Value::Object(::std::vec![{pushes}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::get_field(__v, {f:?})?)?,"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Kind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
        ),
        Kind::TupleStruct(n) => {
            let inits: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?,"))
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Array(__a) if __a.len() == {n} => \
                         ::std::result::Result::Ok({name}({inits})),\n\
                     __other => ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"{n}-element array\", __other)),\n\
                 }}"
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        ),
                        VariantKind::Tuple(n) => {
                            let inits: String = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__a[{i}])?,")
                                })
                                .collect();
                            format!(
                                "{vn:?} => match __inner {{\n\
                                     ::serde::Value::Array(__a) if __a.len() == {n} => \
                                         ::std::result::Result::Ok({name}::{vn}({inits})),\n\
                                     __other => ::std::result::Result::Err(\
                                         ::serde::DeError::expected(\
                                             \"{n}-element array\", __other)),\n\
                                 }},"
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::get_field(__inner, {f:?})?)?,"
                                    )
                                })
                                .collect();
                            format!(
                                "{vn:?} => ::std::result::Result::Ok(\
                                 {name}::{vn} {{ {inits} }}),"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::DeError(\
                             ::std::format!(\"unknown variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __inner) = &__fields[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError(\
                                 ::std::format!(\"unknown variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"enum\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

/// Derive `serde::Serialize` (value-tree model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}

/// Derive `serde::Deserialize` (value-tree model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().unwrap(),
        Err(e) => compile_error(&e),
    }
}
