//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small `rand` API subset it actually uses:
//! [`rngs::StdRng`] / [`rngs::SmallRng`] seeded via
//! [`SeedableRng::seed_from_u64`], the [`Rng`] extension methods
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through splitmix64 — a fast,
//! well-mixed PRNG whose statistical quality comfortably covers the
//! workspace's needs (uniformity assertions, Box–Muller normals).
//! Streams are deterministic per seed but differ from upstream `rand`.

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// xoshiro256++ state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut z = seed;
        let s = [
            splitmix64(&mut z),
            splitmix64(&mut z),
            splitmix64(&mut z),
            splitmix64(&mut z),
        ];
        Self { s }
    }
}

impl RngCore for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The workspace's standard RNG (deterministic per seed).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    /// A small fast RNG (same core as [`StdRng`] in this stand-in, but a
    /// distinct type and a distinct stream).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self(Xoshiro256::from_u64(state))
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // Domain-separate from StdRng so the two never share a stream.
            Self(Xoshiro256::from_u64(state ^ 0x5A17_C0DE_5EED_u64.rotate_left(13)))
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of upstream `rand`).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`], generic over the output type so
/// integer/float literals infer from the call site like upstream `rand`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width u64 range
                }
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = StandardSample::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            /// Approximated by the half-open range (upstream `rand` nudges
            /// the upper bound up by one ULP; indistinguishable here).
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u: $t = StandardSample::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        let u: f64 = StandardSample::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (the subset of `rand::seq::SliceRandom` in use).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn std_and_small_streams_differ() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn gen_range_is_in_bounds_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
        for _ in 0..1000 {
            let v = rng.gen_range(5..=6u32);
            assert!(v == 5 || v == 6);
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "{hits}");
    }

    #[test]
    fn floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "a 50-element shuffle is astronomically unlikely to be identity");
    }
}
