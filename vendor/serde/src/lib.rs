//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so this workspace vendors
//! a value-tree serialization model under the `serde` name: types
//! implement [`Serialize`]/[`Deserialize`] by converting to and from a
//! JSON-shaped [`Value`], and the companion `serde_derive` proc-macro
//! generates those impls for plain structs and enums with the same derive
//! syntax (`#[derive(Serialize, Deserialize)]`) and the same external
//! data model as upstream serde (named-field objects, externally tagged
//! enums, transparent newtype structs).

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the wire model of this serde stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an ordered key/value list (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable path/expectation message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Error for a type mismatch at some point in the tree.
    pub fn expected(what: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError(format!("expected {what}, found {kind}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization to the [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetch a required object field (derive-generated code calls this).
pub fn get_field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, DeError> {
    v.field(name).ok_or_else(|| DeError(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    ref other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError(format!("integer {n} out of range")))?,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    ref other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::F64(f) => Ok(f as $t),
                    Value::U64(n) => Ok(n as $t),
                    Value::I64(n) => Ok(n as $t),
                    ref other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Box<[T]> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Box<[T]> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Vec::into_boxed_slice)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expect = [$($n),+].len();
                        if items.len() != expect {
                            return Err(DeError(format!(
                                "expected {expect}-tuple, found array of {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", other)),
                }
            }
        }
    )+};
}
impl_serde_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
        assert_eq!(f32::from_value(&1.5f32.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_value(&v.to_value()).unwrap(), v);
        let t = (7u16, 0.5f32);
        assert_eq!(<(u16, f32)>::from_value(&t.to_value()).unwrap(), t);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), None);
        let b: Box<[u32]> = vec![9, 8].into_boxed_slice();
        assert_eq!(Box::<[u32]>::from_value(&b.to_value()).unwrap(), b);
    }

    #[test]
    fn type_mismatch_is_an_error() {
        assert!(u8::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(u8::from_value(&Value::U64(900)).is_err(), "out of range");
    }
}
