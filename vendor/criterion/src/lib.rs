//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!` / `criterion_main!` / `Criterion` /
//! `Bencher::iter` / `black_box` surface with a simple wall-clock
//! measurement loop: a short warm-up sizes the iteration count, then the
//! bench body runs for a fixed measurement window and the mean ns/iter is
//! printed. No statistics, plots or baselines — just quick, comparable
//! numbers in environments without crates.io access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration and result sink.
pub struct Criterion {
    warmup: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(120),
            measurement: Duration::from_millis(400),
        }
    }
}

/// One benchmark's timing loop.
pub struct Bencher {
    warmup: Duration,
    measurement: Duration,
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iters: u64,
}

impl Bencher {
    /// Measure `f`, storing the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up window elapses, counting calls.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / warm_iters.max(1) as f64;
        // Measurement: a fixed batch sized from the warm-up estimate.
        let target = (self.measurement.as_secs_f64() / per_iter.max(1e-9)) as u64;
        let iters = target.clamp(1, 1_000_000_000);
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = t0.elapsed();
        self.iters = iters;
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            warmup: self.warmup,
            measurement: self.measurement,
            ns_per_iter: 0.0,
            iters: 0,
        };
        f(&mut b);
        let (value, unit) = humanize(b.ns_per_iter);
        println!("{name:<40} {value:>10.2} {unit}/iter ({} iters)", b.iters);
        self
    }
}

fn humanize(ns: f64) -> (f64, &'static str) {
    if ns >= 1e9 {
        (ns / 1e9, "s ")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    }
}

/// Group benchmark functions under one callable.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            warmup: Duration::from_millis(5),
            measurement: Duration::from_millis(10),
        };
        let mut captured = 0.0;
        c.bench_function("noop_loop", |b| {
            b.iter(|| black_box(3u64).wrapping_mul(7));
            captured = b.ns_per_iter;
        });
        assert!(captured > 0.0 && captured < 1e6, "{captured}");
    }
}
