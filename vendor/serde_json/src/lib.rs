//! Offline stand-in for `serde_json`: JSON text ↔ the vendored serde
//! [`Value`] tree.
//!
//! Floats are written with Rust's shortest round-trip formatting (`{:?}`),
//! so `f32`/`f64` values survive a serialize → parse cycle exactly.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no Infinity/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, pretty: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(indent) = pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_value(out, item, pretty.map(|d| d + 1));
            }
            if let Some(indent) = pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(indent) = pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if pretty.is_some() {
                    out.push(' ');
                }
                write_value(out, val, pretty.map(|d| d + 1));
            }
            if let Some(indent) = pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
        }
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serialize a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let start = self.pos;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Deserialize a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::U64(1), Value::F64(-2.5)])),
            ("b".into(), Value::Str("x\"\n".into())),
            ("c".into(), Value::Bool(false)),
            ("d".into(), Value::Null),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &v, None);
            s
        };
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&mut s, &v, Some(0));
            s
        };
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1f64, 1.0, -3.25e-7, std::f64::consts::PI, f64::MIN_POSITIVE] {
            let mut s = String::new();
            write_value(&mut s, &Value::F64(f), None);
            match parse_value(&s).unwrap() {
                Value::F64(g) => assert_eq!(f, g, "{s}"),
                Value::U64(g) => assert_eq!(f, g as f64),
                other => panic!("{other:?}"),
            }
        }
        // f32 through the f64 channel
        for f in [0.1f32, 1e-30, -7.77] {
            let s = to_string(&f).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(f, back, "{s}");
        }
    }

    #[test]
    fn typed_round_trip() {
        let data: Vec<(u16, f32)> = vec![(1, 0.5), (900, -1.25)];
        let s = to_string(&data).unwrap();
        let back: Vec<(u16, f32)> = from_str(&s).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn invalid_json_is_an_error() {
        assert!(parse_value("{not json").is_err());
        assert!(parse_value("[1, 2").is_err());
        assert!(parse_value("12 34").is_err());
        assert!(from_str::<u32>("\"hi\"").is_err());
    }
}
