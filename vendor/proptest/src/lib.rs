//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro
//! (with optional `#![proptest_config(...)]`), range / `any` / tuple /
//! collection strategies, `prop_map`, and the `prop_assert*` family.
//! Cases are generated from a deterministic RNG; there is **no
//! shrinking** — a failure reports the case number and message only.
//!
//! The number of cases defaults to 256 and can be overridden per block
//! via `ProptestConfig::with_cases(n)` or globally via the
//! `PROPTEST_CASES` environment variable.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Deterministic case generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// A fresh deterministic generator (fixed seed; strategies advance it).
    pub fn deterministic() -> Self {
        TestRng(StdRng::seed_from_u64(0x4d59_5df4_d0f3_3173))
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.0.gen_range(range)
    }
}

/// Per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Effective case count (environment override applied).
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()) {
            Some(n) => n,
            None => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Failure signal from inside a proptest body.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure with its message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
            TestCaseError::Reject => f.write_str("input rejected by prop_assume!"),
        }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H),
);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values spanning a wide magnitude range.
        let m = rng.gen_range(-1.0f32..1.0);
        let e = rng.gen_range(-20i32..20) as f32;
        m * e.exp2()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let m = rng.gen_range(-1.0f64..1.0);
        let e = rng.gen_range(-40i32..40) as f64;
        m * e.exp2()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// `Vec` strategy with a length drawn from `size`.
        pub struct VecStrategy<S> {
            elem: S,
            size: core::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = sample_size(&self.size, rng);
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        fn sample_size(size: &core::ops::Range<usize>, rng: &mut TestRng) -> usize {
            if size.start + 1 >= size.end {
                size.start
            } else {
                size.clone().generate(rng)
            }
        }

        /// Vectors of `elem` values with length in `size`.
        pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, size }
        }

        /// `BTreeSet` strategy (size is a target; duplicates shrink it).
        pub struct BTreeSetStrategy<S> {
            elem: S,
            size: core::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for BTreeSetStrategy<S>
        where
            S::Value: Ord,
        {
            type Value = std::collections::BTreeSet<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = sample_size(&self.size, rng);
                let mut out = std::collections::BTreeSet::new();
                let mut attempts = 0;
                while out.len() < target && attempts < target * 10 + 16 {
                    out.insert(self.elem.generate(rng));
                    attempts += 1;
                }
                out
            }
        }

        /// Sets of `elem` values with size up to the `size` bound.
        pub fn btree_set<S: Strategy>(
            elem: S,
            size: core::ops::Range<usize>,
        ) -> BTreeSetStrategy<S> {
            BTreeSetStrategy { elem, size }
        }

        /// `HashSet` strategy (size is a target; duplicates shrink it).
        pub struct HashSetStrategy<S> {
            elem: S,
            size: core::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for HashSetStrategy<S>
        where
            S::Value: std::hash::Hash + Eq,
        {
            type Value = std::collections::HashSet<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let target = sample_size(&self.size, rng);
                let mut out = std::collections::HashSet::new();
                let mut attempts = 0;
                while out.len() < target && attempts < target * 10 + 16 {
                    out.insert(self.elem.generate(rng));
                    attempts += 1;
                }
                out
            }
        }

        /// Hash sets of `elem` values with size up to the `size` bound.
        pub fn hash_set<S: Strategy>(
            elem: S,
            size: core::ops::Range<usize>,
        ) -> HashSetStrategy<S> {
            HashSetStrategy { elem, size }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Assert a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __a, __b
            )));
        }
    }};
}

/// Reject inputs that don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block $cfg; $($rest)*);
    };
    (@block $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let __cases = __cfg.effective_cases();
                let mut __rng = $crate::TestRng::deterministic();
                for __case in 0..__cases {
                    let ($($arg,)+) =
                        ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                    #[allow(unused_mut)]
                    let mut __body = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    match __body() {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!("proptest case {}/{} failed: {}", __case + 1, __cases, __msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@block $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -2.0f64..2.0, b in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            let _ = b;
        }

        #[test]
        fn collections_respect_sizes(v in prop::collection::vec(0u8..10, 2..6),
                                     s in prop::collection::btree_set(0u32..100, 0..20),
                                     h in prop::collection::hash_set(0u16..50, 1..10)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(s.len() < 20);
            prop_assert!(h.len() < 10);
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn assume_rejects(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        /// Doc comments on cases must parse.
        #[test]
        fn config_applies(mut n in 0usize..5, pair in (0u8..3, any::<u64>())) {
            n += 1;
            prop_assert!(n <= 5);
            prop_assert!(pair.0 < 3);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = prop::collection::vec((1u32..5, 10u32..20), 1..4)
            .prop_map(|v| v.into_iter().map(|(a, b)| a + b).collect::<Vec<u32>>());
        let mut rng = TestRng::deterministic();
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
            assert!(v.iter().all(|&x| (11..25).contains(&x)));
        }
    }
}
