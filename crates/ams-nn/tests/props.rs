//! Property tests for the neural substrate.

use ams_nn::{FwdCache, Input, Optimizer, QNet, QNetConfig, Sgd};
use proptest::prelude::*;

fn net(dueling: bool, seed: u64) -> QNet {
    QNet::new(
        QNetConfig {
            input_dim: 64,
            hidden: vec![16],
            actions: 7,
            dueling,
        },
        seed,
    )
}

proptest! {
    /// The sparse fast path agrees with the dense path on any binary input.
    #[test]
    fn sparse_equals_dense(active in prop::collection::btree_set(0u32..64, 0..64),
                           dueling in any::<bool>(),
                           seed in any::<u64>()) {
        let net = net(dueling, seed);
        let sparse: Vec<u32> = active.iter().copied().collect();
        let mut dense = vec![0.0f32; 64];
        for &i in &sparse {
            dense[i as usize] = 1.0;
        }
        let qs = net.q_values(Input::Sparse(&sparse));
        let qd = net.q_values(Input::Dense(&dense));
        for (a, b) in qs.iter().zip(&qd) {
            prop_assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
        }
    }

    /// Q values are finite for any input and any seed.
    #[test]
    fn outputs_always_finite(active in prop::collection::btree_set(0u32..64, 0..64),
                             dueling in any::<bool>(),
                             seed in any::<u64>()) {
        let net = net(dueling, seed);
        let sparse: Vec<u32> = active.iter().copied().collect();
        let q = net.q_values(Input::Sparse(&sparse));
        prop_assert_eq!(q.len(), 7);
        prop_assert!(q.iter().all(|v| v.is_finite()));
    }

    /// Cache reuse across different inputs never leaks state between calls.
    #[test]
    fn cache_reuse_is_clean(a in prop::collection::btree_set(0u32..64, 0..32),
                            b in prop::collection::btree_set(0u32..64, 0..32)) {
        let net = net(true, 9);
        let sa: Vec<u32> = a.iter().copied().collect();
        let sb: Vec<u32> = b.iter().copied().collect();
        // fresh-cache reference results
        let qa_ref = net.q_values(Input::Sparse(&sa));
        let qb_ref = net.q_values(Input::Sparse(&sb));
        // shared-cache results, interleaved
        let mut cache = FwdCache::default();
        let qa1 = net.forward(Input::Sparse(&sa), &mut cache).to_vec();
        let qb1 = net.forward(Input::Sparse(&sb), &mut cache).to_vec();
        let qa2 = net.forward(Input::Sparse(&sa), &mut cache).to_vec();
        for (x, y) in qa1.iter().zip(&qa_ref) {
            prop_assert!((x - y).abs() < 1e-6);
        }
        for (x, y) in qb1.iter().zip(&qb_ref) {
            prop_assert!((x - y).abs() < 1e-6);
        }
        for (x, y) in qa2.iter().zip(&qa_ref) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    /// Small-step gradient descent against the TD gradient reduces the
    /// squared error. (SGD, not Adam: Adam's momentum may legitimately
    /// overshoot within a few steps, which is not a bug.)
    #[test]
    fn gradient_step_descends(seed in any::<u64>(), action in 0usize..7, target in -2.0f32..2.0) {
        let mut net = net(false, seed);
        let sparse = [3u32, 17, 40];
        let before = {
            let q = net.q_values(Input::Sparse(&sparse));
            (q[action] - target).powi(2)
        };
        if before < 1e-6 {
            return Ok(()); // already at the optimum
        }
        let mut opt = Sgd { lr: 1e-3 };
        for _ in 0..5 {
            let mut cache = FwdCache::default();
            net.forward(Input::Sparse(&sparse), &mut cache);
            let mut gq = vec![0.0f32; 7];
            gq[action] = cache.q[action] - target;
            let mut grads = net.zero_grads();
            let mut bwd = ams_nn::BwdCache::default();
            net.backward(Input::Sparse(&sparse), &cache, &gq, &mut grads, &mut bwd);
            let g = grads.tensors();
            let mut p = net.tensors_mut();
            opt.step(&mut p, &g);
        }
        let after = {
            let q = net.q_values(Input::Sparse(&sparse));
            (q[action] - target).powi(2)
        };
        prop_assert!(after < before, "error should shrink: {} -> {}", before, after);
    }

    /// copy_from makes two networks functionally identical.
    #[test]
    fn copy_from_is_complete(sa in any::<u64>(), sb in any::<u64>(), probe in prop::collection::btree_set(0u32..64, 0..20)) {
        let a = net(true, sa);
        let mut b = net(true, sb);
        b.copy_from(&a);
        let input: Vec<u32> = probe.iter().copied().collect();
        let qa = a.q_values(Input::Sparse(&input));
        let qb = b.q_values(Input::Sparse(&input));
        for (x, y) in qa.iter().zip(&qb) {
            prop_assert!((x - y).abs() < 1e-7);
        }
    }
}
