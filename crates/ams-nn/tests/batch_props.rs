//! Property tests for the batched kernels: `forward_batch` /
//! `backward_batch` must agree with the scalar path on dense and sparse
//! inputs, for linear and dueling heads.

use ams_nn::{
    BatchBwdCache, BatchFwdCache, BatchInput, BwdCache, FwdCache, Input, Mat, QNet, QNetConfig,
};
use proptest::prelude::*;

const DIM: usize = 48;
const ACTIONS: usize = 7;

fn net(dueling: bool, seed: u64) -> QNet {
    QNet::new(
        QNetConfig {
            input_dim: DIM,
            hidden: vec![16],
            actions: ACTIONS,
            dueling,
        },
        seed,
    )
}

/// Sparse row views over a batch of index vectors.
fn rows(batch: &[Vec<u32>]) -> Vec<&[u32]> {
    batch.iter().map(|r| r.as_slice()).collect()
}

/// Densify sparse rows into a `batch x DIM` matrix.
fn densify(batch: &[Vec<u32>]) -> Mat {
    let mut m = Mat::zeros(batch.len(), DIM);
    for (s, idx) in batch.iter().enumerate() {
        for &i in idx {
            *m.get_mut(s, i as usize) = 1.0;
        }
    }
    m
}

fn sparse_batch_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(
        prop::collection::btree_set(0u32..DIM as u32, 0..DIM).prop_map(|s| s.into_iter().collect()),
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batched forward equals per-sample scalar forward (sparse inputs).
    #[test]
    fn forward_batch_sparse_matches_scalar(batch in sparse_batch_strategy(),
                                           dueling in any::<bool>(),
                                           seed in any::<u64>()) {
        let net = net(dueling, seed);
        let views = rows(&batch);
        let mut bcache = BatchFwdCache::default();
        let q = net.forward_batch(BatchInput::Sparse(&views), &mut bcache);
        prop_assert_eq!(q.rows(), batch.len());
        prop_assert_eq!(q.cols(), ACTIONS);
        let mut cache = FwdCache::default();
        for (s, idx) in batch.iter().enumerate() {
            let qs = net.forward(Input::Sparse(idx), &mut cache);
            for (a, (&b, &c)) in q.row(s).iter().zip(qs).enumerate() {
                prop_assert!((b - c).abs() < 1e-5, "sample {} action {}: {} vs {}", s, a, b, c);
            }
        }
    }

    /// Batched forward equals per-sample scalar forward (dense inputs).
    #[test]
    fn forward_batch_dense_matches_scalar(batch in sparse_batch_strategy(),
                                          dueling in any::<bool>(),
                                          seed in any::<u64>()) {
        let net = net(dueling, seed);
        let dense = densify(&batch);
        let mut bcache = BatchFwdCache::default();
        let q = net.forward_batch(BatchInput::Dense(&dense), &mut bcache);
        let mut cache = FwdCache::default();
        for s in 0..batch.len() {
            let qs = net.forward(Input::Dense(dense.row(s)), &mut cache);
            for (&b, &c) in q.row(s).iter().zip(qs) {
                prop_assert!((b - c).abs() < 1e-5, "{} vs {}", b, c);
            }
        }
    }

    /// Batched backward accumulates the same gradients as summing scalar
    /// backward passes over the batch (sparse and dense inputs).
    #[test]
    fn backward_batch_matches_scalar_sum(batch in sparse_batch_strategy(),
                                         dueling in any::<bool>(),
                                         seed in any::<u64>(),
                                         use_dense in any::<bool>()) {
        let net = net(dueling, seed);
        let views = rows(&batch);
        let dense = densify(&batch);

        // Output gradients: deterministic per (sample, action) values.
        let mut gq = Mat::zeros(batch.len(), ACTIONS);
        for s in 0..batch.len() {
            for a in 0..ACTIONS {
                *gq.get_mut(s, a) = ((s * 31 + a * 7) as f32 * 0.37).sin();
            }
        }

        // Batched pass.
        let mut bcache = BatchFwdCache::default();
        let mut bbwd = BatchBwdCache::default();
        let mut bgrads = net.zero_grads();
        let input = if use_dense {
            BatchInput::Dense(&dense)
        } else {
            BatchInput::Sparse(&views)
        };
        net.forward_batch(input, &mut bcache);
        net.backward_batch(input, &bcache, &gq, &mut bgrads, &mut bbwd);

        // Scalar reference: accumulate per-sample gradients.
        let mut cache = FwdCache::default();
        let mut bwd = BwdCache::default();
        let mut sgrads = net.zero_grads();
        for (s, idx) in batch.iter().enumerate() {
            let input = if use_dense {
                Input::Dense(dense.row(s))
            } else {
                Input::Sparse(idx)
            };
            net.forward(input, &mut cache);
            net.backward(input, &cache, gq.row(s), &mut sgrads, &mut bwd);
        }

        for (tb, ts) in bgrads.tensors().iter().zip(sgrads.tensors()) {
            prop_assert_eq!(tb.len(), ts.len());
            for (&b, &s) in tb.iter().zip(ts) {
                prop_assert!((b - s).abs() < 1e-5, "{} vs {}", b, s);
            }
        }
    }

    /// Cache reuse across batches of different sizes never leaks state.
    #[test]
    fn batch_cache_reuse_is_clean(a in sparse_batch_strategy(), b in sparse_batch_strategy()) {
        let net = net(true, 11);
        let (va, vb) = (rows(&a), rows(&b));
        let mut shared = BatchFwdCache::default();
        let qa1 = net.forward_batch(BatchInput::Sparse(&va), &mut shared).clone();
        let _qb = net.forward_batch(BatchInput::Sparse(&vb), &mut shared);
        let qa2 = net.forward_batch(BatchInput::Sparse(&va), &mut shared).clone();
        prop_assert_eq!(qa1.rows(), qa2.rows());
        for (x, y) in qa1.as_slice().iter().zip(qa2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }
}
