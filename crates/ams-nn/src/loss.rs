//! Loss functions for Q-learning targets.

/// Huber (smooth-L1) loss, the standard robust loss for DQN TD errors.
#[derive(Debug, Clone, Copy)]
pub struct Huber {
    /// Transition point between quadratic and linear regimes.
    pub delta: f32,
}

impl Default for Huber {
    fn default() -> Self {
        Self { delta: 1.0 }
    }
}

impl Huber {
    /// Loss value for residual `r = prediction − target`.
    pub fn loss(&self, r: f32) -> f32 {
        let a = r.abs();
        if a <= self.delta {
            0.5 * r * r
        } else {
            self.delta * (a - 0.5 * self.delta)
        }
    }

    /// Derivative w.r.t. the prediction.
    pub fn dloss(&self, r: f32) -> f32 {
        r.clamp(-self.delta, self.delta)
    }
}

/// Mean-squared-error helpers (used by tests and ablations).
pub mod mse {
    /// Loss `0.5 (p − t)^2`.
    pub fn loss(r: f32) -> f32 {
        0.5 * r * r
    }

    /// Derivative w.r.t. the prediction.
    pub fn dloss(r: f32) -> f32 {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huber_is_quadratic_inside_delta() {
        let h = Huber::default();
        assert!((h.loss(0.5) - 0.125).abs() < 1e-7);
        assert!((h.dloss(0.5) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn huber_is_linear_outside_delta() {
        let h = Huber::default();
        assert!((h.loss(3.0) - 2.5).abs() < 1e-7);
        assert_eq!(h.dloss(3.0), 1.0);
        assert_eq!(h.dloss(-3.0), -1.0);
    }

    #[test]
    fn huber_is_continuous_at_delta() {
        let h = Huber { delta: 2.0 };
        let inside = h.loss(2.0 - 1e-4);
        let outside = h.loss(2.0 + 1e-4);
        assert!((inside - outside).abs() < 1e-3);
    }

    #[test]
    fn huber_derivative_matches_finite_difference() {
        let h = Huber::default();
        for r in [-2.5f32, -0.7, 0.0, 0.3, 1.8] {
            let eps = 1e-3;
            let fd = (h.loss(r + eps) - h.loss(r - eps)) / (2.0 * eps);
            assert!((fd - h.dloss(r)).abs() < 1e-2, "r={r}");
        }
    }

    #[test]
    fn mse_basics() {
        assert_eq!(mse::loss(2.0), 2.0);
        assert_eq!(mse::dloss(2.0), 2.0);
    }
}
