//! A minimal row-major `f32` matrix.

use serde::{Deserialize, Serialize};

/// Row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A row as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Flat view of the storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Set every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Reshape in place to `rows x cols`, reusing the existing allocation
    /// when it is large enough. All elements are zeroed.
    pub fn resize_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// `self += other * scale` element-wise.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn add_scaled(&mut self, other: &Mat, scale: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// `out += scale * row` (axpy over a contiguous row).
#[inline]
pub fn axpy(out: &mut [f32], row: &[f32], scale: f32) {
    debug_assert_eq!(out.len(), row.len());
    for (o, r) in out.iter_mut().zip(row) {
        *o += scale * r;
    }
}

/// Dot product of two equal-length slices.
///
/// Accumulates in eight parallel lanes: a naive `sum()` is a sequential
/// float dependency chain the compiler must not reorder, which caps it at
/// one add per few cycles; independent lanes vectorize.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for c in 0..chunks {
        let (av, bv) = (
            &a[c * LANES..(c + 1) * LANES],
            &b[c * LANES..(c + 1) * LANES],
        );
        for k in 0..LANES {
            acc[k] += av[k] * bv[k];
        }
    }
    let mut tail = 0.0f32;
    for i in chunks * LANES..a.len() {
        tail += a[i] * b[i];
    }
    acc.iter().sum::<f32>() + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Mat::zeros(2, 3);
        *m.get_mut(1, 2) = 5.0;
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn from_vec_round_trip() {
        let m = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_vec_wrong_len_panics() {
        let _ = Mat::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Mat::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Mat::from_vec(1, 3, vec![10.0, 10.0, 10.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[6.0, 7.0, 8.0]);
    }

    #[test]
    fn axpy_and_dot() {
        let mut out = vec![1.0, 1.0];
        axpy(&mut out, &[2.0, 4.0], 0.5);
        assert_eq!(out, vec![2.0, 3.0]);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norm_is_frobenius() {
        let m = Mat::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn fill_zero_resets() {
        let mut m = Mat::from_vec(1, 2, vec![3.0, 4.0]);
        m.fill_zero();
        assert_eq!(m.as_slice(), &[0.0, 0.0]);
    }
}
