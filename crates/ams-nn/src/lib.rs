//! # ams-nn — minimal neural-network substrate
//!
//! A small, dependency-free dense neural-network library with manual
//! backpropagation, built for the paper's Q-value network: a 1104-dimension
//! binary observation → one ReLU hidden layer (256 units) → Q values over 31
//! actions (30 models + END), optionally with a dueling value/advantage head.
//!
//! Design notes:
//!
//! * Weights are stored **input-major** (`w[in][out]`), which makes the
//!   sparse-binary-input fast path, the weight gradient, and the input
//!   gradient all row-contiguous.
//! * The labeling state is a sparse binary vector (a handful of active
//!   labels out of 1104), so [`dense::Dense::forward`] accepts an
//!   [`Input::Sparse`] encoding and skips inactive rows entirely — a 20–50×
//!   speed-up on the first layer, which dominates the network.
//! * No autograd: each layer implements its own backward pass, verified
//!   against finite differences in the test suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod dense;
pub mod init;
pub mod loss;
pub mod matrix;
pub mod optimizer;
pub mod qnet;

pub use dense::{BatchInput, Dense, DenseGrad, Input};
pub use loss::Huber;
pub use matrix::Mat;
pub use optimizer::{Adam, Optimizer, Sgd};
pub use qnet::{
    BatchBwdCache, BatchFwdCache, BwdCache, FwdCache, Head, QNet, QNetConfig, QNetGrads,
};
