//! Weight initialization: He-normal for ReLU networks.

use crate::matrix::Mat;
use rand::rngs::StdRng;
use rand::Rng;

/// Sample a standard normal via Box–Muller.
pub fn standard_normal(rng: &mut StdRng) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

/// He-normal initialization for a `fan_in x fan_out` (input-major) weight
/// matrix: `w ~ N(0, 2 / fan_in)`.
pub fn he_normal(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Mat {
    let sd = (2.0 / fan_in as f64).sqrt() as f32;
    let mut m = Mat::zeros(fan_in, fan_out);
    for w in m.as_mut_slice() {
        *w = standard_normal(rng) * sd;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_has_roughly_unit_variance() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn he_normal_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = he_normal(1000, 50, &mut rng);
        let var = m.as_slice().iter().map(|x| x * x).sum::<f32>() / (1000.0 * 50.0);
        let expected = 2.0 / 1000.0;
        assert!(
            (var / expected - 1.0).abs() < 0.1,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = he_normal(4, 4, &mut StdRng::seed_from_u64(3));
        let b = he_normal(4, 4, &mut StdRng::seed_from_u64(3));
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
