//! The Q-value network: trunk of ReLU dense layers plus a linear or dueling
//! head, exactly parameterizable as the paper's architecture
//! (1104 → 256 ReLU → 31, §IV-B).

use crate::dense::{BatchInput, Dense, DenseGrad, Input};
use crate::matrix::{axpy, dot, Mat};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Network head: plain linear Q output, or dueling value/advantage streams
/// combined as `Q(s,a) = V(s) + A(s,a) − mean_a A(s,a)` (Wang et al.).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Head {
    /// Single linear layer producing Q values.
    Linear(Dense),
    /// Dueling architecture.
    Dueling {
        /// State-value stream (fan_out = 1).
        value: Dense,
        /// Advantage stream (fan_out = actions).
        advantage: Dense,
    },
}

/// Architecture description for [`QNet::new`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QNetConfig {
    /// Input dimension (1104 labels in the paper).
    pub input_dim: usize,
    /// Hidden layer widths (the paper uses a single 256-unit layer).
    pub hidden: Vec<usize>,
    /// Number of actions (30 models + END = 31 in the paper).
    pub actions: usize,
    /// Whether to use the dueling head.
    pub dueling: bool,
}

impl QNetConfig {
    /// The paper's architecture: `input 1104 → 256 ReLU → 31`, linear head.
    pub fn paper(input_dim: usize, actions: usize) -> Self {
        Self {
            input_dim,
            hidden: vec![256],
            actions,
            dueling: false,
        }
    }

    /// The paper's architecture with a dueling head (DuelingDQN rows).
    pub fn paper_dueling(input_dim: usize, actions: usize) -> Self {
        Self {
            input_dim,
            hidden: vec![256],
            actions,
            dueling: true,
        }
    }
}

/// Forward-pass cache: every intermediate needed by the backward pass.
#[derive(Debug, Clone, Default)]
pub struct FwdCache {
    /// Post-ReLU activation of each trunk layer.
    pub acts: Vec<Vec<f32>>,
    /// Raw advantage-stream output (dueling only).
    pub adv: Vec<f32>,
    /// Raw value-stream output (dueling only).
    pub value: f32,
    /// Final Q values.
    pub q: Vec<f32>,
}

/// Backward-pass scratch: every intermediate gradient buffer the scalar
/// backward needs, reusable across calls so the training hot loop performs
/// no per-call heap allocation.
#[derive(Debug, Clone, Default)]
pub struct BwdCache {
    gfeat: Vec<f32>,
    gadv: Vec<f32>,
    gnext: Vec<f32>,
}

/// Minibatch forward-pass cache: one matrix per intermediate, reused
/// across gradient steps.
#[derive(Debug, Clone)]
pub struct BatchFwdCache {
    /// Post-ReLU activation of each trunk layer, `batch x width`.
    pub acts: Vec<Mat>,
    /// Raw advantage-stream outputs (dueling only), `batch x actions`.
    pub adv: Mat,
    /// Value-stream output per sample (dueling only).
    pub value: Vec<f32>,
    /// Final Q values, `batch x actions`.
    pub q: Mat,
    /// Output-major transpose of the linear/advantage head weights, built
    /// per forward call; contiguous rows make the head GEMM and its
    /// backward run on full-width dots/axpys.
    wt_head: Mat,
}

impl Default for BatchFwdCache {
    fn default() -> Self {
        Self {
            acts: Vec::new(),
            adv: Mat::zeros(0, 0),
            value: Vec::new(),
            q: Mat::zeros(0, 0),
            wt_head: Mat::zeros(0, 0),
        }
    }
}

/// Minibatch backward-pass scratch, reusable across gradient steps.
#[derive(Debug, Clone)]
pub struct BatchBwdCache {
    gfeat: Mat,
    gadv: Mat,
    gnext: Mat,
    dwt: Mat,
}

impl Default for BatchBwdCache {
    fn default() -> Self {
        Self {
            gfeat: Mat::zeros(0, 0),
            gadv: Mat::zeros(0, 0),
            gnext: Mat::zeros(0, 0),
            dwt: Mat::zeros(0, 0),
        }
    }
}

/// Gradients mirroring a [`QNet`]'s tensors.
#[derive(Debug, Clone)]
pub struct QNetGrads {
    trunk: Vec<DenseGrad>,
    head_a: DenseGrad,
    head_b: Option<DenseGrad>,
}

impl QNetGrads {
    /// Zero all accumulators.
    pub fn zero(&mut self) {
        for g in &mut self.trunk {
            g.zero();
        }
        self.head_a.zero();
        if let Some(g) = &mut self.head_b {
            g.zero();
        }
    }

    /// Scale all accumulators (e.g. by `1/batch`).
    pub fn scale(&mut self, s: f32) {
        for g in &mut self.trunk {
            g.scale(s);
        }
        self.head_a.scale(s);
        if let Some(g) = &mut self.head_b {
            g.scale(s);
        }
    }

    /// Tensors in canonical order, for the optimizer.
    pub fn tensors(&self) -> Vec<&[f32]> {
        let mut v = Vec::new();
        for g in &self.trunk {
            v.push(g.w.as_slice());
            v.push(g.b.as_slice());
        }
        v.push(self.head_a.w.as_slice());
        v.push(self.head_a.b.as_slice());
        if let Some(g) = &self.head_b {
            v.push(g.w.as_slice());
            v.push(g.b.as_slice());
        }
        v
    }
}

/// The Q network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QNet {
    trunk: Vec<Dense>,
    head: Head,
    config: QNetConfig,
}

impl QNet {
    /// Build a fresh network with He initialization under `seed`.
    pub fn new(config: QNetConfig, seed: u64) -> Self {
        assert!(config.actions > 0 && config.input_dim > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trunk = Vec::with_capacity(config.hidden.len());
        let mut prev = config.input_dim;
        for &h in &config.hidden {
            trunk.push(Dense::new(prev, h, &mut rng));
            prev = h;
        }
        let head = if config.dueling {
            Head::Dueling {
                value: Dense::new(prev, 1, &mut rng),
                advantage: Dense::new(prev, config.actions, &mut rng),
            }
        } else {
            Head::Linear(Dense::new(prev, config.actions, &mut rng))
        };
        Self {
            trunk,
            head,
            config,
        }
    }

    /// The architecture this network was built with.
    pub fn config(&self) -> &QNetConfig {
        &self.config
    }

    /// Number of actions (Q outputs).
    pub fn actions(&self) -> usize {
        self.config.actions
    }

    /// Total number of learnable parameters.
    pub fn param_count(&self) -> usize {
        let dense = |d: &Dense| d.w.rows() * d.w.cols() + d.b.len();
        let mut n: usize = self.trunk.iter().map(dense).sum();
        n += match &self.head {
            Head::Linear(l) => dense(l),
            Head::Dueling { value, advantage } => dense(value) + dense(advantage),
        };
        n
    }

    /// Forward pass; fills `cache` and returns a reference to the Q values.
    ///
    /// Reusing one `cache` across calls avoids all per-call allocations —
    /// the training loop calls this hundreds of thousands of times.
    pub fn forward<'c>(&self, input: Input<'_>, cache: &'c mut FwdCache) -> &'c [f32] {
        let slots = self.trunk.len().max(1);
        if cache.acts.len() != slots {
            cache.acts.resize_with(slots, Vec::new);
        }
        for li in 0..self.trunk.len() {
            let layer = &self.trunk[li];
            // split so we can read acts[li-1] while writing acts[li]
            let (before, rest) = cache.acts.split_at_mut(li);
            let act = &mut rest[0];
            act.resize(layer.fan_out(), 0.0);
            if li == 0 {
                layer.forward(input, act);
            } else {
                layer.forward(Input::Dense(&before[li - 1]), act);
            }
            for a in act.iter_mut() {
                if *a < 0.0 {
                    *a = 0.0; // ReLU
                }
            }
        }
        if self.trunk.is_empty() {
            // materialize the input as acts[0] so backward has a feature view
            let x = &mut cache.acts[0];
            x.resize(self.config.input_dim, 0.0);
            x.fill(0.0);
            match input {
                Input::Dense(d) => x.copy_from_slice(d),
                Input::Sparse(idx) => {
                    for &i in idx {
                        x[i as usize] = 1.0;
                    }
                }
            }
        }
        // Disjoint field borrows: read acts, write q/adv/value.
        let feat: &[f32] = cache.acts.last().expect("feature activation");
        match &self.head {
            Head::Linear(l) => {
                cache.q.resize(l.fan_out(), 0.0);
                l.forward(Input::Dense(feat), &mut cache.q);
            }
            Head::Dueling { value, advantage } => {
                let mut v = [0.0f32];
                value.forward(Input::Dense(feat), &mut v);
                cache.adv.resize(advantage.fan_out(), 0.0);
                advantage.forward(Input::Dense(feat), &mut cache.adv);
                cache.value = v[0];
                let mean = cache.adv.iter().sum::<f32>() / cache.adv.len() as f32;
                cache.q.resize(cache.adv.len(), 0.0);
                for (q, a) in cache.q.iter_mut().zip(&cache.adv) {
                    *q = cache.value + a - mean;
                }
            }
        }
        &cache.q
    }

    /// Convenience: forward pass with a throwaway cache, returning owned Qs.
    pub fn q_values(&self, input: Input<'_>) -> Vec<f32> {
        let mut cache = FwdCache::default();
        self.forward(input, &mut cache);
        cache.q
    }

    /// Zeroed gradient accumulator with matching shapes.
    pub fn zero_grads(&self) -> QNetGrads {
        QNetGrads {
            trunk: self.trunk.iter().map(Dense::zero_grad).collect(),
            head_a: match &self.head {
                Head::Linear(l) => l.zero_grad(),
                Head::Dueling { value, .. } => value.zero_grad(),
            },
            head_b: match &self.head {
                Head::Linear(_) => None,
                Head::Dueling { advantage, .. } => Some(advantage.zero_grad()),
            },
        }
    }

    /// Backward pass: accumulate gradients of a scalar loss with gradient
    /// `grad_q` at the Q output, for the forward pass recorded in `cache`.
    ///
    /// `bwd` holds every intermediate gradient buffer; reusing one across
    /// calls makes the pass allocation-free.
    pub fn backward(
        &self,
        input: Input<'_>,
        cache: &FwdCache,
        grad_q: &[f32],
        grads: &mut QNetGrads,
        bwd: &mut BwdCache,
    ) {
        let feat: &[f32] = match self.trunk.len() {
            0 => &cache.acts[0],
            n => &cache.acts[n - 1],
        };
        // Head backward → gradient at the feature layer.
        let BwdCache { gfeat, gadv, gnext } = bwd;
        gfeat.resize(feat.len(), 0.0);
        gfeat.fill(0.0);
        match &self.head {
            Head::Linear(l) => {
                l.backward(Input::Dense(feat), grad_q, &mut grads.head_a, Some(gfeat));
            }
            Head::Dueling { value, advantage } => {
                // q_a = v + adv_a − mean(adv)
                // dv = Σ_a gq_a ; dadv_a = gq_a − mean(gq)
                let gsum: f32 = grad_q.iter().sum();
                let gmean = gsum / grad_q.len() as f32;
                let gv = [gsum];
                value.backward(Input::Dense(feat), &gv, &mut grads.head_a, Some(gfeat));
                gadv.resize(grad_q.len(), 0.0);
                for (ga, g) in gadv.iter_mut().zip(grad_q) {
                    *ga = g - gmean;
                }
                let gb = grads.head_b.as_mut().expect("dueling grads");
                advantage.backward(Input::Dense(feat), gadv, gb, Some(gfeat));
            }
        }
        // Trunk backward through ReLU masks, ping-ponging between the two
        // scratch buffers instead of allocating a fresh one per layer.
        let mut cur: &mut Vec<f32> = gfeat;
        let mut spare: &mut Vec<f32> = gnext;
        for li in (0..self.trunk.len()).rev() {
            // ReLU mask: zero where the activation was clipped.
            for (g, &a) in cur.iter_mut().zip(&cache.acts[li]) {
                if a <= 0.0 {
                    *g = 0.0;
                }
            }
            if li == 0 {
                self.trunk[0].backward(input, cur, &mut grads.trunk[0], None);
            } else {
                spare.resize(self.trunk[li].fan_in(), 0.0);
                spare.fill(0.0);
                self.trunk[li].backward(
                    Input::Dense(&cache.acts[li - 1]),
                    cur,
                    &mut grads.trunk[li],
                    Some(spare),
                );
                std::mem::swap(&mut cur, &mut spare);
            }
        }
    }

    /// Batched forward pass: one GEMM per layer over the whole minibatch;
    /// returns the `batch x actions` Q matrix.
    ///
    /// Per sample the result matches [`QNet::forward`] to within float
    /// rounding (the property tests enforce 1e-5): the trunk kernels keep
    /// the scalar path's per-element accumulation order exactly, while the
    /// transposed head kernels use a multi-lane `dot` whose reassociated
    /// summation can differ from the scalar head in the last ULPs.
    pub fn forward_batch<'c>(
        &self,
        input: BatchInput<'_>,
        cache: &'c mut BatchFwdCache,
    ) -> &'c Mat {
        let batch = input.batch();
        let slots = self.trunk.len().max(1);
        if cache.acts.len() != slots {
            cache.acts.resize_with(slots, || Mat::zeros(0, 0));
        }
        for li in 0..self.trunk.len() {
            // split so we can read acts[li-1] while writing acts[li]
            let (before, rest) = cache.acts.split_at_mut(li);
            let act = &mut rest[0];
            if li == 0 {
                self.trunk[0].forward_batch(input, act);
            } else {
                self.trunk[li].forward_batch(BatchInput::Dense(&before[li - 1]), act);
            }
            for a in act.as_mut_slice() {
                if *a < 0.0 {
                    *a = 0.0; // ReLU
                }
            }
        }
        if self.trunk.is_empty() {
            // materialize the input as acts[0] so backward has a feature view
            let x = &mut cache.acts[0];
            x.resize_zeroed(batch, self.config.input_dim);
            match input {
                BatchInput::Dense(m) => x.as_mut_slice().copy_from_slice(m.as_slice()),
                BatchInput::Sparse(rows) => {
                    for (s, idx) in rows.iter().enumerate() {
                        let row = x.row_mut(s);
                        for &i in *idx {
                            row[i as usize] = 1.0;
                        }
                    }
                }
            }
        }
        // Disjoint field borrows: read acts, write q/adv/value.
        let feat: &Mat = cache.acts.last().expect("feature activations");
        match &self.head {
            Head::Linear(l) => {
                head_forward_t(l, feat, &mut cache.wt_head, &mut cache.q);
            }
            Head::Dueling { value, advantage } => {
                // Value stream: fan_out = 1, so its weight matrix is already
                // a contiguous column — one dot per sample.
                cache.value.resize(batch, 0.0);
                for s in 0..batch {
                    cache.value[s] = value.b[0] + dot(value.w.as_slice(), feat.row(s));
                }
                head_forward_t(advantage, feat, &mut cache.wt_head, &mut cache.adv);
                cache.q.resize_zeroed(batch, advantage.fan_out());
                for s in 0..batch {
                    let adv = cache.adv.row(s);
                    let mean = adv.iter().sum::<f32>() / adv.len() as f32;
                    let v = cache.value[s];
                    for (q, a) in cache.q.row_mut(s).iter_mut().zip(adv) {
                        *q = v + a - mean;
                    }
                }
            }
        }
        &cache.q
    }

    /// Batched backward pass matching [`QNet::forward_batch`]: accumulates
    /// the summed gradients of all samples into `grads` in one blocked
    /// sweep per layer.
    pub fn backward_batch(
        &self,
        input: BatchInput<'_>,
        cache: &BatchFwdCache,
        grad_q: &Mat,
        grads: &mut QNetGrads,
        bwd: &mut BatchBwdCache,
    ) {
        let batch = grad_q.rows();
        let feat: &Mat = cache.acts.last().expect("feature activations");
        debug_assert_eq!(feat.rows(), batch);
        let BatchBwdCache {
            gfeat,
            gadv,
            gnext,
            dwt,
        } = bwd;
        gfeat.resize_zeroed(batch, feat.cols());
        match &self.head {
            Head::Linear(l) => {
                head_backward_t(
                    l,
                    feat,
                    grad_q,
                    &cache.wt_head,
                    dwt,
                    &mut grads.head_a,
                    gfeat,
                );
            }
            Head::Dueling { value, advantage } => {
                gadv.resize_zeroed(batch, grad_q.cols());
                let gb = grads.head_b.as_mut().expect("dueling grads");
                for s in 0..batch {
                    let gq = grad_q.row(s);
                    let gsum: f32 = gq.iter().sum();
                    let gmean = gsum / gq.len() as f32;
                    for (ga, g) in gadv.row_mut(s).iter_mut().zip(gq) {
                        *ga = g - gmean;
                    }
                    // Value stream (fan_out 1): contiguous column, direct
                    // axpys instead of a degenerate GEMM.
                    if gsum != 0.0 {
                        let f = feat.row(s);
                        grads.head_a.b[0] += gsum;
                        axpy(grads.head_a.w.as_mut_slice(), f, gsum);
                        axpy(gfeat.row_mut(s), value.w.as_slice(), gsum);
                    }
                }
                head_backward_t(advantage, feat, gadv, &cache.wt_head, dwt, gb, gfeat);
            }
        }
        // Trunk backward through ReLU masks, ping-ponging scratch matrices.
        let mut cur: &mut Mat = gfeat;
        let mut spare: &mut Mat = gnext;
        for li in (0..self.trunk.len()).rev() {
            for (g, &a) in cur.as_mut_slice().iter_mut().zip(cache.acts[li].as_slice()) {
                if a <= 0.0 {
                    *g = 0.0;
                }
            }
            if li == 0 {
                self.trunk[0].backward_batch(input, cur, &mut grads.trunk[0], None);
            } else {
                spare.resize_zeroed(batch, self.trunk[li].fan_in());
                self.trunk[li].backward_batch(
                    BatchInput::Dense(&cache.acts[li - 1]),
                    cur,
                    &mut grads.trunk[li],
                    Some(spare),
                );
                std::mem::swap(&mut cur, &mut spare);
            }
        }
    }

    /// Mutable parameter tensors in canonical order (matches
    /// [`QNetGrads::tensors`]).
    pub fn tensors_mut(&mut self) -> Vec<&mut [f32]> {
        let mut v = Vec::new();
        for l in &mut self.trunk {
            v.push(l.w.as_mut_slice());
            v.push(l.b.as_mut_slice());
        }
        match &mut self.head {
            Head::Linear(l) => {
                v.push(l.w.as_mut_slice());
                v.push(l.b.as_mut_slice());
            }
            Head::Dueling { value, advantage } => {
                v.push(value.w.as_mut_slice());
                v.push(value.b.as_mut_slice());
                v.push(advantage.w.as_mut_slice());
                v.push(advantage.b.as_mut_slice());
            }
        }
        v
    }

    /// Copy parameters from another network of identical architecture
    /// (target-network sync).
    pub fn copy_from(&mut self, other: &QNet) {
        let mut dst = self.tensors_mut();
        let src = other.tensors();
        assert_eq!(dst.len(), src.len(), "architecture mismatch");
        for (d, s) in dst.iter_mut().zip(src) {
            d.copy_from_slice(s);
        }
    }

    /// Immutable parameter tensors in canonical order.
    pub fn tensors(&self) -> Vec<&[f32]> {
        let mut v: Vec<&[f32]> = Vec::new();
        for l in &self.trunk {
            v.push(l.w.as_slice());
            v.push(l.b.as_slice());
        }
        match &self.head {
            Head::Linear(l) => {
                v.push(l.w.as_slice());
                v.push(l.b.as_slice());
            }
            Head::Dueling { value, advantage } => {
                v.push(value.w.as_slice());
                v.push(value.b.as_slice());
                v.push(advantage.w.as_slice());
                v.push(advantage.b.as_slice());
            }
        }
        v
    }
}

/// Batched forward of a small-fan-out head layer through an output-major
/// weight transpose: `out[s][o] = b[o] + dot(wt[o], feat[s])`, with both
/// operands contiguous and full-width. The straightforward input-major
/// kernel would stream `fan_out`-wide (e.g. 31-float) rows, which
/// vectorizes poorly. The reassociated dot reduction means head outputs
/// agree with the scalar path to float rounding, not bitwise.
fn head_forward_t(l: &Dense, feat: &Mat, wt: &mut Mat, out: &mut Mat) {
    let (fan_in, fan_out) = (l.fan_in(), l.fan_out());
    wt.resize_zeroed(fan_out, fan_in);
    for i in 0..fan_in {
        for (o, &v) in l.w.row(i).iter().enumerate() {
            *wt.get_mut(o, i) = v;
        }
    }
    let batch = feat.rows();
    out.resize_zeroed(batch, fan_out);
    for s in 0..batch {
        let f = feat.row(s);
        for (o, ov) in out.row_mut(s).iter_mut().enumerate() {
            *ov = l.b[o] + dot(wt.row(o), f);
        }
    }
}

/// Batched backward of a small-fan-out head layer. Weight gradients
/// accumulate output-major in `dwt` (full-width axpys, skipping the zero
/// entries of `grad_out` — TD gradients are one-hot per sample) and are
/// folded into `grad.w` once at the end; the input gradient reuses the
/// forward pass's `wt` transpose and is accumulated into `gfeat`.
fn head_backward_t(
    l: &Dense,
    feat: &Mat,
    grad_out: &Mat,
    wt: &Mat,
    dwt: &mut Mat,
    grad: &mut DenseGrad,
    gfeat: &mut Mat,
) {
    let (fan_in, fan_out) = (l.fan_in(), l.fan_out());
    let batch = feat.rows();
    debug_assert_eq!((wt.rows(), wt.cols()), (fan_out, fan_in));
    dwt.resize_zeroed(fan_out, fan_in);
    for s in 0..batch {
        let go = grad_out.row(s);
        let f = feat.row(s);
        for (gb, g) in grad.b.iter_mut().zip(go) {
            *gb += g;
        }
        for (o, &g) in go.iter().enumerate() {
            if g != 0.0 {
                axpy(dwt.row_mut(o), f, g);
                axpy(gfeat.row_mut(s), wt.row(o), g);
            }
        }
    }
    for i in 0..fan_in {
        for (o, gv) in grad.w.row_mut(i).iter_mut().enumerate() {
            *gv += dwt.get(o, i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{Adam, Optimizer};

    fn small(dueling: bool) -> QNet {
        QNet::new(
            QNetConfig {
                input_dim: 12,
                hidden: vec![8],
                actions: 5,
                dueling,
            },
            42,
        )
    }

    #[test]
    fn forward_shapes() {
        for dueling in [false, true] {
            let net = small(dueling);
            let q = net.q_values(Input::Sparse(&[1, 5, 9]));
            assert_eq!(q.len(), 5);
            assert!(q.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn sparse_and_dense_agree() {
        for dueling in [false, true] {
            let net = small(dueling);
            let mut dense = vec![0.0f32; 12];
            for i in [2usize, 7, 11] {
                dense[i] = 1.0;
            }
            let qs = net.q_values(Input::Sparse(&[2, 7, 11]));
            let qd = net.q_values(Input::Dense(&dense));
            for (a, b) in qs.iter().zip(&qd) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn dueling_q_invariant_under_advantage_shift() {
        // Adding a constant to every advantage leaves Q unchanged.
        let mut net = small(true);
        let q0 = net.q_values(Input::Sparse(&[3]));
        if let Head::Dueling { advantage, .. } = &mut net.head {
            for b in &mut advantage.b {
                *b += 10.0;
            }
        }
        let q1 = net.q_values(Input::Sparse(&[3]));
        for (a, b) in q0.iter().zip(&q1) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn param_count_paper_architecture() {
        let net = QNet::new(QNetConfig::paper(1104, 31), 0);
        // 1104*256 + 256 + 256*31 + 31
        assert_eq!(net.param_count(), 1104 * 256 + 256 + 256 * 31 + 31);
    }

    /// End-to-end gradient check through trunk + head, both architectures.
    ///
    /// Finite differences are invalid within `eps` of a ReLU kink, so the
    /// probe skips trunk parameters whose hidden unit's pre-activation is
    /// near zero.
    #[test]
    fn backward_matches_finite_differences() {
        for dueling in [false, true] {
            let mut net = small(dueling);
            let sparse = [1u32, 4, 10];
            let action = 2usize;
            let target = 0.7f32;
            // L = 0.5 (q_a − target)^2
            let loss = |net: &QNet| {
                let q = net.q_values(Input::Sparse(&sparse));
                0.5 * (q[action] - target).powi(2)
            };
            // pre-activations of the (single) trunk layer, for kink detection
            let hidden = net.trunk[0].fan_out();
            let mut pre = vec![0.0f32; hidden];
            net.trunk[0].forward(Input::Sparse(&sparse), &mut pre);

            let mut cache = FwdCache::default();
            net.forward(Input::Sparse(&sparse), &mut cache);
            let mut gq = vec![0.0f32; 5];
            gq[action] = cache.q[action] - target;
            let mut grads = net.zero_grads();
            let mut bwd = BwdCache::default();
            net.backward(Input::Sparse(&sparse), &cache, &gq, &mut grads, &mut bwd);
            let flat_grads: Vec<f32> = grads
                .tensors()
                .iter()
                .flat_map(|t| t.iter().copied())
                .collect();

            // numeric check on a sample of parameters
            let eps = 1e-3f32;
            let kink_margin = 0.02f32;
            let mut idx_global = 0usize;
            let n_tensors = net.tensors().len();
            let mut checked = 0usize;
            for t in 0..n_tensors {
                let len = net.tensors()[t].len();
                let stride = (len / 11).max(1);
                for i in (0..len).step_by(stride) {
                    // trunk tensors 0 (weights, in-major) and 1 (bias) feed
                    // hidden unit `o`; skip near-kink units.
                    if t < 2 {
                        let o = if t == 0 { i % hidden } else { i };
                        if pre[o].abs() < kink_margin {
                            continue;
                        }
                    }
                    let orig = net.tensors()[t][i];
                    net.tensors_mut()[t][i] = orig + eps;
                    let lp = loss(&net);
                    net.tensors_mut()[t][i] = orig - eps;
                    let lm = loss(&net);
                    net.tensors_mut()[t][i] = orig;
                    let fd = (lp - lm) / (2.0 * eps);
                    let analytic = flat_grads[idx_global + i];
                    assert!(
                        (fd - analytic).abs() < 3e-2,
                        "dueling={dueling} tensor {t} idx {i}: fd={fd} analytic={analytic}"
                    );
                    checked += 1;
                }
                idx_global += len;
            }
            assert!(
                checked > 20,
                "gradient check sampled too few parameters ({checked})"
            );
        }
    }

    #[test]
    fn training_reduces_td_error() {
        let mut net = small(false);
        let mut opt = Adam::new(0.01);
        let sparse = [0u32, 3];
        let action = 1usize;
        let target = 2.5f32;
        let initial = (net.q_values(Input::Sparse(&sparse))[action] - target).abs();
        for _ in 0..200 {
            let mut cache = FwdCache::default();
            net.forward(Input::Sparse(&sparse), &mut cache);
            let mut gq = vec![0.0f32; 5];
            gq[action] = cache.q[action] - target;
            let mut grads = net.zero_grads();
            let mut bwd = BwdCache::default();
            net.backward(Input::Sparse(&sparse), &cache, &gq, &mut grads, &mut bwd);
            let g = grads.tensors();
            let mut p = net.tensors_mut();
            opt.step(&mut p, &g);
        }
        let fin = (net.q_values(Input::Sparse(&sparse))[action] - target).abs();
        assert!(fin < 0.05, "initial {initial}, final {fin}");
    }

    #[test]
    fn copy_from_syncs_outputs() {
        let a = small(true);
        let mut b = QNet::new(a.config().clone(), 999);
        let input = Input::Sparse(&[2u32, 6]);
        assert!(a
            .q_values(input)
            .iter()
            .zip(b.q_values(input))
            .any(|(x, y)| (x - y).abs() > 1e-4));
        b.copy_from(&a);
        for (x, y) in a.q_values(input).iter().zip(b.q_values(input)) {
            assert!((x - y).abs() < 1e-7);
        }
    }

    #[test]
    fn grads_tensor_order_matches_params() {
        for dueling in [false, true] {
            let mut net = small(dueling);
            let grads = net.zero_grads();
            let g = grads.tensors();
            let p = net.tensors_mut();
            assert_eq!(g.len(), p.len());
            for (gi, pi) in g.iter().zip(&p) {
                assert_eq!(gi.len(), pi.len());
            }
        }
    }
}
