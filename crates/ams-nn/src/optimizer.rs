//! First-order optimizers over flattened parameter tensors.
//!
//! Networks expose their parameters as an ordered sequence of tensors
//! (flat `&mut [f32]` slices); gradients expose the same sequence. An
//! optimizer pairs them up positionally and keeps any per-tensor state
//! (e.g. Adam moments) in parallel buffers.

/// A first-order optimizer.
pub trait Optimizer {
    /// Apply one update step. `params` and `grads` must be positionally
    /// aligned tensor sequences of identical shapes across calls.
    fn step(&mut self, params: &mut [&mut [f32]], grads: &[&[f32]]);
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut [f32]], grads: &[&[f32]]) {
        assert_eq!(params.len(), grads.len());
        for (p, g) in params.iter_mut().zip(grads) {
            assert_eq!(p.len(), g.len());
            for (pi, gi) in p.iter_mut().zip(g.iter()) {
                *pi -= self.lr * gi;
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the usual defaults and the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut [f32]], grads: &[&[f32]]) {
        assert_eq!(params.len(), grads.len());
        if self.m.is_empty() {
            self.m = grads.iter().map(|g| vec![0.0; g.len()]).collect();
            self.v = grads.iter().map(|g| vec![0.0; g.len()]).collect();
        }
        assert_eq!(
            self.m.len(),
            params.len(),
            "tensor count changed between steps"
        );
        self.t += 1;
        // Hoist the bias corrections into two scale factors so the inner
        // loop is pure mul/add/sqrt/div over four parallel slices — a form
        // the compiler vectorizes. This sweep touches every parameter every
        // step (~280k for the paper net), so it bounds the whole learn
        // step; the original indexed loop was ~8x slower.
        let inv_bc1 = 1.0 / (1.0 - self.beta1.powi(self.t as i32));
        let inv_bc2 = 1.0 / (1.0 - self.beta2.powi(self.t as i32));
        let (b1, b2) = (self.beta1, self.beta2);
        let (c1, c2) = (1.0 - b1, 1.0 - b2);
        let lr_bc = self.lr * inv_bc1;
        let eps = self.eps;
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!(p.len(), g.len());
            let n = p.len();
            let (m, v) = (&mut m[..n], &mut v[..n]);
            let g = &g[..n];
            for i in 0..n {
                let gi = g[i];
                let mi = b1 * m[i] + c1 * gi;
                let vi = b2 * v[i] + c2 * gi * gi;
                m[i] = mi;
                v[i] = vi;
                p[i] -= lr_bc * mi / ((vi * inv_bc2).sqrt() + eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = Σ (x_i − c_i)^2 and check convergence.
    fn optimize(opt: &mut dyn Optimizer, steps: usize) -> Vec<f32> {
        let target = [3.0f32, -2.0, 0.5];
        let mut x = vec![0.0f32; 3];
        for _ in 0..steps {
            let g: Vec<f32> = x
                .iter()
                .zip(&target)
                .map(|(xi, ti)| 2.0 * (xi - ti))
                .collect();
            let mut params: Vec<&mut [f32]> = vec![&mut x];
            opt.step(&mut params, &[&g]);
        }
        x.iter()
            .zip(&target)
            .map(|(xi, ti)| (xi - ti).abs())
            .collect()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd { lr: 0.1 };
        let err = optimize(&mut opt, 200);
        assert!(err.iter().all(|&e| e < 1e-3), "{err:?}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        let err = optimize(&mut opt, 500);
        assert!(err.iter().all(|&e| e < 1e-2), "{err:?}");
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn adam_handles_multiple_tensors() {
        let mut opt = Adam::new(0.1);
        let mut a = vec![1.0f32];
        let mut b = vec![-1.0f32, 2.0];
        for _ in 0..300 {
            let ga = vec![2.0 * a[0]];
            let gb: Vec<f32> = b.iter().map(|x| 2.0 * x).collect();
            let mut params: Vec<&mut [f32]> = vec![&mut a, &mut b];
            opt.step(&mut params, &[&ga, &gb]);
        }
        assert!(a[0].abs() < 1e-2);
        assert!(b.iter().all(|x| x.abs() < 1e-2));
    }

    #[test]
    #[should_panic]
    fn mismatched_tensor_counts_panic() {
        let mut opt = Sgd { lr: 0.1 };
        let mut a = vec![0.0f32];
        let mut params: Vec<&mut [f32]> = vec![&mut a];
        opt.step(&mut params, &[]);
    }
}
