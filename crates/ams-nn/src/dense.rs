//! A fully-connected layer with input-major weights and a sparse-binary
//! input fast path.

use crate::init::he_normal;
use crate::matrix::{axpy, dot, Mat};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Layer input: either a dense vector or the active indices of a binary
/// vector (the sparse encoding of the labeling state).
#[derive(Debug, Clone, Copy)]
pub enum Input<'a> {
    /// Dense real-valued input.
    Dense(&'a [f32]),
    /// Sparse binary input: sorted indices of the `1` entries.
    Sparse(&'a [u32]),
}

impl<'a> Input<'a> {
    /// Number of active (nonzero) entries, for cost accounting.
    pub fn active(&self) -> usize {
        match self {
            Input::Dense(x) => x.len(),
            Input::Sparse(idx) => idx.len(),
        }
    }
}

/// A minibatch of layer inputs: one dense row per sample, or one sparse
/// active-index row per sample.
#[derive(Debug, Clone, Copy)]
pub enum BatchInput<'a> {
    /// Dense inputs, `batch x fan_in`.
    Dense(&'a Mat),
    /// Sparse binary inputs: per sample, the sorted indices of the `1`s.
    Sparse(&'a [&'a [u32]]),
}

impl<'a> BatchInput<'a> {
    /// Number of samples in the batch.
    pub fn batch(&self) -> usize {
        match self {
            BatchInput::Dense(x) => x.rows(),
            BatchInput::Sparse(rows) => rows.len(),
        }
    }

    /// The `s`-th sample as a scalar-path [`Input`].
    pub fn sample(&self, s: usize) -> Input<'a> {
        match *self {
            BatchInput::Dense(x) => Input::Dense(x.row(s)),
            BatchInput::Sparse(rows) => Input::Sparse(rows[s]),
        }
    }
}

/// A dense layer `y = W^T x + b`, with `W` stored input-major
/// (`w.row(i)` holds the fan-out weights of input `i`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Weights, `fan_in x fan_out`, input-major.
    pub w: Mat,
    /// Biases, `fan_out`.
    pub b: Vec<f32>,
}

/// Gradient accumulator matching a [`Dense`] layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DenseGrad {
    /// Weight gradients, same shape as the layer's `w`.
    pub w: Mat,
    /// Bias gradients.
    pub b: Vec<f32>,
}

impl Dense {
    /// He-initialized layer.
    pub fn new(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Self {
        Self {
            w: he_normal(fan_in, fan_out, rng),
            b: vec![0.0; fan_out],
        }
    }

    /// Input dimension.
    pub fn fan_in(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn fan_out(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass into `out` (`out.len() == fan_out`).
    pub fn forward(&self, input: Input<'_>, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.fan_out());
        out.copy_from_slice(&self.b);
        match input {
            Input::Dense(x) => {
                debug_assert_eq!(x.len(), self.fan_in());
                for (i, &xi) in x.iter().enumerate() {
                    if xi != 0.0 {
                        axpy(out, self.w.row(i), xi);
                    }
                }
            }
            Input::Sparse(idx) => {
                for &i in idx {
                    axpy(out, self.w.row(i as usize), 1.0);
                }
            }
        }
    }

    /// Backward pass: accumulate weight/bias gradients into `grad` and
    /// optionally produce the gradient w.r.t. the input.
    ///
    /// `grad_out` is `dL/dy`; `input` must be the forward-pass input.
    pub fn backward(
        &self,
        input: Input<'_>,
        grad_out: &[f32],
        grad: &mut DenseGrad,
        mut grad_in: Option<&mut [f32]>,
    ) {
        debug_assert_eq!(grad_out.len(), self.fan_out());
        for (gb, go) in grad.b.iter_mut().zip(grad_out) {
            *gb += go;
        }
        match input {
            Input::Dense(x) => {
                for (i, &xi) in x.iter().enumerate() {
                    if xi != 0.0 {
                        axpy(grad.w.row_mut(i), grad_out, xi);
                    }
                    if let Some(gi) = grad_in.as_deref_mut() {
                        gi[i] += dot(self.w.row(i), grad_out);
                    }
                }
            }
            Input::Sparse(idx) => {
                for &i in idx {
                    axpy(grad.w.row_mut(i as usize), grad_out, 1.0);
                }
                if let Some(gi) = grad_in {
                    for (i, g) in gi.iter_mut().enumerate() {
                        *g += dot(self.w.row(i), grad_out);
                    }
                }
            }
        }
    }

    /// Batched forward pass: `out[s] = W^T x[s] + b` for every sample.
    ///
    /// `out` is reshaped to `batch x fan_out`. For dense inputs the kernel
    /// iterates inputs in the outer loop so each weight row `w[i]` is
    /// streamed once per batch instead of once per sample — the blocked
    /// GEMM access pattern that makes minibatch training cache-friendly.
    /// Per output element the accumulation order over `i` matches the
    /// scalar [`Dense::forward`], so this kernel's results are bitwise
    /// identical (callers that route through transposed head kernels get
    /// float-rounding equality instead; see `QNet::forward_batch`).
    pub fn forward_batch(&self, input: BatchInput<'_>, out: &mut Mat) {
        let batch = input.batch();
        out.resize_zeroed(batch, self.fan_out());
        for s in 0..batch {
            out.row_mut(s).copy_from_slice(&self.b);
        }
        match input {
            BatchInput::Dense(x) => {
                debug_assert_eq!(x.cols(), self.fan_in());
                for i in 0..self.fan_in() {
                    let w_row = self.w.row(i);
                    for s in 0..batch {
                        let xi = x.get(s, i);
                        if xi != 0.0 {
                            axpy(out.row_mut(s), w_row, xi);
                        }
                    }
                }
            }
            BatchInput::Sparse(rows) => {
                for (s, idx) in rows.iter().enumerate() {
                    let out_row = out.row_mut(s);
                    for &i in *idx {
                        axpy(out_row, self.w.row(i as usize), 1.0);
                    }
                }
            }
        }
    }

    /// Batched backward pass: accumulate `dW`/`db` over the whole batch and
    /// optionally produce per-sample input gradients.
    ///
    /// `grad_out` is `batch x fan_out`; `input` must be the forward-pass
    /// batch. When `grad_in` is given it must be `batch x fan_in` and is
    /// **accumulated into** (matching the scalar path's `+=` semantics), so
    /// zero it first unless summing head streams.
    pub fn backward_batch(
        &self,
        input: BatchInput<'_>,
        grad_out: &Mat,
        grad: &mut DenseGrad,
        mut grad_in: Option<&mut Mat>,
    ) {
        let batch = input.batch();
        debug_assert_eq!(grad_out.rows(), batch);
        debug_assert_eq!(grad_out.cols(), self.fan_out());
        for s in 0..batch {
            let go = grad_out.row(s);
            for (gb, g) in grad.b.iter_mut().zip(go) {
                *gb += g;
            }
        }
        match input {
            BatchInput::Dense(x) => {
                // i-outer loops keep w[i] / dW[i] hot across the batch.
                for i in 0..self.fan_in() {
                    let grad_row = grad.w.row_mut(i);
                    for s in 0..batch {
                        let xi = x.get(s, i);
                        if xi != 0.0 {
                            axpy(grad_row, grad_out.row(s), xi);
                        }
                    }
                }
                if let Some(gi) = grad_in.as_deref_mut() {
                    debug_assert_eq!((gi.rows(), gi.cols()), (batch, self.fan_in()));
                    for i in 0..self.fan_in() {
                        let w_row = self.w.row(i);
                        for s in 0..batch {
                            *gi.get_mut(s, i) += dot(w_row, grad_out.row(s));
                        }
                    }
                }
            }
            BatchInput::Sparse(rows) => {
                for (s, idx) in rows.iter().enumerate() {
                    let go = grad_out.row(s);
                    for &i in *idx {
                        axpy(grad.w.row_mut(i as usize), go, 1.0);
                    }
                }
                if let Some(gi) = grad_in {
                    debug_assert_eq!((gi.rows(), gi.cols()), (batch, self.fan_in()));
                    for i in 0..self.fan_in() {
                        let w_row = self.w.row(i);
                        for s in 0..batch {
                            *gi.get_mut(s, i) += dot(w_row, grad_out.row(s));
                        }
                    }
                }
            }
        }
    }

    /// Zeroed gradient accumulator with matching shape.
    pub fn zero_grad(&self) -> DenseGrad {
        DenseGrad {
            w: Mat::zeros(self.w.rows(), self.w.cols()),
            b: vec![0.0; self.b.len()],
        }
    }
}

impl DenseGrad {
    /// Reset accumulators to zero.
    pub fn zero(&mut self) {
        self.w.fill_zero();
        self.b.fill(0.0);
    }

    /// Scale all accumulated gradients by `s` (e.g. `1 / batch`).
    pub fn scale(&mut self, s: f32) {
        for g in self.w.as_mut_slice() {
            *g *= s;
        }
        for g in &mut self.b {
            *g *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn layer() -> Dense {
        let mut rng = StdRng::seed_from_u64(7);
        Dense::new(6, 4, &mut rng)
    }

    #[test]
    fn sparse_matches_dense_binary() {
        let l = layer();
        let mut dense_in = vec![0.0f32; 6];
        dense_in[1] = 1.0;
        dense_in[4] = 1.0;
        let sparse = vec![1u32, 4];
        let mut a = vec![0.0; 4];
        let mut b = vec![0.0; 4];
        l.forward(Input::Dense(&dense_in), &mut a);
        l.forward(Input::Sparse(&sparse), &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn forward_is_affine() {
        let l = layer();
        let mut zero_out = vec![0.0; 4];
        l.forward(Input::Dense(&[0.0; 6]), &mut zero_out);
        assert_eq!(zero_out, l.b, "zero input yields bias");
    }

    /// Finite-difference check of all gradients.
    #[test]
    fn gradients_match_finite_differences() {
        let mut l = layer();
        let x: Vec<f32> = (0..6).map(|i| (i as f32 * 0.37).sin()).collect();
        // L = 0.5 * ||y||^2, so dL/dy = y.
        let loss = |l: &Dense, x: &[f32]| {
            let mut y = vec![0.0; 4];
            l.forward(Input::Dense(x), &mut y);
            0.5 * y.iter().map(|v| v * v).sum::<f32>()
        };
        let mut y = vec![0.0; 4];
        l.forward(Input::Dense(&x), &mut y);
        let mut grad = l.zero_grad();
        let mut gin = vec![0.0; 6];
        l.backward(Input::Dense(&x), &y.clone(), &mut grad, Some(&mut gin));

        let eps = 1e-3f32;
        // weight grads
        for i in 0..6 {
            for o in 0..4 {
                let orig = l.w.get(i, o);
                *l.w.get_mut(i, o) = orig + eps;
                let lp = loss(&l, &x);
                *l.w.get_mut(i, o) = orig - eps;
                let lm = loss(&l, &x);
                *l.w.get_mut(i, o) = orig;
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grad.w.get(i, o)).abs() < 1e-2,
                    "dW[{i}][{o}]: fd={fd} analytic={}",
                    grad.w.get(i, o)
                );
            }
        }
        // bias grads
        for o in 0..4 {
            let orig = l.b[o];
            l.b[o] = orig + eps;
            let lp = loss(&l, &x);
            l.b[o] = orig - eps;
            let lm = loss(&l, &x);
            l.b[o] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad.b[o]).abs() < 1e-2,
                "db[{o}]: fd={fd} analytic={}",
                grad.b[o]
            );
        }
        // input grads
        let mut x2 = x.clone();
        for i in 0..6 {
            let orig = x2[i];
            x2[i] = orig + eps;
            let lp = loss(&l, &x2);
            x2[i] = orig - eps;
            let lm = loss(&l, &x2);
            x2[i] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gin[i]).abs() < 1e-2,
                "dx[{i}]: fd={fd} analytic={}",
                gin[i]
            );
        }
    }

    #[test]
    fn sparse_backward_touches_only_active_rows() {
        let l = layer();
        let mut grad = l.zero_grad();
        l.backward(Input::Sparse(&[2]), &[1.0, 1.0, 1.0, 1.0], &mut grad, None);
        for i in 0..6 {
            let row_norm: f32 = grad.w.row(i).iter().map(|g| g.abs()).sum();
            if i == 2 {
                assert!(row_norm > 0.0);
            } else {
                assert_eq!(row_norm, 0.0, "row {i} should be untouched");
            }
        }
        assert_eq!(grad.b, vec![1.0; 4]);
    }

    #[test]
    fn grad_zero_and_scale() {
        let l = layer();
        let mut grad = l.zero_grad();
        l.backward(Input::Sparse(&[0]), &[2.0, 0.0, 0.0, 0.0], &mut grad, None);
        grad.scale(0.5);
        assert_eq!(grad.b[0], 1.0);
        grad.zero();
        assert_eq!(grad.b[0], 0.0);
        assert_eq!(grad.w.norm(), 0.0);
    }
}
