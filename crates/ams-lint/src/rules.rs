//! The rules. Each one is a pure function from a parsed [`SourceFile`]
//! to findings; scoping (which files, which regions) lives inside the
//! rule so `run_all` can stay a dumb loop. Semantics and rationale for
//! every rule are documented in `LINTS.md`.

use crate::lexer::TokKind;
use crate::{is_keyword, Finding, SourceFile};

pub fn run_all(f: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    no_panic(f, &mut out);
    ledger_event(f, &mut out);
    safety_comment(f, &mut out);
    atomic_order(f, &mut out);
    lock_nesting(f, &mut out);
    forbid_unsafe(f, &mut out);
    out
}

fn push(out: &mut Vec<Finding>, f: &SourceFile, line: u32, rule: &'static str, message: String) {
    out.push(Finding {
        file: f.path.clone(),
        line,
        rule,
        message,
    });
}

/// Macros that abort the process (or can) — banned inside no-panic
/// zones. `debug_assert!` is deliberately not listed: it compiles out
/// of release builds, which is what production serves.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "todo",
    "unimplemented",
    "unreachable",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// rule `no-panic` — inside `begin(no-panic)` … `end(no-panic)`
/// regions, ban `.unwrap()` / `.expect(…)`, aborting macros, and slice
/// indexing (`x[i]` can panic; `x.get(i)` cannot).
fn no_panic(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.zones.is_empty() {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        if !f.in_zone(t.line) || f.allowed("no-panic", t.line) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| f.tokens.get(p));
        let next = f.tokens.get(i + 1);
        match t.kind {
            TokKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                let is_method_call =
                    prev.is_some_and(|p| p.text == ".") && next.is_some_and(|n| n.text == "(");
                if is_method_call {
                    push(
                        out,
                        f,
                        t.line,
                        "no-panic",
                        format!(
                            ".{}() in a no-panic zone — handle the error or allow with a reason",
                            t.text
                        ),
                    );
                }
            }
            TokKind::Ident
                if PANIC_MACROS.contains(&t.text.as_str())
                    && next.is_some_and(|n| n.text == "!") =>
            {
                push(
                    out,
                    f,
                    t.line,
                    "no-panic",
                    format!("{}! in a no-panic zone", t.text),
                );
            }
            TokKind::Punct if t.text == "[" => {
                // `expr[...]` indexes (panics on out-of-range) exactly
                // when `[` follows a value: an ident (that isn't a
                // keyword), `]`, or `)`. Everything else — `#[attr]`,
                // `vec![…]`, `[T; N]` types, slice patterns — does not.
                let indexes = prev.is_some_and(|p| match p.kind {
                    TokKind::Ident => !is_keyword(&p.text),
                    TokKind::Punct => p.text == "]" || p.text == ")",
                    _ => false,
                });
                if indexes {
                    push(
                        out,
                        f,
                        t.line,
                        "no-panic",
                        "slice/array indexing in a no-panic zone — use .get(..) or allow with a bounds argument"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Conservation counters and the event evidence that must appear in the
/// same function that bumps them (`counter += 1`). Evidence is any of
/// the listed identifiers: the `EventKind` variant itself, or the name
/// of the emit helper that wraps it.
const COUNTER_EVIDENCE: &[(&str, &[&str])] = &[
    ("offered", &["Admitted"]),
    ("completed", &["Labeled"]),
    ("cache_hit", &["CacheHit"]),
    ("coalesced", &["Coalesced"]),
    ("shed_admission", &["ShedAdmission", "of_shed"]),
    (
        "shed_overflow",
        &["ShedOverflow", "of_shed", "emit_shed_overflow"],
    ),
    ("shed_deadline", &["ShedDeadline", "of_shed"]),
    ("shed_drain", &["ShedDrain", "of_shed"]),
    ("shed_oldest", &["ShedOverflow", "emit_shed_overflow"]),
    ("rejected", &["Rejected"]),
    ("cancelled", &["Cancelled"]),
];

/// Ledger helpers: calling one moves the pairing obligation to the call
/// site (the helper itself only mutates counters, so its *definition*
/// is exempt — the event must fire where the helper is invoked).
const HELPER_EVIDENCE: &[(&str, &[&str])] = &[
    ("record_hit", &["CacheHit"]),
    ("record_offered", &["Admitted"]),
    ("record_coalesced", &["Coalesced"]),
    ("record_follower_shed", &["of_shed"]),
    ("record_shed", &["ShedOverflow", "emit_shed_overflow"]),
];

fn helper_names() -> impl Iterator<Item = &'static str> {
    HELPER_EVIDENCE.iter().map(|(n, _)| *n)
}

/// rule `ledger-event` — in `server.rs`/`cache.rs`/`queue.rs` of
/// ams-serve, every `counter += 1` on a conservation counter (and every
/// call to a ledger helper) must have the matching `obs::EventKind`
/// evidence somewhere in the same function, keeping "events at the
/// exact sites that mutate the ledger" machine-checked.
///
/// Only `+= 1` counts as a mutation site: report *merges*
/// (`total.offered += shard.offered`) fold units that already emitted
/// their event when first counted, so they carry no new obligation.
fn ledger_event(f: &SourceFile, out: &mut Vec<Finding>) {
    if !f.path.contains("ams-serve") {
        return;
    }
    if !matches!(f.basename(), "server.rs" | "cache.rs" | "queue.rs") {
        return;
    }
    for (i, t) in f.tokens.iter().enumerate() {
        if t.kind != TokKind::Ident || f.allowed("ledger-event", t.line) {
            continue;
        }
        // `x.counter += 1`
        if let Some((_, evidence)) = COUNTER_EVIDENCE.iter().find(|(n, _)| *n == t.text) {
            let is_field = i > 0 && f.tokens[i - 1].text == ".";
            let is_inc = f.tokens.get(i + 1).is_some_and(|t| t.text == "+")
                && f.tokens.get(i + 2).is_some_and(|t| t.text == "=")
                && f.tokens
                    .get(i + 3)
                    .is_some_and(|t| t.kind == TokKind::Num && t.text == "1");
            if is_field && is_inc {
                match f.enclosing_fn(i) {
                    Some(func) if helper_names().any(|h| h == func.name) => {
                        // Inside a ledger helper definition: the
                        // obligation belongs to the helper's callers.
                    }
                    Some(func) => {
                        if !has_evidence(f, func.start_tok, func.end_tok, evidence) {
                            push(
                                out,
                                f,
                                t.line,
                                "ledger-event",
                                format!(
                                    "`{} += 1` without {} in fn {} — ledger mutations must emit their event at the mutation site",
                                    t.text,
                                    evidence_list(evidence),
                                    func.name
                                ),
                            );
                        }
                    }
                    None => push(
                        out,
                        f,
                        t.line,
                        "ledger-event",
                        format!(
                            "`{} += 1` outside any fn — cannot verify event pairing",
                            t.text
                        ),
                    ),
                }
            }
        }
        // `record_xxx(…)` helper calls
        if let Some((_, evidence)) = HELPER_EVIDENCE.iter().find(|(n, _)| *n == t.text) {
            let is_call = f.tokens.get(i + 1).is_some_and(|t| t.text == "(");
            let is_def = i > 0 && f.tokens[i - 1].text == "fn";
            if is_call && !is_def {
                if let Some(func) = f.enclosing_fn(i) {
                    if !has_evidence(f, func.start_tok, func.end_tok, evidence) {
                        push(
                            out,
                            f,
                            t.line,
                            "ledger-event",
                            format!(
                                "{}() called without {} in fn {} — the ledger helper's event must fire at the call site",
                                t.text,
                                evidence_list(evidence),
                                func.name
                            ),
                        );
                    }
                }
            }
        }
    }
}

fn has_evidence(f: &SourceFile, start: usize, end: usize, names: &[&str]) -> bool {
    f.tokens[start..=end.min(f.tokens.len() - 1)]
        .iter()
        .any(|t| t.kind == TokKind::Ident && names.contains(&t.text.as_str()))
}

fn evidence_list(names: &[&str]) -> String {
    names.join("/")
}

/// rule `safety-comment` — every `unsafe` keyword (block, fn, impl)
/// needs "SAFETY" in an adjacent comment: trailing on the same line, or
/// in the contiguous comment block immediately above. One shared
/// comment cannot cover two impls — adjacency is per site.
fn safety_comment(f: &SourceFile, out: &mut Vec<Finding>) {
    for t in &f.tokens {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if f.allowed("safety-comment", t.line) {
            continue;
        }
        if !f.evidence(t.line).contains("SAFETY") {
            push(
                out,
                f,
                t.line,
                "safety-comment",
                "`unsafe` without an adjacent `// SAFETY:` comment stating why this is sound"
                    .to_string(),
            );
        }
    }
}

/// Atomic fields whose orderings carry the ring / completion-slot /
/// weight-swap protocols, and the methods that read or write them.
const ATOMIC_FIELDS: &[&str] = &["seq", "head", "tail", "state", "generation"];
const ATOMIC_OPS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
];
const ORDERING_WORDS: &[&str] = &[
    "Acquire", "Release", "AcqRel", "Relaxed", "SeqCst", "ordering", "Ordering",
];

/// rule `atomic-order` — in `obs.rs` (event rings), `completion.rs`
/// (ticket slots), and `adapt.rs` (the generation-counted weight-swap
/// cell), every atomic op on `seq`/`head`/`tail`/`state`/`generation`
/// needs an adjacent comment justifying its memory ordering (it must name
/// the ordering or say "ordering"). These protocols are the only
/// lock-free code in the workspace; each fence choice is load-bearing.
fn atomic_order(f: &SourceFile, out: &mut Vec<Finding>) {
    if !matches!(f.basename(), "obs.rs" | "completion.rs" | "adapt.rs") {
        return;
    }
    for i in 0..f.tokens.len() {
        let w = |k: usize| f.tokens.get(i + k);
        let matches_site = w(0).is_some_and(|t| t.text == ".")
            && w(1).is_some_and(|t| {
                t.kind == TokKind::Ident && ATOMIC_FIELDS.contains(&t.text.as_str())
            })
            && w(2).is_some_and(|t| t.text == ".")
            && w(3)
                .is_some_and(|t| t.kind == TokKind::Ident && ATOMIC_OPS.contains(&t.text.as_str()))
            && w(4).is_some_and(|t| t.text == "(");
        if !matches_site {
            continue;
        }
        // A site split across lines (`if self` / `.state` /
        // `.compare_exchange(…)`) may carry its comment above any of:
        // the receiver, the field, or the op — check all three lines.
        let recv_line = i.checked_sub(1).map(|p| f.tokens[p].line);
        let field_line = f.tokens[i + 1].line;
        let op_line = f.tokens[i + 3].line;
        let lines = [recv_line.unwrap_or(field_line), field_line, op_line];
        if lines.iter().any(|&l| f.allowed("atomic-order", l)) {
            continue;
        }
        let ev: String = {
            let mut seen = Vec::new();
            let mut acc = String::new();
            for &l in &lines {
                if !seen.contains(&l) {
                    seen.push(l);
                    acc.push_str(&f.evidence(l));
                }
            }
            acc
        };
        if !ORDERING_WORDS.iter().any(|w| ev.contains(w)) {
            push(
                out,
                f,
                op_line,
                "atomic-order",
                format!(
                    ".{}.{}(…) without an adjacent comment justifying its memory ordering",
                    f.tokens[i + 1].text,
                    f.tokens[i + 3].text
                ),
            );
        }
    }
}

/// rule `lock-nesting` — in `cache.rs`, never acquire a stripe lock
/// while already holding one: stripe locks are leaf locks, and nesting
/// two (hash collision → same stripe) would self-deadlock. An
/// acquisition is any `….lock(` on a line that names `stripe`/`stripes`.
/// A guard is released by scope exit, an explicit `drop(guard)`, or —
/// for un-bound temporaries — the end of its statement.
fn lock_nesting(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.basename() != "cache.rs" {
        return;
    }
    struct Held {
        depth: i32,
        name: Option<String>,
    }
    let mut depth = 0i32;
    let mut held: Vec<Held> = Vec::new();
    for (i, t) in f.tokens.iter().enumerate() {
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "{") => depth += 1,
            (TokKind::Punct, "}") => {
                depth -= 1;
                held.retain(|h| h.depth <= depth);
            }
            (TokKind::Punct, ";") => {
                // Statement end releases temporaries acquired at this depth.
                held.retain(|h| h.name.is_some() || h.depth != depth);
            }
            // drop(guard)
            (TokKind::Ident, "drop") if f.tokens.get(i + 1).is_some_and(|t| t.text == "(") => {
                if let Some(arg) = f.tokens.get(i + 2) {
                    held.retain(|h| h.name.as_deref() != Some(arg.text.as_str()));
                }
            }
            (TokKind::Ident, "lock") => {
                let is_call = i > 0
                    && f.tokens[i - 1].text == "."
                    && f.tokens.get(i + 1).is_some_and(|t| t.text == "(");
                if !is_call {
                    continue;
                }
                // Only stripe locks count: the receiver chain on this
                // line must mention stripe/stripes.
                let on_line = |tok: &crate::lexer::Token| tok.line == t.line;
                let line_toks: Vec<&crate::lexer::Token> =
                    f.tokens.iter().filter(|tok| on_line(tok)).collect();
                let is_stripe = line_toks.iter().any(|tok| {
                    tok.kind == TokKind::Ident && (tok.text == "stripe" || tok.text == "stripes")
                });
                if !is_stripe {
                    continue;
                }
                if f.allowed("lock-nesting", t.line) {
                    continue;
                }
                if !held.is_empty() {
                    push(
                        out,
                        f,
                        t.line,
                        "lock-nesting",
                        "stripe lock acquired while another stripe guard is live — same-stripe nesting self-deadlocks"
                            .to_string(),
                    );
                }
                // `let [mut] name = … .lock(…)` binds a named guard.
                let name = line_toks
                    .iter()
                    .position(|tok| tok.text == "let")
                    .and_then(|p| {
                        let mut q = p + 1;
                        if line_toks.get(q).is_some_and(|tok| tok.text == "mut") {
                            q += 1;
                        }
                        line_toks
                            .get(q)
                            .filter(|tok| tok.kind == TokKind::Ident)
                            .map(|tok| tok.text.clone())
                    });
                held.push(Held { depth, name });
            }
            _ => {}
        }
    }
}

/// rule `forbid-unsafe` — every crate root except ams-serve's (the one
/// crate with audited unsafe) must carry `#![forbid(unsafe_code)]`, so
/// "no unsafe outside ams-serve" is enforced by rustc, not by review.
fn forbid_unsafe(f: &SourceFile, out: &mut Vec<Finding>) {
    let parts: Vec<&str> = f.path.split('/').collect();
    let is_crate_root =
        parts.len() == 4 && parts[0] == "crates" && parts[2] == "src" && parts[3] == "lib.rs";
    if !is_crate_root || parts[1] == "ams-serve" {
        return;
    }
    let has_forbid = f.tokens.windows(4).any(|w| {
        w[0].text == "forbid" && w[1].text == "(" && w[2].text == "unsafe_code" && w[3].text == ")"
    });
    if !has_forbid && !f.allowed("forbid-unsafe", 1) {
        push(
            out,
            f,
            1,
            "forbid-unsafe",
            format!(
                "crate {} contains no unsafe and must declare #![forbid(unsafe_code)]",
                parts[1]
            ),
        );
    }
}
