//! Workspace-specific static analysis for the AMS repo.
//!
//! The workspace's correctness story — serve==serial equivalence,
//! exactly-once ticketing, ledger conservation, never-panic wire
//! decoding — rests on invariants that `rustc` and `clippy` cannot see:
//! *this* decode path must not panic, *this* counter bump must emit
//! *that* event, *this* atomic needs its ordering argued in a comment.
//! This crate machine-checks them on every run of `scripts/check.sh`.
//!
//! Design constraints:
//!
//! * **Offline and dependency-free.** The analyzer gates everything
//!   else, so it must build before anything else does — no syn, no
//!   regex, no walkdir. A hand-rolled lexer ([`lexer`]) and brace-aware
//!   scope tracking are enough for every rule here.
//! * **Token-level, not text-level.** `unwrap()` inside a string
//!   literal or a nested block comment must not fire.
//! * **Every escape carries a reason.** `ams-lint: allow(rule) reason`
//!   with an empty reason is itself a finding.
//!
//! The rules and their exact semantics are documented in `LINTS.md` at
//! the repo root; the fixtures under `fixtures/` plus `--self-test`
//! prove each rule can fire.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod selftest;

use lexer::{Comment, TokKind, Token};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Rule identifiers, as they appear in findings and `allow(...)`.
pub const RULES: &[&str] = &[
    "no-panic",
    "ledger-event",
    "safety-comment",
    "atomic-order",
    "lock-nesting",
    "forbid-unsafe",
    "directive",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    pub fn render(&self) -> String {
        // file:line: prefix keeps the output clickable in editors & CI.
        format!(
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The line span of one `fn` item, with token indices for evidence
/// search inside the body.
#[derive(Debug)]
pub struct FnRange {
    /// Name of the function ("" for `fn`-pointer types that parse as
    /// bodyless items).
    pub name: String,
    /// Line holding the `fn` keyword (== signature line in this
    /// workspace's style).
    pub fn_line: u32,
    pub start_tok: usize,
    pub end_tok: usize,
    pub start_line: u32,
    pub end_line: u32,
}

/// A resolved `allow(rule)` escape: suppresses `rule` findings on
/// `start_line..=end_line`.
#[derive(Debug)]
pub struct Allow {
    pub rule: String,
    pub start_line: u32,
    pub end_line: u32,
}

/// A resolved `begin(no-panic)` … `end(no-panic)` region.
#[derive(Debug)]
pub struct Zone {
    pub start_line: u32,
    pub end_line: u32,
    pub label: String,
}

/// One lexed + scope-resolved source file, ready for rules to run over.
pub struct SourceFile {
    /// Repo-relative display path with `/` separators.
    pub path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    pub fn_ranges: Vec<FnRange>,
    pub allows: Vec<Allow>,
    pub zones: Vec<Zone>,
    /// Lines that carry at least one token (directive placement needs
    /// to tell trailing comments from standalone ones).
    pub token_lines: BTreeSet<u32>,
    /// Malformed-directive findings produced during parsing.
    pub directive_findings: Vec<Finding>,
}

const DIRECTIVE_PREFIX: &str = "ams-lint:";

impl SourceFile {
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        let token_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        let fn_ranges = compute_fn_ranges(&lexed.tokens);
        let mut f = SourceFile {
            path: path.to_string(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            fn_ranges,
            allows: Vec::new(),
            zones: Vec::new(),
            token_lines,
            directive_findings: Vec::new(),
        };
        f.resolve_directives();
        f
    }

    pub fn basename(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    fn finding(&self, line: u32, rule: &'static str, message: String) -> Finding {
        Finding {
            file: self.path.clone(),
            line,
            rule,
            message,
        }
    }

    /// Is `rule` suppressed at `line` by an `allow` escape?
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.start_line <= line && line <= a.end_line)
    }

    /// Is `line` inside a `no-panic` zone?
    pub fn in_zone(&self, line: u32) -> bool {
        self.zones
            .iter()
            .any(|z| z.start_line <= line && line <= z.end_line)
    }

    /// Comment evidence visible from `line`: any comment starting on the
    /// line itself (trailing), plus the contiguous block of comment-only
    /// lines immediately above. Attribute lines, blank lines, or code
    /// break the chain — "adjacent" means adjacent.
    pub fn evidence(&self, line: u32) -> String {
        let mut out = String::new();
        for c in &self.comments {
            if c.line_start == line {
                out.push_str(&c.text);
                out.push('\n');
            }
        }
        let mut l = line.saturating_sub(1);
        while l > 0 && !self.token_lines.contains(&l) {
            let Some(c) = self.comments.iter().find(|c| c.line_end == l) else {
                break;
            };
            out.push_str(&c.text);
            out.push('\n');
            l = c.line_start.saturating_sub(1);
        }
        out
    }

    /// The innermost `fn` whose token span contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnRange> {
        self.fn_ranges
            .iter()
            .filter(|f| f.start_tok <= i && i <= f.end_tok)
            .min_by_key(|f| f.end_tok - f.start_tok)
    }

    /// Parse `ams-lint:` comments into allows and zones, flagging
    /// malformed ones. Runs once from `parse`.
    fn resolve_directives(&mut self) {
        let mut open: Vec<(u32, String)> = Vec::new(); // (begin line, label)
        let comments: Vec<Comment> = self.comments.clone();
        for c in &comments {
            let Some(rest) = c.text.strip_prefix(DIRECTIVE_PREFIX) else {
                continue;
            };
            let rest = rest.trim();
            if let Some(args) = rest.strip_prefix("allow(") {
                match args.split_once(')') {
                    Some((rule, reason)) => {
                        let rule = rule.trim().to_string();
                        let reason = reason.trim();
                        if !RULES.contains(&rule.as_str()) {
                            self.directive_findings.push(self.finding(
                                c.line_start,
                                "directive",
                                format!(
                                    "allow names unknown rule `{rule}` (known: {})",
                                    RULES.join(", ")
                                ),
                            ));
                            continue;
                        }
                        if reason.is_empty() {
                            self.directive_findings.push(self.finding(
                                c.line_start,
                                "directive",
                                format!("allow({rule}) requires a reason after the closing paren"),
                            ));
                            continue;
                        }
                        match self.allow_span(c) {
                            Some((start, end)) => self.allows.push(Allow {
                                rule,
                                start_line: start,
                                end_line: end,
                            }),
                            None => self.directive_findings.push(self.finding(
                                c.line_start,
                                "directive",
                                format!("allow({rule}) does not precede any code"),
                            )),
                        }
                    }
                    None => self.directive_findings.push(self.finding(
                        c.line_start,
                        "directive",
                        "malformed allow: expected `allow(rule-id) reason`".to_string(),
                    )),
                }
            } else if let Some(args) = rest.strip_prefix("begin(") {
                match args.split_once(')') {
                    Some((name, label)) if name.trim() == "no-panic" => {
                        open.push((c.line_start, label.trim().to_string()));
                    }
                    Some((name, _)) => self.directive_findings.push(self.finding(
                        c.line_start,
                        "directive",
                        format!("unknown zone `{}` (only `no-panic` exists)", name.trim()),
                    )),
                    None => self.directive_findings.push(self.finding(
                        c.line_start,
                        "directive",
                        "malformed begin: expected `begin(no-panic) label`".to_string(),
                    )),
                }
            } else if let Some(args) = rest.strip_prefix("end(") {
                match args.split_once(')') {
                    Some((name, _)) if name.trim() == "no-panic" => match open.pop() {
                        Some((start, label)) => self.zones.push(Zone {
                            start_line: start,
                            end_line: c.line_start,
                            label,
                        }),
                        None => self.directive_findings.push(self.finding(
                            c.line_start,
                            "directive",
                            "end(no-panic) without a matching begin".to_string(),
                        )),
                    },
                    _ => self.directive_findings.push(self.finding(
                        c.line_start,
                        "directive",
                        "malformed end: expected `end(no-panic)`".to_string(),
                    )),
                }
            } else {
                self.directive_findings.push(self.finding(
                    c.line_start,
                    "directive",
                    format!("unrecognized directive `{rest}` (expected allow/begin/end)"),
                ));
            }
        }
        for (line, label) in open {
            self.directive_findings.push(self.finding(
                line,
                "directive",
                format!("begin(no-panic) {label} is never closed with end(no-panic)"),
            ));
        }
    }

    /// Which lines does an allow comment cover?
    /// * trailing on a code line → that line;
    /// * standalone, immediately before a `fn` signature → the whole fn;
    /// * standalone otherwise → the next token-bearing line.
    fn allow_span(&self, c: &Comment) -> Option<(u32, u32)> {
        if self.token_lines.contains(&c.line_start) {
            return Some((c.line_start, c.line_start));
        }
        let next = *self.token_lines.range(c.line_end + 1..).next()?;
        if let Some(f) = self.fn_ranges.iter().find(|f| f.fn_line == next) {
            return Some((f.start_line, f.end_line));
        }
        Some((next, next))
    }
}

/// Words that can precede `[` without it being an index expression
/// (`if let [a, b] = …`, `return [x]`, …).
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "extern", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield",
];

pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Find every `fn` item's span: from the `fn` keyword to its matching
/// closing brace. Bodyless fns (trait methods, `fn`-pointer types,
/// which hit `;` before any body brace) are skipped.
fn compute_fn_ranges(tokens: &[Token]) -> Vec<FnRange> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.kind == TokKind::Ident && t.text == "fn") {
            continue;
        }
        let name = match tokens.get(i + 1) {
            Some(n) if n.kind == TokKind::Ident => n.text.clone(),
            _ => String::new(),
        };
        // Scan the signature: `(`/`[` nesting covers argument lists and
        // const-generic arrays; the first `{` or `;` at depth 0 decides.
        let mut depth = 0i32;
        let mut j = i + 1;
        let body_open = loop {
            let Some(tok) = tokens.get(j) else {
                break None;
            };
            match (tok.kind, tok.text.as_str()) {
                (TokKind::Punct, "(") | (TokKind::Punct, "[") => depth += 1,
                (TokKind::Punct, ")") | (TokKind::Punct, "]") => depth -= 1,
                (TokKind::Punct, ";") if depth == 0 => break None,
                (TokKind::Punct, "{") if depth == 0 => break Some(j),
                _ => {}
            }
            j += 1;
        };
        let Some(open) = body_open else { continue };
        let mut braces = 1i32;
        let mut k = open + 1;
        while braces > 0 {
            let Some(tok) = tokens.get(k) else {
                break;
            };
            match (tok.kind, tok.text.as_str()) {
                (TokKind::Punct, "{") => braces += 1,
                (TokKind::Punct, "}") => braces -= 1,
                _ => {}
            }
            if braces == 0 {
                break;
            }
            k += 1;
        }
        let end = k.min(tokens.len().saturating_sub(1));
        out.push(FnRange {
            name,
            fn_line: t.line,
            start_tok: i,
            end_tok: end,
            start_line: t.line,
            end_line: tokens.get(end).map(|t| t.line).unwrap_or(t.line),
        });
    }
    out
}

/// Analyze one file: parse, run every rule, fold in directive findings,
/// and return findings sorted by line.
pub fn analyze(path: &str, src: &str) -> Vec<Finding> {
    let file = SourceFile::parse(path, src);
    let mut findings = rules::run_all(&file);
    findings.extend(file.directive_findings.iter().cloned());
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Walk the workspace from `root` and analyze every first-party `.rs`
/// file (under `crates/`, `examples/`, `tests/`); `vendor/`, `target/`,
/// `.git/`, and lint `fixtures/` are excluded. Returns (findings,
/// number of files checked).
pub fn scan_root(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let mut files: Vec<String> = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        findings.extend(analyze(rel, &src));
    }
    findings
        .sort_by(|a, b| (a.file.clone(), a.line, a.rule).cmp(&(b.file.clone(), b.line, b.rule)));
    Ok((findings, files.len()))
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path: PathBuf = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if matches!(name.as_ref(), ".git" | "target" | "vendor" | "fixtures") {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            let rel: Vec<String> = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect();
            let rel = rel.join("/");
            if rel.starts_with("crates/")
                || rel.starts_with("examples/")
                || rel.starts_with("tests/")
            {
                out.push(rel);
            }
        }
    }
    Ok(())
}

/// Render findings as a JSON document (hand-rolled: no serde in the
/// gate's own dependency cone).
pub fn render_json(findings: &[Finding]) -> String {
    let mut s = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule,
            json_escape(&f.message)
        ));
    }
    s.push_str(&format!("],\"count\":{}}}", findings.len()));
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_ranges_nest_and_bodyless_are_skipped() {
        let src =
            "trait T { fn sig(&self); }\nfn outer() {\n  fn inner() { body(); }\n  tail();\n}\n";
        let f = SourceFile::parse("x.rs", src);
        let names: Vec<&str> = f.fn_ranges.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        let body_idx = f
            .tokens
            .iter()
            .position(|t| t.text == "body")
            .expect("body token");
        assert_eq!(f.enclosing_fn(body_idx).expect("enclosing").name, "inner");
        let tail_idx = f
            .tokens
            .iter()
            .position(|t| t.text == "tail")
            .expect("tail token");
        assert_eq!(f.enclosing_fn(tail_idx).expect("enclosing").name, "outer");
    }

    #[test]
    fn trailing_allow_covers_only_its_line() {
        let src = "fn f() {\n  a(); // ams-lint: allow(no-panic) fine here\n  b();\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.directive_findings.is_empty());
        assert!(f.allowed("no-panic", 2));
        assert!(!f.allowed("no-panic", 3));
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let src = "fn f() {\n  // ams-lint: allow(no-panic) reason\n  a();\n  b();\n}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allowed("no-panic", 3));
        assert!(!f.allowed("no-panic", 4));
    }

    #[test]
    fn allow_before_fn_covers_whole_body() {
        let src = "// ams-lint: allow(no-panic) test helper may panic\nfn f() {\n  a();\n  b();\n}\nfn g() { c(); }\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.allowed("no-panic", 3));
        assert!(f.allowed("no-panic", 4));
        assert!(!f.allowed("no-panic", 6));
    }

    #[test]
    fn allow_without_reason_is_a_finding() {
        let src = "a(); // ams-lint: allow(no-panic)\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.directive_findings.len(), 1);
        assert_eq!(f.directive_findings[0].rule, "directive");
        assert!(f.allows.is_empty());
    }

    #[test]
    fn unknown_rule_in_allow_is_a_finding() {
        let src = "a(); // ams-lint: allow(no-such-rule) because\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.directive_findings.len(), 1);
    }

    #[test]
    fn zones_pair_up_and_unclosed_is_flagged() {
        let src = "// ams-lint: begin(no-panic) decode\na();\n// ams-lint: end(no-panic)\nb();\n// ams-lint: begin(no-panic) dangling\nc();\n";
        let f = SourceFile::parse("x.rs", src);
        assert_eq!(f.zones.len(), 1);
        assert!(f.in_zone(2));
        assert!(!f.in_zone(4));
        assert_eq!(f.directive_findings.len(), 1);
        assert!(f.directive_findings[0].message.contains("never closed"));
    }

    #[test]
    fn evidence_sees_trailing_and_contiguous_block_above() {
        let src = "// SAFETY: first\n// and second line\nx();\n\ny(); // SAFETY: trailing\nz();\n";
        let f = SourceFile::parse("x.rs", src);
        let ev = f.evidence(3);
        assert!(ev.contains("first") && ev.contains("second"));
        assert!(f.evidence(5).contains("trailing"));
        // The blank line at 4 breaks the chain for y's "above" search,
        // and z has nothing.
        assert!(f.evidence(6).is_empty());
    }

    #[test]
    fn json_escaping() {
        let f = vec![Finding {
            file: "a\"b.rs".to_string(),
            line: 3,
            rule: "no-panic",
            message: "line1\nline2\\x".to_string(),
        }];
        let j = render_json(&f);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("line1\\nline2\\\\x"));
        assert!(j.contains("\"count\":1"));
    }
}
