//! `--self-test`: prove every rule can fire.
//!
//! Each fixture under `fixtures/` carries injected violations; the
//! tables below pin the exact (rule, line) set the analyzer must
//! produce — no more, no less. Expectations are hardcoded here rather
//! than as inline fixture markers on purpose: a trailing marker comment
//! would itself count as "adjacent comment" evidence for the
//! `atomic-order` and `safety-comment` rules and mask the violation it
//! annotates.
//!
//! The fixture directory is excluded from workspace scans (the walker
//! skips any `fixtures/` component), and fixtures are never compiled —
//! they are `include_str!` data, free to reference undefined types.

use crate::{analyze, RULES};
use std::collections::BTreeSet;

struct Fixture {
    /// Synthetic display path — chosen so path-scoped rules
    /// (ledger-event, atomic-order, lock-nesting, forbid-unsafe) see
    /// the basenames and crate layout they key on.
    path: &'static str,
    src: &'static str,
    expect: &'static [(&'static str, u32)],
}

const FIXTURES: &[Fixture] = &[
    Fixture {
        path: "fixtures/no_panic.rs",
        src: include_str!("../fixtures/no_panic.rs"),
        expect: &[
            ("no-panic", 10), // .unwrap()
            ("no-panic", 11), // .expect()
            ("no-panic", 13), // panic!
            ("no-panic", 15), // assert_eq!
            ("no-panic", 17), // todo!
            ("no-panic", 18), // unimplemented!
            ("no-panic", 19), // unreachable!
            ("no-panic", 22), // buf[i] indexing
        ],
    },
    Fixture {
        path: "crates/ams-serve/src/server.rs",
        src: include_str!("../fixtures/ledger_server.rs"),
        expect: &[
            ("ledger-event", 10), // offered += 1 without Admitted
            ("ledger-event", 24), // record_hit() without CacheHit
        ],
    },
    Fixture {
        path: "fixtures/unsafe_audit.rs",
        src: include_str!("../fixtures/unsafe_audit.rs"),
        expect: &[
            ("safety-comment", 5),  // unsafe impl Send, no SAFETY
            ("safety-comment", 11), // unsafe block, no SAFETY
        ],
    },
    Fixture {
        path: "crates/ams-serve/src/obs.rs",
        src: include_str!("../fixtures/atomic_ring.rs"),
        expect: &[
            ("atomic-order", 4),  // head.load, no justification
            ("atomic-order", 11), // tail.swap, no justification
            ("atomic-order", 16), // state CAS, no justification
        ],
    },
    Fixture {
        path: "crates/ams-serve/src/adapt.rs",
        src: include_str!("../fixtures/atomic_adapt.rs"),
        expect: &[
            ("atomic-order", 5),  // generation.store, no justification
            ("atomic-order", 16), // generation.swap, no justification
        ],
    },
    Fixture {
        path: "crates/ams-serve/src/cache.rs",
        src: include_str!("../fixtures/lock_nesting.rs"),
        expect: &[
            ("lock-nesting", 5), // second stripe lock while g1 is live
        ],
    },
    Fixture {
        path: "fixtures/directives.rs",
        src: include_str!("../fixtures/directives.rs"),
        expect: &[
            ("directive", 4),  // allow without reason
            ("directive", 5),  // allow of unknown rule
            ("directive", 6),  // allow without parens
            ("directive", 9),  // end without begin
            ("directive", 11), // unknown zone name
            ("directive", 14), // unrecognized verb
            ("directive", 16), // begin never closed
        ],
    },
    Fixture {
        path: "crates/ams-fake/src/lib.rs",
        src: include_str!("../fixtures/missing_forbid_lib.rs"),
        expect: &[("forbid-unsafe", 1)],
    },
    Fixture {
        path: "crates/ams-clean/src/lib.rs",
        src: include_str!("../fixtures/has_forbid_lib.rs"),
        expect: &[],
    },
    Fixture {
        path: "fixtures/clean_tricky.rs",
        src: include_str!("../fixtures/clean_tricky.rs"),
        expect: &[],
    },
];

/// Run all fixtures; print a PASS/FAIL line per fixture plus diffs, and
/// verify every rule in [`RULES`] fired at least once somewhere.
pub fn run() -> bool {
    let mut ok = true;
    let mut fired: BTreeSet<&str> = BTreeSet::new();
    for fx in FIXTURES {
        let findings = analyze(fx.path, fx.src);
        let mut actual: Vec<(&str, u32)> = findings.iter().map(|f| (f.rule, f.line)).collect();
        actual.sort_unstable();
        let mut expected: Vec<(&str, u32)> = fx.expect.to_vec();
        expected.sort_unstable();
        for (rule, _) in &actual {
            fired.insert(rule);
        }
        if actual == expected {
            println!(
                "self-test PASS {} ({} expected finding{})",
                fx.path,
                expected.len(),
                if expected.len() == 1 { "" } else { "s" }
            );
        } else {
            ok = false;
            println!("self-test FAIL {}", fx.path);
            for want in &expected {
                if !actual.contains(want) {
                    println!("  missing: [{}] expected at line {}", want.0, want.1);
                }
            }
            for got in &actual {
                if !expected.contains(got) {
                    let msg = findings
                        .iter()
                        .find(|f| (f.rule, f.line) == (got.0, got.1))
                        .map(|f| f.message.as_str())
                        .unwrap_or("");
                    println!("  unexpected: [{}] at line {} — {}", got.0, got.1, msg);
                }
            }
        }
    }
    for rule in RULES {
        if !fired.contains(rule) {
            ok = false;
            println!("self-test FAIL: rule [{rule}] never fired on any fixture");
        }
    }
    if ok {
        println!(
            "self-test: {} fixtures match exactly; all {} rules fired",
            FIXTURES.len(),
            RULES.len()
        );
    }
    ok
}

#[cfg(test)]
mod tests {
    /// Tier-1 (`cargo test`) runs the full self-test too, so "every
    /// rule can fire" is enforced even where check.sh isn't run.
    #[test]
    fn self_test_passes() {
        assert!(super::run(), "ams-lint self-test failed; see stdout");
    }
}
