//! CLI for ams-lint. See `LINTS.md` at the repo root for rule docs.
//!
//! ```text
//! ams-lint [--json] [ROOT]    lint the workspace rooted at ROOT (default .)
//! ams-lint --self-test        prove every rule fires on its fixtures
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or self-test failure), 2 usage or
//! I/O error — mirroring the bench gate so check.sh treats them alike.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: ams-lint [--json] [--self-test] [ROOT]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut self_test = false;
    let mut root: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--self-test" => self_test = true,
            "--help" | "-h" => {
                eprintln!("usage: ams-lint [--json] [--self-test] [ROOT]");
                return ExitCode::SUCCESS;
            }
            s if s.starts_with('-') => {
                eprintln!("ams-lint: unknown flag `{s}`");
                return usage();
            }
            s => {
                if root.replace(s.to_string()).is_some() {
                    eprintln!("ams-lint: more than one ROOT given");
                    return usage();
                }
            }
        }
    }

    if self_test {
        return if ams_lint::selftest::run() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    let root = root.unwrap_or_else(|| ".".to_string());
    match ams_lint::scan_root(Path::new(&root)) {
        Err(e) => {
            eprintln!("ams-lint: cannot scan `{root}`: {e}");
            ExitCode::from(2)
        }
        Ok((findings, nfiles)) => {
            if json {
                println!("{}", ams_lint::render_json(&findings));
            } else {
                for f in &findings {
                    println!("{}", f.render());
                }
                eprintln!(
                    "ams-lint: {} finding{} across {} files",
                    findings.len(),
                    if findings.len() == 1 { "" } else { "s" },
                    nfiles
                );
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
    }
}
