//! A hand-rolled Rust lexer, just deep enough to be trustworthy.
//!
//! The rules in this crate reason about *token* streams, never raw text:
//! a `unwrap()` inside a string literal, a `{` inside a nested block
//! comment, or a `// SAFETY:` inside a raw string must not confuse them.
//! That requires getting the genuinely tricky parts of Rust's lexical
//! grammar right:
//!
//! * raw strings (`r"…"`, `r#"…"#`, any hash depth) and raw identifiers
//!   (`r#type`),
//! * byte strings / byte chars (`b"…"`, `br#"…"#`, `b'x'`),
//! * **nested** block comments (`/* /* */ */` — Rust nests, C does not),
//! * the `'a` lifetime vs `'a'` char-literal ambiguity (including
//!   escapes like `'\''` and `'\u{1F600}'`),
//! * multi-line strings and comments (line numbers must stay exact —
//!   findings are reported as clickable `file:line`).
//!
//! Everything else (numbers, idents, punctuation) is deliberately
//! simple: the rules only ever match idents and single-char puncts.

/// What a token is. Literal *contents* are discarded — no rule cares —
/// but the kind matters: an `Ident("unwrap")` fires rules, a
/// `Str` containing the word "unwrap" must not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `unsafe`, `r#type`, …).
    Ident,
    /// `'a`, `'static`, `'_` — a lifetime or loop label.
    Lifetime,
    /// String / raw-string / byte-string literal.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal.
    Num,
    /// A single punctuation character (`{`, `[`, `+`, …).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// The token text. For `Str`/`Char` this is empty — string contents
    /// are irrelevant to every rule and dropping them keeps memory flat.
    /// `Num` keeps its digits (the ledger rule matches `+= 1` exactly).
    pub text: String,
    /// 1-indexed source line of the token's first character.
    pub line: u32,
}

/// One comment (line or block). Block comments may span lines.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-indexed first line.
    pub line_start: u32,
    /// 1-indexed last line (== `line_start` for line comments).
    pub line_end: u32,
    /// Comment text without the `//` / `/*` framing, trimmed.
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Debug)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Scanner<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn ident_tail(&mut self, start: usize) -> &'a str {
        while matches!(self.peek(0), Some(b) if b == b'_' || b.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        // Idents are ASCII in this workspace; lossy is fine for anything
        // exotic (it would simply never match a rule pattern).
        std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("")
    }

    /// Consume a quoted run terminated by `"` with `hashes` trailing `#`s
    /// (0 for ordinary strings). Escapes are honored only when
    /// `hashes == 0 && escapes` (raw strings have none).
    fn string_body(&mut self, hashes: usize, escapes: bool) {
        while let Some(b) = self.bump() {
            match b {
                b'\\' if escapes => {
                    self.bump();
                }
                b'"' => {
                    let mut seen = 0;
                    while seen < hashes && self.peek(0) == Some(b'#') {
                        self.pos += 1;
                        seen += 1;
                    }
                    if seen == hashes {
                        return;
                    }
                }
                _ => {}
            }
        }
    }

    /// After an opening `'` known to start a char/byte-char literal.
    fn char_body(&mut self) {
        match self.bump() {
            Some(b'\\') => {
                self.bump(); // the escaped char ('\'' and '\\' included)
                while let Some(b) = self.bump() {
                    if b == b'\'' {
                        return;
                    }
                }
            }
            Some(b'\'') => {} // the empty (invalid) literal '' — just move on
            Some(_) => {
                // Possibly multi-byte UTF-8; eat until the closing quote.
                while let Some(b) = self.bump() {
                    if b == b'\'' {
                        return;
                    }
                }
            }
            None => {}
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

/// Lex one file. Never fails: unterminated literals simply run to EOF,
/// which is the forgiving behavior a lint wants (rustc will reject the
/// file anyway; the lint must not panic before it does).
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    let mut comments = Vec::new();

    while let Some(b) = s.peek(0) {
        let line = s.line;
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek(1) == Some(b'/') => {
                let start = s.pos + 2;
                while matches!(s.peek(0), Some(c) if c != b'\n') {
                    s.pos += 1;
                }
                let text = std::str::from_utf8(&s.src[start..s.pos]).unwrap_or("");
                comments.push(Comment {
                    line_start: line,
                    line_end: line,
                    text: text.trim_start_matches(['/', '!']).trim().to_string(),
                });
            }
            b'/' if s.peek(1) == Some(b'*') => {
                // Nested block comment: depth-counted, unlike C.
                s.bump();
                s.bump();
                let start = s.pos;
                let mut depth = 1usize;
                let mut end = s.pos;
                while depth > 0 {
                    match (s.peek(0), s.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            s.bump();
                            s.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            end = s.pos;
                            s.bump();
                            s.bump();
                        }
                        (Some(_), _) => {
                            s.bump();
                            end = s.pos;
                        }
                        (None, _) => break,
                    }
                }
                let text = std::str::from_utf8(&s.src[start..end.min(s.src.len())]).unwrap_or("");
                comments.push(Comment {
                    line_start: line,
                    line_end: s.line,
                    text: text.trim_matches(['*', '!', ' ', '\n']).trim().to_string(),
                });
            }
            b'"' => {
                s.bump();
                s.string_body(0, true);
                tokens.push(Token {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
            }
            b'\'' => {
                // Lifetime vs char literal. After the quote:
                //   '\…         → char (escape)
                //   'x'         → char (ident-start then a closing quote)
                //   'a, 'static → lifetime (ident-start, no closing quote)
                //   anything else (e.g. '(', '∞') → char
                s.bump();
                match (s.peek(0), s.peek(1)) {
                    (Some(c0), Some(b'\'')) if is_ident_start(c0) => {
                        s.bump();
                        s.bump();
                        tokens.push(Token {
                            kind: TokKind::Char,
                            text: String::new(),
                            line,
                        });
                    }
                    (Some(c0), _) if is_ident_start(c0) => {
                        let start = s.pos;
                        let name = s.ident_tail(start).to_string();
                        tokens.push(Token {
                            kind: TokKind::Lifetime,
                            text: name,
                            line,
                        });
                    }
                    _ => {
                        s.char_body();
                        tokens.push(Token {
                            kind: TokKind::Char,
                            text: String::new(),
                            line,
                        });
                    }
                }
            }
            b'0'..=b'9' => {
                let start = s.pos;
                s.pos += 1;
                loop {
                    match s.peek(0) {
                        Some(c) if c == b'_' || c.is_ascii_alphanumeric() => s.pos += 1,
                        // `1.5` continues the number; `1..n` does not.
                        Some(b'.') if matches!(s.peek(1), Some(d) if d.is_ascii_digit()) => {
                            s.pos += 1
                        }
                        _ => break,
                    }
                }
                // Numeric text is kept: the ledger rule must tell `+= 1`
                // (a new ledger unit) from `+= n` (a merge/fold).
                tokens.push(Token {
                    kind: TokKind::Num,
                    text: std::str::from_utf8(&s.src[start..s.pos])
                        .unwrap_or("")
                        .to_string(),
                    line,
                });
            }
            _ if is_ident_start(b) => {
                // r"…" / r#"…"# raw strings, r#ident raw idents,
                // b"…" / b'…' / br#"…"# byte forms — all start like idents.
                let start = s.pos;
                if (b == b'r' || b == b'b') && raw_or_byte_literal(&mut s, b) {
                    tokens.push(Token {
                        kind: if b == b'b' && matches!(s.src.get(start + 1), Some(b'\'')) {
                            TokKind::Char
                        } else {
                            TokKind::Str
                        },
                        text: String::new(),
                        line,
                    });
                    continue;
                }
                if b == b'r'
                    && s.peek(1) == Some(b'#')
                    && matches!(s.peek(2), Some(c) if is_ident_start(c))
                {
                    // Raw identifier r#type: token text keeps the bare name.
                    s.pos += 2;
                    let inner = s.pos;
                    let name = s.ident_tail(inner).to_string();
                    tokens.push(Token {
                        kind: TokKind::Ident,
                        text: name,
                        line,
                    });
                    continue;
                }
                let name = s.ident_tail(start).to_string();
                tokens.push(Token {
                    kind: TokKind::Ident,
                    text: name,
                    line,
                });
            }
            _ => {
                s.bump();
                tokens.push(Token {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
            }
        }
    }
    Lexed { tokens, comments }
}

/// If the scanner sits on `r`/`b` opening a string-ish literal, consume
/// it fully and return true; otherwise consume nothing.
fn raw_or_byte_literal(s: &mut Scanner, first: u8) -> bool {
    // Work out the prefix shape without consuming.
    let mut i = 1;
    let mut raw = first == b'r';
    if first == b'b' {
        match s.peek(1) {
            Some(b'\'') => {
                // b'x' byte char.
                s.pos += 2;
                s.char_body();
                return true;
            }
            Some(b'r') => {
                raw = true;
                i = 2;
            }
            Some(b'"') => {
                s.pos += 2;
                s.string_body(0, true);
                return true;
            }
            _ => return false,
        }
    }
    if raw {
        let mut hashes = 0;
        while s.peek(i + hashes) == Some(b'#') {
            hashes += 1;
        }
        if s.peek(i + hashes) == Some(b'"') {
            for _ in 0..(i + hashes + 1) {
                s.bump();
            }
            s.string_body(hashes, false);
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        // A naive scanner would see unwrap(), a comment, and braces here.
        let src = r####"let x = r#"foo.unwrap() // not a comment "quote" { "#; call();"####;
        let l = lex(src);
        assert_eq!(idents(src), vec!["let", "x", "call"]);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
        assert!(l.comments.is_empty(), "no comment inside a raw string");
        assert!(
            !l.tokens.iter().any(|t| t.text == "{"),
            "braces inside raw strings are not tokens"
        );
    }

    #[test]
    fn raw_strings_respect_hash_depth() {
        // r#"…"# must not close on a bare quote.
        let src = r###"r#"a "b" c"# ; tail"###;
        assert_eq!(idents(src), vec!["tail"]);
        // And hash depth 2.
        let src2 = "r##\"inner \"# still\"## ; after";
        assert_eq!(idents(src2), vec!["after"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = r##"let a = b"bytes.unwrap()"; let c = b'x'; let r = br#"raw { bytes"#; done()"##;
        assert_eq!(
            idents(src),
            vec!["let", "a", "let", "c", "let", "r", "done"]
        );
        let l = lex(src);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            1,
            "b'x' is one byte-char literal"
        );
    }

    #[test]
    fn block_comments_nest() {
        let src = "before /* outer /* inner */ still comment */ after";
        assert_eq!(idents(src), vec!["before", "after"]);
        let l = lex(src);
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
    }

    #[test]
    fn unterminated_block_comment_swallows_to_eof_without_panicking() {
        let src = "a /* never closed\nb c";
        assert_eq!(idents(src), vec!["a"]);
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let src = "fn f<'a>(x: &'a str, c: char) { let y = 'a'; let z = '\\''; let n = '\\u{1F600}'; 'outer: loop { break 'outer; } }";
        let l = lex(src);
        let lifetimes: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "outer", "outer"]);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            3,
            "'a', '\\'' and '\\u{{1F600}}' are char literals"
        );
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let src = "x: &'static str, y: &'_ u8";
        let l = lex(src);
        let lifetimes: Vec<&str> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["static", "_"]);
    }

    #[test]
    fn macro_heavy_lines_keep_index_brackets_visible() {
        // vec![…] opens `[` after `!` (macro), a[0] opens `[` after an
        // ident (index) — the no-panic rule depends on that distinction
        // surviving the lexer.
        let src = "let v = vec![a[0], b[i + 1]]; assert_eq!(v[0], m::<T>()[1]);";
        let l = lex(src);
        let brackets: Vec<(usize, &str)> = l
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.text == "[")
            .map(|(i, _)| (i, l.tokens[i - 1].text.as_str()))
            .collect();
        // Preceding tokens: `!` (vec!), `a`, `b`, `!` (assert_eq!… no —
        // assert_eq! opens `(`), `v`, `)`.
        let preceding: Vec<&str> = brackets.iter().map(|&(_, p)| p).collect();
        assert_eq!(preceding, vec!["!", "a", "b", "v", ")"]);
    }

    #[test]
    fn raw_identifiers_keep_their_bare_name() {
        let src = "let r#type = r#fn + regular;";
        assert_eq!(idents(src), vec!["let", "type", "fn", "regular"]);
    }

    #[test]
    fn line_numbers_survive_multiline_literals_and_comments() {
        let src = "a\n\"two\nlines\"\n/* c\nc */\nb";
        let l = lex(src);
        let a = l.tokens.iter().find(|t| t.text == "a").expect("token a");
        let b = l.tokens.iter().find(|t| t.text == "b").expect("token b");
        assert_eq!(a.line, 1);
        assert_eq!(b.line, 6);
        assert_eq!(l.comments[0].line_start, 4);
        assert_eq!(l.comments[0].line_end, 5);
    }

    #[test]
    fn doc_comment_text_is_trimmed_of_framing() {
        let l = lex("/// SAFETY: documented\nfn f() {}");
        assert_eq!(l.comments[0].text, "SAFETY: documented");
    }

    #[test]
    fn strings_with_escapes_do_not_leak_tokens() {
        let src = r#"let s = "escaped \" quote // not a comment"; next()"#;
        assert_eq!(idents(src), vec!["let", "s", "next"]);
        assert!(lex(src).comments.is_empty());
    }
}
