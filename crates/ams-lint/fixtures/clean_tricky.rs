//! Fixture: lexical edge cases that must NOT fire inside a zone.

// ams-lint: begin(no-panic) lexer stress
fn tricky<'a>(s: &'a str) -> &'a str {
    let raw = r#"call .unwrap() and panic!("boom") and index x[0]"#;
    let byte = b"expect(nothing)";
    /* a block comment /* nested */ mentioning v[i].unwrap() */
    let ch = 'a';
    let lifetime_ref: &'a str = s;
    let msg = "escaped \" unwrap() \" quote";
    let got = s.get(0..1).unwrap_or_default();
    let _ = (raw, byte, ch, lifetime_ref, msg);
    got
}
// ams-lint: end(no-panic)
