//! Fixture: ledger↔event pairing in a server-like file.

struct Ledger {
    offered: u64,
    completed: u64,
    cache_hit: u64,
}

fn bad_offer(l: &mut Ledger) {
    l.offered += 1;
}

fn good_offer(l: &mut Ledger, obs: &Obs) {
    obs.emit(EventKind::Admitted);
    l.offered += 1;
}

fn merge(total: &mut Ledger, shard: &Ledger) {
    total.offered += shard.offered;
    total.completed += shard.completed;
}

fn bad_helper_call(cache: &Cache) {
    cache.ledger.record_hit(1);
}

fn good_helper_call(cache: &Cache, obs: &Obs) {
    cache.ledger.record_hit(1);
    obs.emit(EventKind::CacheHit);
}

fn record_hit(n: u64) {
    HITS.cache_hit += 1;
    let _ = n;
}

fn allowed_site(l: &mut Ledger) {
    l.completed += 1; // ams-lint: allow(ledger-event) event emitted by caller under the ledger lock
}
