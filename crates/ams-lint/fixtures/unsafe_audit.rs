//! Fixture: unsafe sites with and without SAFETY comments.

struct Ring(u8);

unsafe impl Send for Ring {}

// SAFETY: single-field POD; no thread affinity.
unsafe impl Sync for Ring {}

fn read(p: *const u8) -> u8 {
    unsafe { *p }
}

fn read_ok(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { *p }
}

fn read_trailing(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: p derived from a live reference above.
}
