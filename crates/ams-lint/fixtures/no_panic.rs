//! Fixture: no-panic zone violations and escapes.

fn outside() {
    let x = risky().unwrap(); // fine: not in a zone
    let _ = x;
}

// ams-lint: begin(no-panic) fixture hot path
fn hot(buf: &[u8], i: usize) -> u8 {
    let a = parse().unwrap();
    let b = parse().expect("never fails");
    if buf.is_empty() {
        panic!("empty");
    }
    assert_eq!(a, b);
    match a {
        0 => todo!(),
        1 => unimplemented!(),
        2 => unreachable!(),
        _ => {}
    }
    let c = buf[i];
    let d = buf[i + 1]; // ams-lint: allow(no-panic) caller checked i + 1 < len
    // ams-lint: allow(no-panic) standalone escape covers the next line
    let e = buf[0];
    let f = buf.get(1).copied().unwrap_or(0);
    a + b + c + d + e + f
}

// ams-lint: allow(no-panic) whole helper is fixture scaffolding
fn allowed_helper(v: &[u8]) -> u8 {
    v[0] + v.last().copied().unwrap()
}
// ams-lint: end(no-panic)

fn parse() -> Result<u8, ()> {
    Ok(0)
}
