//! Fixture: atomic ordering justification in a ring-like file.

fn push(ring: &Ring, slot: &Slot) {
    let h = ring.head.load(Ordering::Relaxed);
    // Acquire pairs with the seq Release store in pop: the slot's
    // payload writes happen-before we observe its seq.
    let s = slot.seq.load(Ordering::Acquire);
    ring.head.store(h + 1, Ordering::Relaxed); // Relaxed: head only advances via CAS winners; publication is via seq.
    slot.seq
        .store(s + 1, Ordering::Release); // Release: publishes the payload write to the consumer's Acquire load.
    let t = ring.tail.swap(0, Ordering::AcqRel);
    let _ = (h, s, t);
}

fn claim(slot: &Slot) {
    slot.state.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire).ok();
}
