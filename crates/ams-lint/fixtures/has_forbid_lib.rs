//! Fixture: a compliant crate root.
#![forbid(unsafe_code)]

pub fn noop() {}
