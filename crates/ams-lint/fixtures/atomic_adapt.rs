//! Fixture: atomic ordering justification in the weight-swap cell.

fn publish(cell: &Cell, next: Snapshot) {
    *cell.slot.lock().unwrap_or_else(|p| p.into_inner()) = next;
    cell.generation.store(1, Ordering::Release);
}

fn read_generation(cell: &Cell) -> u64 {
    // Acquire pairs with the Release store in publish: a reader that
    // observes generation G also observes the slot carrying G.
    cell.generation.load(Ordering::Acquire)
}

fn swap_probe(cell: &Cell) {
    let g = cell.generation.fetch_add(1, Ordering::AcqRel); // AcqRel ordering: the RMW both publishes the new generation and observes prior swaps.
    let s = cell.generation.swap(0, Ordering::SeqCst);
    let _ = (g, s);
}
