//! Fixture: stripe-lock discipline.

fn nested_bad(c: &Cache, a: usize, b: usize) {
    let g1 = c.stripes[a].lock().unwrap_or_else(|e| e.into_inner());
    let g2 = c.stripes[b].lock().unwrap_or_else(|e| e.into_inner());
    let _ = (g1, g2);
}

fn sequential_ok(c: &Cache, a: usize, b: usize) {
    let g1 = c.stripe(a).lock().expect("stripe lock");
    drop(g1);
    let g2 = c.stripe(b).lock().expect("stripe lock");
    let _ = g2;
}

fn scoped_ok(c: &Cache, a: usize, b: usize) {
    {
        let g1 = c.stripe(a).lock().expect("stripe lock");
        let _ = g1;
    }
    let g2 = c.stripe(b).lock().expect("stripe lock");
    let _ = g2;
}

fn temporary_ok(c: &Cache, a: usize, b: usize) {
    c.stripe(a).lock().expect("stripe lock").touch();
    c.stripe(b).lock().expect("stripe lock").touch();
}
