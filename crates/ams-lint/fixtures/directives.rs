//! Fixture: malformed directives are themselves findings.

fn f() {
    a(); // ams-lint: allow(no-panic)
    b(); // ams-lint: allow(imaginary-rule) because reasons
    c(); // ams-lint: allow no parens
}

// ams-lint: end(no-panic)

// ams-lint: begin(hot-path) unknown zone name
fn g() {}

// ams-lint: frobnicate(everything)

// ams-lint: begin(no-panic) never closed
fn h() {}
