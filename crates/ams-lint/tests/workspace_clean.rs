//! The repo's own standing acceptance test: the full workspace must
//! lint clean. Running this under `cargo test` (tier-1) means the
//! panic-freedom zones, ledger↔event pairing, unsafe/atomics audits,
//! and lock discipline are enforced even where `scripts/check.sh`
//! isn't — a PR that reintroduces an unpaired counter bump or an
//! unjustified ordering fails the test suite, not just the lint lane.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let (findings, nfiles) = ams_lint::scan_root(&root).expect("workspace root is readable");
    assert!(
        nfiles > 50,
        "walker found only {nfiles} files — scan root is wrong"
    );
    if !findings.is_empty() {
        for f in &findings {
            eprintln!("{}", f.render());
        }
        panic!(
            "{} ams-lint finding(s) — fix them or allow-list each with a reason (see LINTS.md)",
            findings.len()
        );
    }
}

#[test]
fn self_test_proves_every_rule_fires() {
    assert!(ams_lint::selftest::run(), "ams-lint --self-test failed");
}
