//! Property tests for the data substrate: value algebra (Lemma 1) and
//! determinism of simulated inference.

use ams_data::{Dataset, DatasetProfile, TruthTable};
use ams_models::{LabelSet, ModelId, ModelZoo};
use proptest::prelude::*;

fn fixture() -> (ModelZoo, TruthTable) {
    let zoo = ModelZoo::standard();
    let ds = Dataset::generate(DatasetProfile::Coco2017, 25, 314);
    let t = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
    (zoo, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// f(S,d) is order-independent: any permutation of S recalls the same value.
    #[test]
    fn value_is_order_independent(item_idx in 0usize..25, perm_seed in any::<u64>(), bits in 0u64..(1u64 << 30)) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let (_, t) = fixture();
        let item = t.item(item_idx);
        let mut subset: Vec<ModelId> =
            (0..30).filter(|i| bits >> i & 1 == 1).map(|i| ModelId(i as u8)).collect();
        let v1 = item.value_of_set(&subset, 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        subset.shuffle(&mut rng);
        let v2 = item.value_of_set(&subset, 0.5);
        prop_assert!((v1 - v2).abs() < 1e-9);
    }

    /// Recall of any subset lies in [0, 1] and the full set recalls 1.
    #[test]
    fn recall_bounds(item_idx in 0usize..25, bits in 0u64..(1u64 << 30)) {
        let (zoo, t) = fixture();
        let item = t.item(item_idx);
        let subset: Vec<ModelId> =
            (0..30).filter(|i| bits >> i & 1 == 1).map(|i| ModelId(i as u8)).collect();
        let r = item.recall_of_set(&subset, 0.5);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r));
        let all: Vec<ModelId> = zoo.ids().collect();
        prop_assert!((item.recall_of_set(&all, 0.5) - 1.0).abs() < 1e-9);
    }

    /// apply() gains exactly marginal_value() and is idempotent.
    #[test]
    fn apply_marginal_consistency(item_idx in 0usize..25, order_bits in 0u64..(1u64 << 30), model in 0u8..30) {
        let (_, t) = fixture();
        let item = t.item(item_idx);
        let mut state = LabelSet::new(item.universe());
        for i in 0..30 {
            if order_bits >> i & 1 == 1 {
                item.apply(&mut state, ModelId(i as u8), 0.5);
            }
        }
        let m = ModelId(model);
        let predicted = item.marginal_value(&state, m, 0.5);
        let gained = item.apply(&mut state, m, 0.5);
        prop_assert!((predicted - gained).abs() < 1e-9);
        // idempotent: applying again gains nothing
        let again = item.apply(&mut state, m, 0.5);
        prop_assert_eq!(again, 0.0);
    }

    /// Simulated inference is a pure function of (world, scene, model).
    #[test]
    fn inference_is_deterministic(scene_idx in 0usize..25, model in 0u8..30) {
        let zoo = ModelZoo::standard();
        let catalog = zoo.catalog();
        let ds = Dataset::generate(DatasetProfile::MirFlickr25, 25, 555);
        let spec = zoo.spec(ModelId(model));
        let a = ams_data::infer(&ds.scenes[scene_idx], spec, &catalog, 555);
        let b = ams_data::infer(&ds.scenes[scene_idx], spec, &catalog, 555);
        prop_assert_eq!(a.detections.len(), b.detections.len());
        for (x, y) in a.detections.iter().zip(&b.detections) {
            prop_assert_eq!(x.label, y.label);
            prop_assert!((x.confidence - y.confidence).abs() < 1e-9);
        }
    }

    /// Dataset generation is stable under the same seed and divergent under
    /// different seeds.
    #[test]
    fn dataset_seed_behaviour(seed in any::<u64>()) {
        let a = Dataset::generate(DatasetProfile::Places365, 12, seed);
        let b = Dataset::generate(DatasetProfile::Places365, 12, seed);
        for (x, y) in a.scenes.iter().zip(&b.scenes) {
            prop_assert_eq!(x.place.index, y.place.index);
            prop_assert_eq!(&x.objects, &y.objects);
            prop_assert_eq!(x.persons.len(), y.persons.len());
        }
        let c = Dataset::generate(DatasetProfile::Places365, 12, seed.wrapping_add(1));
        let same = a
            .scenes
            .iter()
            .zip(&c.scenes)
            .filter(|(x, y)| x.place.index == y.place.index && x.objects == y.objects)
            .count();
        prop_assert!(same < 12, "different seeds must diverge");
    }
}
