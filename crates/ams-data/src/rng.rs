//! Deterministic seed derivation.
//!
//! Every stochastic quantity in the substrate is a pure function of
//! `(world_seed, scene_id, model_id)` so that "executing" a model twice on
//! the same item yields byte-identical output — a property the ground-truth
//! tables and all experiments rely on.

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive an execution seed for `(world, scene, model)`.
pub fn exec_seed(world_seed: u64, scene_id: u64, model_index: usize) -> u64 {
    splitmix64(world_seed ^ splitmix64(scene_id) ^ splitmix64(0xA5A5_0000 ^ model_index as u64))
}

/// Derive a generation seed for the `i`-th scene of a dataset stream.
pub fn scene_seed(world_seed: u64, stream_tag: u64, i: u64) -> u64 {
    splitmix64(world_seed ^ splitmix64(stream_tag).rotate_left(17) ^ splitmix64(i ^ 0xDEAD_BEEF))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
        // consecutive inputs should not produce consecutive outputs
        let d = splitmix64(1).abs_diff(splitmix64(2));
        assert!(d > 1 << 20);
    }

    #[test]
    fn exec_seed_varies_in_every_argument() {
        let base = exec_seed(1, 2, 3);
        assert_ne!(base, exec_seed(9, 2, 3));
        assert_ne!(base, exec_seed(1, 9, 3));
        assert_ne!(base, exec_seed(1, 2, 9));
        assert_eq!(base, exec_seed(1, 2, 3));
    }

    #[test]
    fn scene_seed_distinct_across_streams() {
        assert_ne!(scene_seed(7, 0, 5), scene_seed(7, 1, 5));
        assert_ne!(scene_seed(7, 0, 5), scene_seed(7, 0, 6));
    }
}
