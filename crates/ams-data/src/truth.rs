//! Ground-truth tables: the paper's "execute all 30 models on every image
//! and store outputs + confidences" step (§VI-A), plus the value algebra of
//! Eq. (1) built on top.
//!
//! ## Value semantics
//!
//! * A label `l` is **valuable** for item `d` when some model outputs it
//!   with confidence ≥ `value_threshold`; its profit `p_l` is the *maximum*
//!   confidence any model assigns it.
//! * A subset `S ⊆ M` **recalls** `l` when some `m ∈ S` outputs `l` at or
//!   above the threshold.
//! * `f(S, d) = Σ p_l` over labels recalled by `S` — non-negative, monotone
//!   and submodular in `S` (Lemma 1), and order-independent.
//! * The **recall rate** of `S` is `f(S, d) / f(M, d)`.

use crate::dataset::Dataset;
use crate::infer::infer;
use ams_models::{LabelCatalog, LabelId, LabelSet, ModelId, ModelOutput, ModelZoo};
use serde::{Deserialize, Serialize};

/// Default "valuable label" confidence threshold.
pub const DEFAULT_VALUE_THRESHOLD: f32 = 0.5;

/// Per-item ground truth: every model's output plus precomputed value data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ItemTruth {
    /// Scene id this truth belongs to.
    pub scene_id: u64,
    /// Output of each model, indexed by `ModelId`.
    pub outputs: Vec<ModelOutput>,
    /// Valuable labels with their profits, sorted by label.
    pub valuable: Vec<(LabelId, f32)>,
    /// `f(M, d)`: total value of the full execution.
    pub total_value: f64,
    /// Static per-model value: `Σ conf` over the model's own valuable
    /// detections (used by the paper's "optimal" baseline, which sorts
    /// models by true output value).
    pub model_value: Vec<f64>,
}

impl ItemTruth {
    /// Execute the whole zoo on one scene and collect its ground truth —
    /// the single-item unit of [`TruthTable::build`]. Framework code labels
    /// ad-hoc scenes through this without materializing a one-element
    /// dataset and table.
    pub fn build(
        zoo: &ModelZoo,
        catalog: &LabelCatalog,
        scene: &crate::scene::Scene,
        world_seed: u64,
        threshold: f32,
    ) -> Self {
        let outputs: Vec<ModelOutput> = zoo
            .specs()
            .iter()
            .map(|spec| infer(scene, spec, catalog, world_seed))
            .collect();

        // profit of each label = max confidence across models, if ≥ threshold
        let mut best: Vec<(LabelId, f32)> = Vec::new();
        for out in &outputs {
            for d in out.valuable(threshold) {
                match best.binary_search_by_key(&d.label, |&(l, _)| l) {
                    Ok(i) => best[i].1 = best[i].1.max(d.confidence),
                    Err(i) => best.insert(i, (d.label, d.confidence)),
                }
            }
        }
        let total_value = best.iter().map(|&(_, c)| f64::from(c)).sum();
        let model_value = outputs.iter().map(|o| o.value(threshold)).collect();
        ItemTruth {
            scene_id: scene.id,
            outputs,
            valuable: best,
            total_value,
            model_value,
        }
    }

    /// Output of one model.
    pub fn output(&self, m: ModelId) -> &ModelOutput {
        &self.outputs[m.index()]
    }

    /// Profit of a label on this item (0 when not valuable).
    pub fn profit(&self, l: LabelId) -> f64 {
        self.valuable
            .binary_search_by_key(&l, |&(id, _)| id)
            .map(|i| f64::from(self.valuable[i].1))
            .unwrap_or(0.0)
    }

    /// Marginal value of executing `m` given labels already recalled in
    /// `state`: `Σ p_l` over the model's valuable detections whose label is
    /// not yet in `state`. This is
    /// `f(S ∪ {m}, d) − f(S, d)` when `state` is the recalled-label set of
    /// `S`.
    pub fn marginal_value(&self, state: &LabelSet, m: ModelId, threshold: f32) -> f64 {
        self.output(m)
            .valuable(threshold)
            .filter(|d| !state.contains(d.label))
            .map(|d| self.profit(d.label))
            .sum()
    }

    /// New-label value as the *reward* sees it (Eq. 3 numerator): sum of
    /// this model's own confidences over newly recalled valuable labels.
    pub fn new_label_confidence(&self, state: &LabelSet, m: ModelId, threshold: f32) -> f64 {
        self.output(m)
            .valuable(threshold)
            .filter(|d| !state.contains(d.label))
            .map(|d| f64::from(d.confidence))
            .sum()
    }

    /// Apply `m`'s execution to the recalled-label state; returns the value
    /// gained (profit mass newly recalled).
    pub fn apply(&self, state: &mut LabelSet, m: ModelId, threshold: f32) -> f64 {
        let mut gained = 0.0;
        for d in self.output(m).valuable(threshold) {
            if state.insert(d.label) {
                gained += self.profit(d.label);
            }
        }
        gained
    }

    /// `f(S, d)` for an explicit model subset.
    pub fn value_of_set(&self, models: &[ModelId], threshold: f32) -> f64 {
        let mut state = LabelSet::new(self.universe());
        let mut total = 0.0;
        for &m in models {
            total += self.apply(&mut state, m, threshold);
        }
        total
    }

    /// Recall rate of an explicit model subset.
    pub fn recall_of_set(&self, models: &[ModelId], threshold: f32) -> f64 {
        if self.total_value <= 0.0 {
            return 1.0;
        }
        self.value_of_set(models, threshold) / self.total_value
    }

    /// Universe size for state sets (max label index + 1 — the catalog len).
    pub fn universe(&self) -> usize {
        1104
    }

    /// Models whose execution yields at least one valuable label.
    pub fn valuable_models(&self, threshold: f32) -> Vec<ModelId> {
        (0..self.outputs.len())
            .map(|i| ModelId(i as u8))
            .filter(|&m| {
                self.model_value[m.index()] > 0.0
                    && self.output(m).valuable(threshold).next().is_some()
            })
            .collect()
    }
}

/// The full ground-truth table for a dataset under one world seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TruthTable {
    /// World seed executions were drawn under.
    pub world_seed: u64,
    /// Valuable-label confidence threshold.
    pub value_threshold: f32,
    /// Number of models per item.
    pub num_models: usize,
    items: Vec<ItemTruth>,
}

impl TruthTable {
    /// Execute the whole zoo on every scene of `dataset` and collect ground
    /// truth (the paper's §VI-A procedure).
    pub fn build(
        zoo: &ModelZoo,
        catalog: &LabelCatalog,
        dataset: &Dataset,
        threshold: f32,
    ) -> Self {
        let items = dataset
            .scenes
            .iter()
            .map(|scene| ItemTruth::build(zoo, catalog, scene, dataset.world_seed, threshold))
            .collect();
        Self {
            world_seed: dataset.world_seed,
            value_threshold: threshold,
            num_models: zoo.len(),
            items,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Ground truth of the `i`-th item.
    pub fn item(&self, i: usize) -> &ItemTruth {
        &self.items[i]
    }

    /// All items.
    pub fn items(&self) -> &[ItemTruth] {
        &self.items
    }

    /// Split views matching a dataset split.
    pub fn split(&self, split: crate::dataset::Split) -> (&[ItemTruth], &[ItemTruth]) {
        self.items.split_at(split.train_len)
    }

    /// Average `f(M, d)` across items (diagnostic).
    pub fn mean_total_value(&self) -> f64 {
        if self.items.is_empty() {
            return 0.0;
        }
        self.items.iter().map(|i| i.total_value).sum::<f64>() / self.items.len() as f64
    }

    /// Fraction of model executions that produce at least one valuable
    /// label (Fig. 1's blue-box rate; the paper's sample shows 14/30).
    pub fn valuable_execution_rate(&self) -> f64 {
        let mut valuable = 0usize;
        let mut total = 0usize;
        for it in &self.items {
            for m in 0..self.num_models {
                total += 1;
                if it
                    .output(ModelId(m as u8))
                    .valuable(self.value_threshold)
                    .next()
                    .is_some()
                {
                    valuable += 1;
                }
            }
        }
        valuable as f64 / total.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetProfile;

    fn small_table() -> (ModelZoo, TruthTable) {
        let zoo = ModelZoo::standard();
        let catalog = zoo.catalog();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 40, 11);
        let table = TruthTable::build(&zoo, &catalog, &ds, DEFAULT_VALUE_THRESHOLD);
        (zoo, table)
    }

    #[test]
    fn build_covers_all_items_and_models() {
        let (zoo, table) = small_table();
        assert_eq!(table.len(), 40);
        for it in table.items() {
            assert_eq!(it.outputs.len(), zoo.len());
        }
    }

    #[test]
    fn total_value_equals_full_set_value() {
        let (zoo, table) = small_table();
        let all: Vec<ModelId> = zoo.ids().collect();
        for it in table.items() {
            let v = it.value_of_set(&all, table.value_threshold);
            assert!(
                (v - it.total_value).abs() < 1e-9,
                "item {}: {v} vs {}",
                it.scene_id,
                it.total_value
            );
            assert!((it.recall_of_set(&all, table.value_threshold) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn value_is_monotone_in_set() {
        let (zoo, table) = small_table();
        let all: Vec<ModelId> = zoo.ids().collect();
        for it in table.items().iter().take(10) {
            let mut prev = 0.0;
            for k in 0..=all.len() {
                let v = it.value_of_set(&all[..k], table.value_threshold);
                assert!(v >= prev - 1e-12, "monotonicity violated at k={k}");
                prev = v;
            }
        }
    }

    #[test]
    fn marginal_value_matches_apply() {
        let (zoo, table) = small_table();
        let t = table.value_threshold;
        for it in table.items().iter().take(10) {
            let mut state = LabelSet::new(it.universe());
            for m in zoo.ids() {
                let predicted = it.marginal_value(&state, m, t);
                let gained = it.apply(&mut state, m, t);
                assert!((predicted - gained).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn profits_are_max_confidences() {
        let (_, table) = small_table();
        for it in table.items().iter().take(10) {
            for &(l, p) in &it.valuable {
                let max_conf = it
                    .outputs
                    .iter()
                    .filter_map(|o| o.confidence_of(l))
                    .fold(0.0f32, f32::max);
                assert!((p - max_conf).abs() < 1e-6);
                assert!(p >= table.value_threshold);
            }
        }
    }

    #[test]
    fn some_executions_are_wasted() {
        // Fig. 1 / §II: a large portion of executions yield nothing valuable.
        let (_, table) = small_table();
        let rate = table.valuable_execution_rate();
        assert!(rate > 0.15 && rate < 0.75, "valuable-execution rate {rate}");
    }

    #[test]
    fn valuable_models_nonempty_for_typical_items() {
        let (_, table) = small_table();
        let nonempty = table
            .items()
            .iter()
            .filter(|it| !it.valuable_models(table.value_threshold).is_empty())
            .count();
        assert!(
            nonempty >= 38,
            "{nonempty}/40 items should have valuable models"
        );
    }

    #[test]
    fn deterministic_rebuild() {
        let (_, a) = small_table();
        let (_, b) = small_table();
        for (x, y) in a.items().iter().zip(b.items()) {
            assert_eq!(x.valuable.len(), y.valuable.len());
            assert!((x.total_value - y.total_value).abs() < 1e-12);
        }
    }
}
