//! # ams-data — synthetic data substrate
//!
//! The paper evaluates on 394 170 real images from five public datasets and
//! obtains ground truth by running all 30 models on every image. Neither the
//! images nor the pretrained models are available here, so this crate builds
//! the closest synthetic equivalent:
//!
//! * [`scene`] — a **latent scene graph** per data item: the ground-truth
//!   semantic content (persons with face/pose/action/emotion/gender/hands,
//!   dogs with breeds, objects, a place). This plays the role of the pixels.
//! * [`templates`] + [`generator`] — a generative model over scenes with
//!   strong *conditional structure* (indoor place → household objects,
//!   person → face → emotion, sports place → sports action, …). The DRL
//!   agent's entire job is to mine exactly this structure from model
//!   outputs, so the substitution preserves the learning problem.
//! * [`dataset`] — five dataset profiles mirroring the content skews of
//!   Stanford40 / PASCAL VOC 2012 / MSCOCO 2017 / MirFlickr25 / Places365,
//!   with the paper's 1:4 train/test split.
//! * [`infer`] — **simulated model execution**: a deterministic stochastic
//!   map `(scene, model spec) → ModelOutput` honouring each model's quality
//!   profile (recall, confidence noise, false positives).
//! * [`truth`] — the "execute everything once" ground-truth table the paper
//!   builds in §VI-A, with the value/recall algebra of Eq. (1) on top.
//!
//! Everything is deterministic under a `world_seed`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod dataset;
pub mod generator;
pub mod infer;
pub mod rng;
pub mod scene;
pub mod templates;
pub mod truth;

pub use dataset::{Dataset, DatasetProfile, Split};
pub use generator::SceneGenerator;
pub use infer::{infer, infer_all};
pub use scene::{DogInstance, Person, Place, Scene};
pub use templates::TemplateKind;
pub use truth::{ItemTruth, TruthTable};
