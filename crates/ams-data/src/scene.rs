//! Latent scene graphs: the ground-truth semantic content of a data item.

use serde::{Deserialize, Serialize};

/// A person in a scene and which of their attributes are observable.
///
/// Visibility flags gate which tasks can produce valuable output: a face
/// detector needs `face_visible`, a pose estimator needs `body_visible`,
/// hand landmarks need `hands_visible`, and so on — this is the content
/// dependence that makes model value unpredictable before execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Person {
    /// Apparent size in frame, `0.3..=1.0`; scales detection probability.
    pub scale: f32,
    /// Whether the face is visible (enables face det/landmark/emotion).
    pub face_visible: bool,
    /// Whether enough of the body is visible for pose keypoints.
    pub body_visible: bool,
    /// Whether hands are visible (enables hand landmarks).
    pub hands_visible: bool,
    /// Gender attribute (within-task index into the 2 gender labels).
    pub gender: u8,
    /// Emotion attribute (within-task index into the 7 emotion labels);
    /// only observable when the face is visible.
    pub emotion: u8,
    /// Action the person performs (within-task index into the 400 action
    /// labels), if any.
    pub action: Option<u16>,
}

/// A dog in a scene.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DogInstance {
    /// Breed (within-task index into the 120 dog labels).
    pub breed: u16,
    /// Apparent size in frame, `0.3..=1.0`.
    pub scale: f32,
}

/// The place a scene depicts.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Place {
    /// Within-task index into the 365 place labels.
    pub index: u16,
    /// Whether the place is an indoor category.
    pub indoor: bool,
}

/// The full latent content of one data item.
///
/// A `Scene` is what a photograph *contains*; model outputs are noisy,
/// partial views of it produced by [`crate::infer`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scene {
    /// Unique id within its dataset stream (also the determinism key).
    pub id: u64,
    /// The place.
    pub place: Place,
    /// People present.
    pub persons: Vec<Person>,
    /// Dogs present.
    pub dogs: Vec<DogInstance>,
    /// Non-person, non-dog objects present (within-task indices into the 80
    /// object labels), sorted and deduplicated.
    pub objects: Vec<u16>,
    /// Which template generated the scene (for analysis/debugging).
    pub template: crate::templates::TemplateKind,
}

impl Scene {
    /// Whether any person's face is visible.
    pub fn any_face(&self) -> bool {
        self.persons.iter().any(|p| p.face_visible)
    }

    /// Whether any person's body is visible (pose-estimable).
    pub fn any_body(&self) -> bool {
        self.persons.iter().any(|p| p.body_visible)
    }

    /// Whether any person's hands are visible.
    pub fn any_hands(&self) -> bool {
        self.persons.iter().any(|p| p.hands_visible)
    }

    /// Largest person scale, or 0 when no people are present.
    pub fn max_person_scale(&self) -> f32 {
        self.persons.iter().map(|p| p.scale).fold(0.0, f32::max)
    }

    /// Largest dog scale, or 0 when no dogs are present.
    pub fn max_dog_scale(&self) -> f32 {
        self.dogs.iter().map(|d| d.scale).fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::TemplateKind;

    fn person(face: bool, body: bool, hands: bool, scale: f32) -> Person {
        Person {
            scale,
            face_visible: face,
            body_visible: body,
            hands_visible: hands,
            gender: 0,
            emotion: 3,
            action: None,
        }
    }

    #[test]
    fn visibility_aggregates() {
        let s = Scene {
            id: 0,
            place: Place {
                index: 0,
                indoor: true,
            },
            persons: vec![
                person(true, false, false, 0.5),
                person(false, true, true, 0.9),
            ],
            dogs: vec![],
            objects: vec![],
            template: TemplateKind::IndoorSocial,
        };
        assert!(s.any_face());
        assert!(s.any_body());
        assert!(s.any_hands());
        assert!((s.max_person_scale() - 0.9).abs() < 1e-6);
        assert_eq!(s.max_dog_scale(), 0.0);
    }

    #[test]
    fn empty_scene_has_no_visibility() {
        let s = Scene {
            id: 1,
            place: Place {
                index: 25,
                indoor: false,
            },
            persons: vec![],
            dogs: vec![DogInstance {
                breed: 0,
                scale: 0.7,
            }],
            objects: vec![1],
            template: TemplateKind::AnimalScene,
        };
        assert!(!s.any_face());
        assert!(!s.any_body());
        assert!(!s.any_hands());
        assert!((s.max_dog_scale() - 0.7).abs() < 1e-6);
    }
}
