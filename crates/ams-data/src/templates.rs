//! Scene templates: the conditional structure of the generative model.
//!
//! Each template encodes common-sense correlations between scene elements —
//! exactly the kind of structure the paper's own Fig. 7 example exhibits
//! ("pub" → cups on tables → people drinking beer). Datasets are mixtures
//! over templates (see [`crate::dataset`]), which gives each dataset the
//! distinct content skew that §VI-D's transfer experiments rely on.

use crate::scene::{DogInstance, Person, Place, Scene};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The seven scene templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemplateKind {
    /// Indoor social scene: pubs, restaurants, living rooms; people eating,
    /// drinking, chatting; household objects; faces often visible.
    IndoorSocial,
    /// Outdoor sports: stadiums, parks, slopes; full-body people performing
    /// sports actions with sports gear; faces often small/occluded.
    OutdoorSport,
    /// Animal-centric outdoor scene: dogs (with breeds), occasional
    /// dog-walkers, parks and lawns.
    AnimalScene,
    /// Object still-life: indoor scenes with objects but no people.
    ObjectStill,
    /// Urban street scene: vehicles, pedestrians, street furniture.
    StreetScene,
    /// Close-up portrait: one or two large faces, rich emotion signal,
    /// little body visibility.
    Portrait,
    /// Scenic landscape: outdoor places with little or no foreground
    /// content — only the place classifiers produce value.
    Landscape,
}

impl TemplateKind {
    /// All templates.
    pub const ALL: [TemplateKind; 7] = [
        TemplateKind::IndoorSocial,
        TemplateKind::OutdoorSport,
        TemplateKind::AnimalScene,
        TemplateKind::ObjectStill,
        TemplateKind::StreetScene,
        TemplateKind::Portrait,
        TemplateKind::Landscape,
    ];
}

// ---------------------------------------------------------------------------
// Label-index pools (within-task indices; names asserted against the catalog
// in tests at the bottom of this file).
// ---------------------------------------------------------------------------

/// Indoor social places: pub, beer hall, kitchen, living room, restaurant, …
pub const INDOOR_SOCIAL_PLACES: &[u16] = &[0, 1, 5, 10, 14, 3, 4];
/// Other indoor places: bathroom, lobby, office, classroom, gym, museum,
/// library, supermarket, corridor, stage, garage, church, airport terminal.
pub const INDOOR_OTHER_PLACES: &[u16] = &[2, 4, 7, 8, 9, 11, 12, 13, 15, 16, 17, 18, 19];
/// Outdoor sporty places: stadium, park, beach, ski slope, playground, trail.
pub const OUTDOOR_SPORT_PLACES: &[u16] = &[25, 24, 21, 34, 30, 39];
/// Outdoor nature places: mountain, forest, lake, desert, river, garden,
/// campsite, farm.
pub const OUTDOOR_NATURE_PLACES: &[u16] = &[20, 22, 27, 28, 35, 36, 33, 31];
/// Outdoor urban places: street, plaza, parking lot, harbor, bridge.
pub const OUTDOOR_URBAN_PLACES: &[u16] = &[23, 38, 37, 29, 32];
/// Park-like places for animal scenes: park, lawn, forest, farm, garden.
pub const ANIMAL_PLACES: &[u16] = &[24, 26, 22, 31, 36];

/// Household objects: bottle, wine glass, cup, bowl, chair, couch, bed,
/// dining table, toilet, tv monitor, laptop, microwave, oven, sink,
/// refrigerator, book, clock, vase.
pub const HOUSEHOLD_OBJECTS: &[u16] = &[
    31, 32, 33, 37, 47, 48, 50, 51, 52, 53, 54, 59, 60, 62, 63, 64, 65, 66,
];
/// Food objects: banana, apple, sandwich, orange, broccoli, carrot, pizza,
/// donut, cake.
pub const FOOD_OBJECTS: &[u16] = &[38, 39, 40, 41, 42, 43, 44, 45, 46];
/// Vehicles and street furniture: bicycle, car, motorcycle, bus, truck,
/// boat, traffic light, fire hydrant, stop sign, parking meter, bench.
pub const STREET_OBJECTS: &[u16] = &[3, 4, 5, 6, 7, 8, 71, 72, 73, 74, 75];
/// Sports gear: frisbee, skis, snowboard, sports ball, kite, baseball bat,
/// skateboard, surfboard, tennis racket, bicycle.
pub const SPORT_OBJECTS: &[u16] = &[22, 23, 24, 25, 26, 27, 28, 29, 30, 3];
/// Wild/farm animals (non-dog): cat, bird, horse, sheep, cow, elephant,
/// bear, zebra, giraffe.
pub const ANIMAL_OBJECTS: &[u16] = &[2, 9, 10, 11, 12, 13, 14, 15, 16];
/// Personal accessories: backpack, umbrella, handbag, tie, suitcase,
/// cell phone.
pub const ACCESSORY_OBJECTS: &[u16] = &[17, 18, 19, 20, 21, 58];

/// Sports actions (named head of the action range).
pub const SPORT_ACTIONS: &[u16] = &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
/// Social actions: drinking beer, making up, cooking, reading, dancing,
/// singing, playing guitar, shaking hands, hugging, eating, drinking coffee,
/// phoning.
pub const SOCIAL_ACTIONS: &[u16] = &[12, 13, 15, 16, 18, 19, 20, 22, 23, 25, 26, 28];
/// Street actions: walking the dog, phoning, taking photo, waving, running.
pub const STREET_ACTIONS: &[u16] = &[27, 28, 21, 24, 9];

/// The within-task index of the "walking the dog" action.
pub const WALK_DOG_ACTION: u16 = 27;
/// The within-task index of the "person" object label.
pub const PERSON_OBJECT: u16 = 0;
/// The within-task index of the "dog" object label.
pub const DOG_OBJECT: u16 = 1;

/// Indoor/outdoor rule for synthetic places (index ≥ 40): even indices are
/// indoor, odd are outdoor. Named places 0..20 are indoor, 20..40 outdoor.
pub fn place_is_indoor(index: u16) -> bool {
    if index < 20 {
        true
    } else if index < 40 {
        false
    } else {
        index.is_multiple_of(2)
    }
}

// ---------------------------------------------------------------------------
// Sampling helpers
// ---------------------------------------------------------------------------

fn pick(rng: &mut SmallRng, pool: &[u16]) -> u16 {
    pool[rng.gen_range(0..pool.len())]
}

/// Pick from a named pool w.p. `1 - synth_p`, otherwise a synthetic index
/// from `synth` matching the wanted indoor-ness (places) or any (actions).
fn pick_place(rng: &mut SmallRng, pool: &[u16], indoor: bool, synth_p: f64) -> u16 {
    if rng.gen_bool(synth_p) {
        // synthetic places: 40..365, parity encodes indoor-ness
        loop {
            let idx = rng.gen_range(40..365) as u16;
            if place_is_indoor(idx) == indoor {
                return idx;
            }
        }
    } else {
        pick(rng, pool)
    }
}

fn pick_action(
    rng: &mut SmallRng,
    pool: &[u16],
    synth_range: std::ops::Range<u16>,
    synth_p: f64,
) -> u16 {
    if rng.gen_bool(synth_p) {
        rng.gen_range(synth_range.start..synth_range.end)
    } else {
        pick(rng, pool)
    }
}

struct PersonCfg {
    face_p: f64,
    body_p: f64,
    hands_p: f64,
    action_p: f64,
    scale_range: (f32, f32),
}

fn sample_person(
    rng: &mut SmallRng,
    cfg: &PersonCfg,
    action_pool: &[u16],
    synth_actions: std::ops::Range<u16>,
) -> Person {
    let face_visible = rng.gen_bool(cfg.face_p);
    let body_visible = rng.gen_bool(cfg.body_p);
    // hands require a visible body most of the time
    let hands_visible = body_visible && rng.gen_bool(cfg.hands_p);
    let action = if rng.gen_bool(cfg.action_p) {
        Some(pick_action(rng, action_pool, synth_actions, 0.35))
    } else {
        None
    };
    Person {
        scale: rng.gen_range(cfg.scale_range.0..=cfg.scale_range.1),
        face_visible,
        body_visible,
        hands_visible,
        gender: rng.gen_range(0..2),
        emotion: rng.gen_range(0..7),
        action,
    }
}

fn sample_objects(rng: &mut SmallRng, pools: &[(&[u16], usize)]) -> Vec<u16> {
    let mut objects = Vec::new();
    for &(pool, max_n) in pools {
        let n = rng.gen_range(0..=max_n);
        for _ in 0..n {
            objects.push(pick(rng, pool));
        }
    }
    objects.sort_unstable();
    objects.dedup();
    objects
}

/// Sample a scene's content from a template. `id` is assigned by the caller.
pub fn sample(kind: TemplateKind, id: u64, rng: &mut SmallRng) -> Scene {
    // Synthetic actions live in two bands: sporty 29..150, social 150..400.
    const SYNTH_SPORT: std::ops::Range<u16> = 29..150;
    const SYNTH_SOCIAL: std::ops::Range<u16> = 150..400;

    let (place, persons, dogs, objects) = match kind {
        TemplateKind::IndoorSocial => {
            let place_idx = pick_place(rng, INDOOR_SOCIAL_PLACES, true, 0.25);
            let n = rng.gen_range(1..=4);
            let cfg = PersonCfg {
                face_p: 0.85,
                body_p: 0.65,
                hands_p: 0.55,
                action_p: 0.8,
                scale_range: (0.4, 1.0),
            };
            let persons: Vec<Person> = (0..n)
                .map(|_| sample_person(rng, &cfg, SOCIAL_ACTIONS, SYNTH_SOCIAL))
                .collect();
            let dogs = if rng.gen_bool(0.05) {
                vec![DogInstance {
                    breed: rng.gen_range(0..120),
                    scale: rng.gen_range(0.3..0.7),
                }]
            } else {
                vec![]
            };
            let objects = sample_objects(
                rng,
                &[
                    (HOUSEHOLD_OBJECTS, 4),
                    (FOOD_OBJECTS, 2),
                    (ACCESSORY_OBJECTS, 1),
                ],
            );
            (place_idx, persons, dogs, objects)
        }
        TemplateKind::OutdoorSport => {
            let place_idx = pick_place(rng, OUTDOOR_SPORT_PLACES, false, 0.25);
            let n = rng.gen_range(1..=3);
            let cfg = PersonCfg {
                face_p: 0.45,
                body_p: 0.95,
                hands_p: 0.6,
                action_p: 0.95,
                scale_range: (0.5, 1.0),
            };
            let persons: Vec<Person> = (0..n)
                .map(|_| sample_person(rng, &cfg, SPORT_ACTIONS, SYNTH_SPORT))
                .collect();
            let objects = sample_objects(rng, &[(SPORT_OBJECTS, 3), (ACCESSORY_OBJECTS, 1)]);
            (place_idx, persons, vec![], objects)
        }
        TemplateKind::AnimalScene => {
            let place_idx = pick_place(rng, ANIMAL_PLACES, false, 0.2);
            let n_dogs = rng.gen_range(1..=2);
            let dogs: Vec<DogInstance> = (0..n_dogs)
                .map(|_| DogInstance {
                    breed: rng.gen_range(0..120),
                    scale: rng.gen_range(0.4..1.0),
                })
                .collect();
            let persons = if rng.gen_bool(0.4) {
                let cfg = PersonCfg {
                    face_p: 0.5,
                    body_p: 0.85,
                    hands_p: 0.4,
                    action_p: 1.0,
                    scale_range: (0.4, 0.9),
                };
                let mut p = sample_person(rng, &cfg, &[WALK_DOG_ACTION], 0..1);
                p.action = Some(WALK_DOG_ACTION);
                vec![p]
            } else {
                vec![]
            };
            let objects = sample_objects(rng, &[(ANIMAL_OBJECTS, 1)]);
            (place_idx, persons, dogs, objects)
        }
        TemplateKind::ObjectStill => {
            let place_idx = pick_place(rng, INDOOR_OTHER_PLACES, true, 0.35);
            let objects = sample_objects(
                rng,
                &[
                    (HOUSEHOLD_OBJECTS, 6),
                    (FOOD_OBJECTS, 4),
                    (ACCESSORY_OBJECTS, 2),
                ],
            );
            (place_idx, vec![], vec![], objects)
        }
        TemplateKind::StreetScene => {
            let place_idx = pick_place(rng, OUTDOOR_URBAN_PLACES, false, 0.3);
            let n = rng.gen_range(0..=3);
            let cfg = PersonCfg {
                face_p: 0.35,
                body_p: 0.7,
                hands_p: 0.3,
                action_p: 0.5,
                scale_range: (0.3, 0.7),
            };
            let persons: Vec<Person> = (0..n)
                .map(|_| sample_person(rng, &cfg, STREET_ACTIONS, SYNTH_SOCIAL))
                .collect();
            let dogs = if rng.gen_bool(0.08) {
                vec![DogInstance {
                    breed: rng.gen_range(0..120),
                    scale: rng.gen_range(0.3..0.6),
                }]
            } else {
                vec![]
            };
            let objects = sample_objects(rng, &[(STREET_OBJECTS, 5), (ACCESSORY_OBJECTS, 1)]);
            (place_idx, persons, dogs, objects)
        }
        TemplateKind::Portrait => {
            let indoor = rng.gen_bool(0.7);
            let pool = if indoor {
                INDOOR_OTHER_PLACES
            } else {
                OUTDOOR_NATURE_PLACES
            };
            let place_idx = pick_place(rng, pool, indoor, 0.3);
            let n = rng.gen_range(1..=2);
            let cfg = PersonCfg {
                face_p: 0.98,
                body_p: 0.25,
                hands_p: 0.35,
                action_p: 0.4,
                scale_range: (0.7, 1.0),
            };
            let persons: Vec<Person> = (0..n)
                .map(|_| sample_person(rng, &cfg, SOCIAL_ACTIONS, SYNTH_SOCIAL))
                .collect();
            let objects = sample_objects(rng, &[(ACCESSORY_OBJECTS, 1)]);
            (place_idx, persons, vec![], objects)
        }
        TemplateKind::Landscape => {
            let place_idx = pick_place(rng, OUTDOOR_NATURE_PLACES, false, 0.4);
            let objects = sample_objects(rng, &[(ANIMAL_OBJECTS, 1), (STREET_OBJECTS, 1)]);
            (place_idx, vec![], vec![], objects)
        }
    };

    Scene {
        id,
        place: Place {
            index: place,
            indoor: place_is_indoor(place),
        },
        persons,
        dogs,
        objects,
        template: kind,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_models::{LabelCatalog, Task};
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    /// The index pools must point at the labels their doc comments claim.
    #[test]
    fn pools_match_catalog_names() {
        let c = LabelCatalog::standard();
        let obj = |i: u16| {
            c.name(c.label(Task::ObjectDetection, i as usize))
                .to_string()
        };
        let place = |i: u16| {
            c.name(c.label(Task::PlaceClassification, i as usize))
                .to_string()
        };
        let act = |i: u16| {
            c.name(c.label(Task::ActionClassification, i as usize))
                .to_string()
        };

        assert_eq!(obj(PERSON_OBJECT), "person");
        assert_eq!(obj(DOG_OBJECT), "dog");
        assert_eq!(place(INDOOR_SOCIAL_PLACES[0]), "pub");
        assert_eq!(place(INDOOR_SOCIAL_PLACES[1]), "beer hall");
        assert_eq!(act(SOCIAL_ACTIONS[0]), "drinking beer");
        assert_eq!(act(WALK_DOG_ACTION), "walking the dog");
        assert_eq!(act(SPORT_ACTIONS[0]), "riding bike");
        assert_eq!(obj(HOUSEHOLD_OBJECTS[2]), "cup");
        assert_eq!(obj(STREET_OBJECTS[0]), "bicycle");
    }

    #[test]
    fn place_indoor_rule() {
        assert!(place_is_indoor(0));
        assert!(place_is_indoor(19));
        assert!(!place_is_indoor(20));
        assert!(!place_is_indoor(39));
        assert!(place_is_indoor(40));
        assert!(!place_is_indoor(41));
    }

    #[test]
    fn indoor_social_scenes_have_people_indoors() {
        let mut r = rng(7);
        for i in 0..50 {
            let s = sample(TemplateKind::IndoorSocial, i, &mut r);
            assert!(!s.persons.is_empty());
            assert!(s.place.indoor, "indoor social scene must be indoor");
        }
    }

    #[test]
    fn landscapes_are_empty_of_people() {
        let mut r = rng(8);
        for i in 0..50 {
            let s = sample(TemplateKind::Landscape, i, &mut r);
            assert!(s.persons.is_empty());
            assert!(s.dogs.is_empty());
            assert!(!s.place.indoor);
        }
    }

    #[test]
    fn animal_scenes_have_dogs() {
        let mut r = rng(9);
        for i in 0..50 {
            let s = sample(TemplateKind::AnimalScene, i, &mut r);
            assert!(!s.dogs.is_empty());
            for d in &s.dogs {
                assert!(d.breed < 120);
            }
            // any person in an animal scene is a dog walker
            for p in &s.persons {
                assert_eq!(p.action, Some(WALK_DOG_ACTION));
            }
        }
    }

    #[test]
    fn sport_scenes_bias_to_sport_actions() {
        let mut r = rng(10);
        let mut sporty = 0;
        let mut total = 0;
        for i in 0..200 {
            let s = sample(TemplateKind::OutdoorSport, i, &mut r);
            assert!(!s.place.indoor);
            for p in &s.persons {
                if let Some(a) = p.action {
                    total += 1;
                    if a < 12 || (29..150).contains(&a) {
                        sporty += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            sporty as f64 / total as f64 > 0.95,
            "sport scenes should have sporty actions ({sporty}/{total})"
        );
    }

    #[test]
    fn portraits_have_visible_faces() {
        let mut r = rng(11);
        let mut faces = 0;
        let mut persons = 0;
        for i in 0..100 {
            let s = sample(TemplateKind::Portrait, i, &mut r);
            persons += s.persons.len();
            faces += s.persons.iter().filter(|p| p.face_visible).count();
        }
        assert!(faces as f64 / persons as f64 > 0.9);
    }

    #[test]
    fn objects_are_sorted_dedup() {
        let mut r = rng(12);
        for i in 0..100 {
            let s = sample(TemplateKind::ObjectStill, i, &mut r);
            let mut sorted = s.objects.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(s.objects, sorted);
            assert!(s.persons.is_empty());
        }
    }

    #[test]
    fn scene_ids_pass_through() {
        let mut r = rng(13);
        let s = sample(TemplateKind::StreetScene, 424242, &mut r);
        assert_eq!(s.id, 424242);
        assert_eq!(s.template, TemplateKind::StreetScene);
    }
}
