//! Scene generation: sampling scenes from a template mixture.

use crate::rng::scene_seed;
use crate::scene::Scene;
use crate::templates::{self, TemplateKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A generator that samples scenes from a weighted mixture of templates.
///
/// Scene `i` of a generator is a pure function of
/// `(world_seed, stream_tag, i)`, so datasets can be regenerated lazily or in
/// parallel without storing anything.
#[derive(Debug, Clone)]
pub struct SceneGenerator {
    weights: Vec<(TemplateKind, f64)>,
    total_weight: f64,
    world_seed: u64,
    stream_tag: u64,
}

impl SceneGenerator {
    /// Build a generator from `(template, weight)` pairs.
    ///
    /// # Panics
    /// Panics if the weights are empty or sum to a non-positive value.
    pub fn new(weights: Vec<(TemplateKind, f64)>, world_seed: u64, stream_tag: u64) -> Self {
        let total_weight: f64 = weights.iter().map(|(_, w)| w).sum();
        assert!(
            !weights.is_empty() && total_weight > 0.0,
            "invalid template mixture"
        );
        Self {
            weights,
            total_weight,
            world_seed,
            stream_tag,
        }
    }

    /// The mixture weights.
    pub fn weights(&self) -> &[(TemplateKind, f64)] {
        &self.weights
    }

    fn pick_template(&self, rng: &mut SmallRng) -> TemplateKind {
        let mut x = rng.gen_range(0.0..self.total_weight);
        for &(kind, w) in &self.weights {
            if x < w {
                return kind;
            }
            x -= w;
        }
        self.weights.last().expect("non-empty").0
    }

    /// Generate the `i`-th scene of the stream.
    pub fn scene(&self, i: u64) -> Scene {
        let seed = scene_seed(self.world_seed, self.stream_tag, i);
        let mut rng = SmallRng::seed_from_u64(seed);
        let kind = self.pick_template(&mut rng);
        templates::sample(kind, i, &mut rng)
    }

    /// Generate scenes `0..n` eagerly.
    pub fn scenes(&self, n: usize) -> Vec<Scene> {
        (0..n as u64).map(|i| self.scene(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> SceneGenerator {
        SceneGenerator::new(
            vec![
                (TemplateKind::IndoorSocial, 0.5),
                (TemplateKind::Landscape, 0.5),
            ],
            42,
            0,
        )
    }

    #[test]
    fn deterministic_regeneration() {
        let g = gen();
        let a = g.scene(17);
        let b = g.scene(17);
        assert_eq!(a.id, b.id);
        assert_eq!(a.template, b.template);
        assert_eq!(a.place.index, b.place.index);
        assert_eq!(a.persons.len(), b.persons.len());
        assert_eq!(a.objects, b.objects);
    }

    #[test]
    fn different_indices_differ() {
        let g = gen();
        let scenes = g.scenes(64);
        // at least two distinct templates should appear in 64 draws
        let distinct: std::collections::HashSet<_> = scenes.iter().map(|s| s.template).collect();
        assert!(distinct.len() >= 2);
    }

    #[test]
    fn mixture_roughly_respected() {
        let g = SceneGenerator::new(
            vec![
                (TemplateKind::Portrait, 0.9),
                (TemplateKind::Landscape, 0.1),
            ],
            1,
            2,
        );
        let scenes = g.scenes(500);
        let portraits = scenes
            .iter()
            .filter(|s| s.template == TemplateKind::Portrait)
            .count();
        let frac = portraits as f64 / 500.0;
        assert!((0.8..1.0).contains(&frac), "portrait fraction {frac}");
    }

    #[test]
    fn different_streams_differ() {
        let g1 = SceneGenerator::new(vec![(TemplateKind::StreetScene, 1.0)], 42, 0);
        let g2 = SceneGenerator::new(vec![(TemplateKind::StreetScene, 1.0)], 42, 1);
        let diff = (0..32)
            .filter(|&i| {
                let a = g1.scene(i);
                let b = g2.scene(i);
                a.place.index != b.place.index || a.objects != b.objects
            })
            .count();
        assert!(diff > 16, "streams should decorrelate ({diff}/32 differ)");
    }

    #[test]
    #[should_panic(expected = "invalid template mixture")]
    fn empty_mixture_panics() {
        let _ = SceneGenerator::new(vec![], 0, 0);
    }
}
