//! Dataset profiles and train/test splitting.
//!
//! The five profiles mirror the content skew of the paper's five public
//! datasets (§VI-A): Stanford40 is human-action-centric, PASCAL VOC covers a
//! broad range of objects/animals/vehicles, MSCOCO is objects-in-context,
//! MirFlickr is social photography, and Places365 is scene-centric. A sixth
//! profile (`DogHeavy`) supports the §VI-D "extreme transfer" limitation
//! study.

use crate::generator::SceneGenerator;
use crate::scene::Scene;
use crate::templates::TemplateKind;
use serde::{Deserialize, Serialize};

/// Content profile of a dataset (a mixture over scene templates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetProfile {
    /// Human-action recognition dataset (Dataset1 of §VI-D).
    Stanford40,
    /// Broad visual-object dataset (Dataset2 of §VI-D).
    PascalVoc2012,
    /// Objects-in-context dataset.
    Coco2017,
    /// Social photography dataset.
    MirFlickr25,
    /// Scene-centric dataset.
    Places365,
    /// Degenerate dog-only profile for the extreme-transfer study.
    DogHeavy,
}

impl DatasetProfile {
    /// The three "diverse" datasets used for the §VI-B prediction study.
    pub const PREDICTION_TRIO: [DatasetProfile; 3] = [
        DatasetProfile::Coco2017,
        DatasetProfile::MirFlickr25,
        DatasetProfile::Places365,
    ];

    /// All profiles.
    pub const ALL: [DatasetProfile; 6] = [
        DatasetProfile::Stanford40,
        DatasetProfile::PascalVoc2012,
        DatasetProfile::Coco2017,
        DatasetProfile::MirFlickr25,
        DatasetProfile::Places365,
        DatasetProfile::DogHeavy,
    ];

    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            DatasetProfile::Stanford40 => "Stanford40",
            DatasetProfile::PascalVoc2012 => "PASCAL VOC 2012",
            DatasetProfile::Coco2017 => "MSCOCO 2017",
            DatasetProfile::MirFlickr25 => "MirFlickr25",
            DatasetProfile::Places365 => "Places365",
            DatasetProfile::DogHeavy => "DogHeavy (synthetic)",
        }
    }

    /// Template mixture weights for the profile.
    pub fn mixture(self) -> Vec<(TemplateKind, f64)> {
        use TemplateKind::*;
        match self {
            DatasetProfile::Stanford40 => vec![
                (IndoorSocial, 0.25),
                (OutdoorSport, 0.35),
                (Portrait, 0.15),
                (StreetScene, 0.15),
                (AnimalScene, 0.05),
                (ObjectStill, 0.03),
                (Landscape, 0.02),
            ],
            DatasetProfile::PascalVoc2012 => vec![
                (AnimalScene, 0.25),
                (StreetScene, 0.20),
                (ObjectStill, 0.20),
                (IndoorSocial, 0.10),
                (OutdoorSport, 0.10),
                (Portrait, 0.05),
                (Landscape, 0.10),
            ],
            DatasetProfile::Coco2017 => vec![
                (StreetScene, 0.22),
                (IndoorSocial, 0.20),
                (ObjectStill, 0.18),
                (OutdoorSport, 0.15),
                (AnimalScene, 0.15),
                (Portrait, 0.05),
                (Landscape, 0.05),
            ],
            DatasetProfile::MirFlickr25 => vec![
                (Portrait, 0.25),
                (IndoorSocial, 0.20),
                (Landscape, 0.20),
                (StreetScene, 0.15),
                (OutdoorSport, 0.10),
                (AnimalScene, 0.07),
                (ObjectStill, 0.03),
            ],
            DatasetProfile::Places365 => vec![
                (Landscape, 0.30),
                (StreetScene, 0.20),
                (ObjectStill, 0.15),
                (IndoorSocial, 0.15),
                (OutdoorSport, 0.10),
                (AnimalScene, 0.05),
                (Portrait, 0.05),
            ],
            DatasetProfile::DogHeavy => vec![(AnimalScene, 0.9), (Landscape, 0.1)],
        }
    }

    /// Stable stream tag so different profiles draw decorrelated streams
    /// from the same world seed.
    fn stream_tag(self) -> u64 {
        DatasetProfile::ALL
            .iter()
            .position(|&p| p == self)
            .expect("profile in ALL") as u64
            + 1
    }

    /// Build a generator for this profile.
    pub fn generator(self, world_seed: u64) -> SceneGenerator {
        SceneGenerator::new(self.mixture(), world_seed, self.stream_tag())
    }
}

/// A materialized dataset: scenes plus the profile that produced them.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Content profile.
    pub profile: DatasetProfile,
    /// The scenes, ids `0..n`.
    pub scenes: Vec<Scene>,
    /// World seed the scenes were drawn under.
    pub world_seed: u64,
}

/// A train/test split of a dataset (by reference into the parent).
#[derive(Debug, Clone, Copy)]
pub struct Split {
    /// Number of leading scenes forming the training set.
    pub train_len: usize,
    /// Total number of scenes.
    pub total: usize,
}

impl Dataset {
    /// Generate `n` scenes of `profile` under `world_seed`.
    pub fn generate(profile: DatasetProfile, n: usize, world_seed: u64) -> Self {
        Self {
            profile,
            scenes: profile.generator(world_seed).scenes(n),
            world_seed,
        }
    }

    /// Number of scenes.
    pub fn len(&self) -> usize {
        self.scenes.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.scenes.is_empty()
    }

    /// The paper's 1:4 train/test split: the first 20% of scenes train the
    /// agent, the rest test it. (Scenes are i.i.d., so a prefix split is a
    /// random split.)
    pub fn split_1_to_4(&self) -> Split {
        Split {
            train_len: self.len() / 5,
            total: self.len(),
        }
    }

    /// An arbitrary-ratio split (`train_fraction` in `(0,1)`).
    pub fn split(&self, train_fraction: f64) -> Split {
        assert!((0.0..1.0).contains(&train_fraction));
        let train_len = ((self.len() as f64) * train_fraction).round() as usize;
        Split {
            train_len: train_len.min(self.len()),
            total: self.len(),
        }
    }

    /// Training scenes of a split.
    pub fn train(&self, split: Split) -> &[Scene] {
        &self.scenes[..split.train_len]
    }

    /// Testing scenes of a split.
    pub fn test(&self, split: Split) -> &[Scene] {
        &self.scenes[split.train_len..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixtures_sum_to_one() {
        for p in DatasetProfile::ALL {
            let sum: f64 = p.mixture().iter().map(|(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", p.name());
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let a = Dataset::generate(DatasetProfile::Coco2017, 20, 7);
        let b = Dataset::generate(DatasetProfile::Coco2017, 20, 7);
        for (x, y) in a.scenes.iter().zip(&b.scenes) {
            assert_eq!(x.place.index, y.place.index);
            assert_eq!(x.objects, y.objects);
        }
    }

    #[test]
    fn profiles_have_distinct_content() {
        let s40 = Dataset::generate(DatasetProfile::Stanford40, 400, 7);
        let p365 = Dataset::generate(DatasetProfile::Places365, 400, 7);
        let people = |d: &Dataset| {
            d.scenes.iter().filter(|s| !s.persons.is_empty()).count() as f64 / d.len() as f64
        };
        assert!(
            people(&s40) > people(&p365) + 0.25,
            "Stanford40 ({}) should be much more person-heavy than Places365 ({})",
            people(&s40),
            people(&p365),
        );
    }

    #[test]
    fn split_1_to_4_proportions() {
        let d = Dataset::generate(DatasetProfile::MirFlickr25, 100, 1);
        let s = d.split_1_to_4();
        assert_eq!(d.train(s).len(), 20);
        assert_eq!(d.test(s).len(), 80);
    }

    #[test]
    fn custom_split() {
        let d = Dataset::generate(DatasetProfile::PascalVoc2012, 10, 1);
        let s = d.split(0.5);
        assert_eq!(d.train(s).len(), 5);
        assert_eq!(d.test(s).len(), 5);
    }

    #[test]
    fn scene_ids_are_dense() {
        let d = Dataset::generate(DatasetProfile::Places365, 10, 3);
        for (i, s) in d.scenes.iter().enumerate() {
            assert_eq!(s.id, i as u64);
        }
    }
}
