//! Simulated model execution: `(scene, model spec) → ModelOutput`.
//!
//! This is the stand-in for running a real deep-learning model on an image.
//! The output distribution is conditioned on the scene's latent content and
//! the model's [`QualityProfile`]: ground-truth labels are detected with the
//! profile's recall (scaled by apparent size), true positives get
//! Gaussian-noised confidences, and occasional low-confidence false
//! positives reproduce the grey boxes of the paper's Fig. 1 ("Person 0.43",
//! "Bathroom 0.14").
//!
//! ## Shared difficulty
//!
//! Each potential detection carries a **shared difficulty draw** `u`,
//! seeded by `(world, scene, task, element)` — identical for all three
//! variants of a task. A variant detects the element iff
//! `u < recall_variant · size`. This correlates same-task models the way
//! real ones correlate (hard instances are hard for everybody) and makes
//! higher-recall variants' detection sets supersets of lower-recall ones',
//! so one good model per relevant task recalls almost everything — the
//! regime the paper's "optimal policy executes ~20% of the zoo" analysis
//! lives in.
//!
//! Execution is deterministic under `(world_seed, scene.id, model.id)`.

use crate::rng::exec_seed;
use crate::scene::Scene;
use crate::templates::{DOG_OBJECT, PERSON_OBJECT};
use ams_models::{Detection, LabelCatalog, ModelOutput, ModelSpec, QualityProfile, Task};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Scale factor applied to detection probability for an instance of
/// apparent size `scale` (0.3..=1.0): small instances are harder.
#[inline]
fn size_factor(scale: f32) -> f64 {
    0.5 + 0.5 * f64::from(scale)
}

/// Sample a true-positive confidence from the model's tier distribution
/// (approximately Gaussian via the sum of three uniforms).
fn tp_confidence(rng: &mut SmallRng, q: &QualityProfile) -> f32 {
    let mean = q.tier.conf_mean();
    let sd = q.tier.conf_sd();
    let u: f64 = (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>()) - 1.5; // ~N(0, 0.5)
    (mean + sd * 2.0 * u).clamp(0.05, 0.995) as f32
}

/// A low confidence for false positives / misclassifications.
fn fp_confidence(rng: &mut SmallRng) -> f32 {
    rng.gen_range(0.08..0.45)
}

/// The per-execution random streams: `shared` carries the task-level
/// difficulty draws (identical across variants — its consumption order must
/// not depend on the variant), `noise` carries variant-specific confidence
/// and false-positive draws.
struct ExecRng {
    shared: SmallRng,
    noise: SmallRng,
}

impl ExecRng {
    fn new(scene: &Scene, spec: &ModelSpec, world_seed: u64) -> Self {
        // Task-level stream: seeded past the model-id range so it can never
        // collide with a per-model stream.
        let shared_tag = 1000 + spec.task.index();
        Self {
            shared: SmallRng::seed_from_u64(exec_seed(world_seed, scene.id, shared_tag)),
            noise: SmallRng::seed_from_u64(exec_seed(world_seed, scene.id, spec.id.index())),
        }
    }

    /// Shared-difficulty detection: draws one `u` from the task stream and
    /// thresholds it with this variant's recall.
    fn detect(&mut self, q: &QualityProfile, within_task_idx: usize, size: f64) -> bool {
        let u: f64 = self.shared.gen();
        u < (q.recall_for(within_task_idx) * size).clamp(0.0, 1.0)
    }
}

/// Execute `spec` on `scene`, deterministically under `world_seed`.
pub fn infer(
    scene: &Scene,
    spec: &ModelSpec,
    catalog: &LabelCatalog,
    world_seed: u64,
) -> ModelOutput {
    let mut r = ExecRng::new(scene, spec, world_seed);
    let q = &spec.quality;
    let task = spec.task;
    let mut dets: Vec<Detection> = Vec::new();
    let push = |dets: &mut Vec<Detection>, idx: u16, conf: f32| {
        dets.push(Detection::new(catalog.label(task, idx as usize), conf));
    };

    match task {
        Task::ObjectDetection => {
            // ground truth = explicit objects + person/dog derived from instances
            if !scene.persons.is_empty() {
                let size = size_factor(scene.max_person_scale());
                if r.detect(q, PERSON_OBJECT as usize, size) {
                    let c = tp_confidence(&mut r.noise, q);
                    push(&mut dets, PERSON_OBJECT, c);
                } else if r.noise.gen_bool(0.4) {
                    // hard miss still often yields a low-confidence person box
                    push(&mut dets, PERSON_OBJECT, fp_confidence(&mut r.noise));
                }
            }
            if !scene.dogs.is_empty() {
                let size = size_factor(scene.max_dog_scale());
                if r.detect(q, DOG_OBJECT as usize, size) {
                    let c = tp_confidence(&mut r.noise, q);
                    push(&mut dets, DOG_OBJECT, c);
                }
            }
            for &obj in &scene.objects {
                if r.detect(q, obj as usize, 0.92) {
                    let c = tp_confidence(&mut r.noise, q);
                    push(&mut dets, obj, c);
                }
            }
            if r.noise.gen_bool(q.tier.false_positive_rate()) {
                let idx = r.noise.gen_range(0..task.label_count()) as u16;
                push(&mut dets, idx, fp_confidence(&mut r.noise));
            }
        }
        Task::PlaceClassification => {
            // classifiers always output something: the true place on success,
            // a random place at low confidence on failure
            let idx = scene.place.index;
            if r.detect(q, idx as usize, 1.0) {
                push(&mut dets, idx, tp_confidence(&mut r.noise, q));
                // runner-up class, like "beer hall 0.198" next to "pub 0.727"
                if r.noise.gen_bool(0.3) {
                    let other = r.noise.gen_range(0..task.label_count()) as u16;
                    if other != idx {
                        push(&mut dets, other, fp_confidence(&mut r.noise));
                    }
                }
            } else {
                let other = r.noise.gen_range(0..task.label_count()) as u16;
                push(&mut dets, other, fp_confidence(&mut r.noise));
            }
        }
        Task::FaceDetection => {
            if scene.any_face() {
                let best = scene
                    .persons
                    .iter()
                    .filter(|p| p.face_visible)
                    .map(|p| p.scale)
                    .fold(0.0f32, f32::max);
                if r.detect(q, 0, size_factor(best)) {
                    push(&mut dets, 0, tp_confidence(&mut r.noise, q));
                }
            } else if r.noise.gen_bool(q.tier.false_positive_rate()) {
                push(&mut dets, 0, fp_confidence(&mut r.noise));
            }
        }
        Task::FaceLandmark => {
            if scene.any_face() {
                let best = scene
                    .persons
                    .iter()
                    .filter(|p| p.face_visible)
                    .map(|p| p.scale)
                    .fold(0.0f32, f32::max);
                let size = size_factor(best);
                for kp in 0..task.label_count() {
                    if r.detect(q, kp, size * 0.92) {
                        push(&mut dets, kp as u16, tp_confidence(&mut r.noise, q));
                    }
                }
            }
        }
        Task::PoseEstimation => {
            if scene.any_body() {
                let best = scene
                    .persons
                    .iter()
                    .filter(|p| p.body_visible)
                    .map(|p| p.scale)
                    .fold(0.0f32, f32::max);
                let size = size_factor(best);
                for kp in 0..task.label_count() {
                    if r.detect(q, kp, size * 0.9) {
                        push(&mut dets, kp as u16, tp_confidence(&mut r.noise, q));
                    }
                }
            } else if r.noise.gen_bool(q.tier.false_positive_rate()) {
                let kp = r.noise.gen_range(0..task.label_count()) as u16;
                push(&mut dets, kp, fp_confidence(&mut r.noise));
            }
        }
        Task::EmotionClassification => {
            let mut any = false;
            for p in scene.persons.iter().filter(|p| p.face_visible) {
                if r.detect(q, p.emotion as usize, size_factor(p.scale)) {
                    push(
                        &mut dets,
                        u16::from(p.emotion),
                        tp_confidence(&mut r.noise, q),
                    );
                    any = true;
                }
            }
            if !any && scene.any_face() {
                // misclassification: wrong emotion at low confidence
                let e = r.noise.gen_range(0..task.label_count()) as u16;
                push(&mut dets, e, fp_confidence(&mut r.noise));
            }
        }
        Task::GenderClassification => {
            for p in &scene.persons {
                // one shared draw per person regardless of visibility gate
                let hit = r.detect(q, p.gender as usize, size_factor(p.scale));
                if (p.face_visible || p.body_visible) && hit {
                    push(
                        &mut dets,
                        u16::from(p.gender),
                        tp_confidence(&mut r.noise, q),
                    );
                }
            }
        }
        Task::ActionClassification => {
            let mut any = false;
            for p in &scene.persons {
                if let Some(a) = p.action {
                    let hit = r.detect(q, a as usize, size_factor(p.scale));
                    if p.body_visible && hit {
                        push(&mut dets, a, tp_confidence(&mut r.noise, q));
                        any = true;
                    }
                }
            }
            if !any && r.noise.gen_bool(q.tier.false_positive_rate()) {
                let a = r.noise.gen_range(0..task.label_count()) as u16;
                push(&mut dets, a, fp_confidence(&mut r.noise));
            }
        }
        Task::HandLandmark => {
            if scene.any_hands() {
                let best = scene
                    .persons
                    .iter()
                    .filter(|p| p.hands_visible)
                    .map(|p| p.scale)
                    .fold(0.0f32, f32::max);
                let size = size_factor(best);
                for kp in 0..task.label_count() {
                    if r.detect(q, kp, size * 0.8) {
                        push(&mut dets, kp as u16, tp_confidence(&mut r.noise, q));
                    }
                }
            }
        }
        Task::DogClassification => {
            let mut any = false;
            for d in &scene.dogs {
                if r.detect(q, d.breed as usize, size_factor(d.scale)) {
                    push(&mut dets, d.breed, tp_confidence(&mut r.noise, q));
                    any = true;
                }
            }
            if !any && !scene.dogs.is_empty() {
                // wrong breed at low confidence
                let b = r.noise.gen_range(0..task.label_count()) as u16;
                push(&mut dets, b, fp_confidence(&mut r.noise));
            }
        }
    }

    ModelOutput::new(spec.id, dets)
}

/// Convenience: run every model of a zoo on a scene ("no policy").
pub fn infer_all(
    scene: &Scene,
    zoo: &ams_models::ModelZoo,
    catalog: &LabelCatalog,
    world_seed: u64,
) -> Vec<ModelOutput> {
    zoo.specs()
        .iter()
        .map(|spec| infer(scene, spec, catalog, world_seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::TemplateKind;
    use crate::{DogInstance, Person, Place};
    use ams_models::{ModelZoo, SkillTier};

    fn catalog() -> LabelCatalog {
        LabelCatalog::standard()
    }

    fn person_scene() -> Scene {
        Scene {
            id: 1,
            place: Place {
                index: 0,
                indoor: true,
            },
            persons: vec![Person {
                scale: 0.95,
                face_visible: true,
                body_visible: true,
                hands_visible: true,
                gender: 1,
                emotion: 3,
                action: Some(12),
            }],
            dogs: vec![],
            objects: vec![33, 53],
            template: TemplateKind::IndoorSocial,
        }
    }

    fn empty_scene() -> Scene {
        Scene {
            id: 2,
            place: Place {
                index: 20,
                indoor: false,
            },
            persons: vec![],
            dogs: vec![],
            objects: vec![],
            template: TemplateKind::Landscape,
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let zoo = ModelZoo::standard();
        let c = catalog();
        let s = person_scene();
        for spec in zoo.specs() {
            let a = infer(&s, spec, &c, 99);
            let b = infer(&s, spec, &c, 99);
            assert_eq!(a.detections.len(), b.detections.len());
            for (x, y) in a.detections.iter().zip(&b.detections) {
                assert_eq!(x.label, y.label);
                assert!((x.confidence - y.confidence).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn flagship_object_detector_finds_person_usually() {
        let zoo = ModelZoo::standard();
        let c = catalog();
        let spec = &zoo.specs()[0]; // object-det-flagship
        let person_label = c.label(Task::ObjectDetection, 0);
        let mut hits = 0;
        for seed in 0..100 {
            let mut s = person_scene();
            s.id = seed;
            let out = infer(&s, spec, &c, 7);
            if out
                .confidence_of(person_label)
                .map(|conf| conf >= 0.5)
                .unwrap_or(false)
            {
                hits += 1;
            }
        }
        assert!(
            hits > 75,
            "flagship should find the person most of the time ({hits}/100)"
        );
    }

    /// Shared difficulty nests same-task detections: whatever a low-recall
    /// variant detects (outside the specialist's slice), the flagship
    /// detects too.
    #[test]
    fn compact_detections_are_subset_of_flagship_keypoints() {
        let zoo = ModelZoo::standard();
        let c = catalog();
        let flagship = zoo
            .models_for(Task::PoseEstimation)
            .find(|s| s.quality.tier == SkillTier::Flagship)
            .unwrap();
        let compact = zoo
            .models_for(Task::PoseEstimation)
            .find(|s| s.quality.tier == SkillTier::Compact)
            .unwrap();
        for seed in 0..50 {
            let mut s = person_scene();
            s.id = 100 + seed;
            let of = infer(&s, flagship, &c, 7);
            let oc = infer(&s, compact, &c, 7);
            for d in &oc.detections {
                assert!(
                    of.confidence_of(d.label).is_some(),
                    "flagship must cover compact's keypoint {} (scene {})",
                    d.label,
                    s.id
                );
            }
        }
    }

    #[test]
    fn empty_scene_starves_person_models() {
        let zoo = ModelZoo::standard();
        let c = catalog();
        let mut valuable = 0;
        for seed in 0..50 {
            let mut s = empty_scene();
            s.id = 1000 + seed;
            for spec in zoo.specs() {
                if matches!(
                    spec.task,
                    Task::FaceDetection
                        | Task::FaceLandmark
                        | Task::PoseEstimation
                        | Task::EmotionClassification
                        | Task::GenderClassification
                        | Task::HandLandmark
                        | Task::DogClassification
                ) {
                    let out = infer(&s, spec, &c, 7);
                    valuable += out.valuable(0.5).count();
                }
            }
        }
        assert_eq!(
            valuable, 0,
            "person/dog models must produce no valuable labels on landscapes"
        );
    }

    #[test]
    fn place_classifier_always_outputs_something() {
        let zoo = ModelZoo::standard();
        let c = catalog();
        for seed in 0..50 {
            let mut s = empty_scene();
            s.id = 2000 + seed;
            for spec in zoo.models_for(Task::PlaceClassification) {
                let out = infer(&s, spec, &c, 7);
                assert!(!out.is_empty(), "classifier must classify");
            }
        }
    }

    #[test]
    fn outputs_respect_task_label_ranges() {
        let zoo = ModelZoo::standard();
        let c = catalog();
        let s = person_scene();
        for spec in zoo.specs() {
            let out = infer(&s, spec, &c, 7);
            for d in &out.detections {
                assert_eq!(
                    c.task_of(d.label),
                    spec.task,
                    "{} emitted out-of-task label",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn dog_classifier_finds_breed() {
        let zoo = ModelZoo::standard();
        let c = catalog();
        let spec = zoo.models_for(Task::DogClassification).next().unwrap();
        let mut hits = 0;
        for seed in 0..100 {
            let s = Scene {
                id: 3000 + seed,
                place: Place {
                    index: 24,
                    indoor: false,
                },
                persons: vec![],
                dogs: vec![DogInstance {
                    breed: 7,
                    scale: 0.9,
                }],
                objects: vec![1],
                template: TemplateKind::AnimalScene,
            };
            let out = infer(&s, spec, &c, 7);
            let breed_label = c.label(Task::DogClassification, 7);
            if out
                .confidence_of(breed_label)
                .map(|conf| conf >= 0.5)
                .unwrap_or(false)
            {
                hits += 1;
            }
        }
        assert!(
            hits > 70,
            "dog flagship should identify the breed ({hits}/100)"
        );
    }

    #[test]
    fn infer_all_covers_zoo() {
        let zoo = ModelZoo::standard();
        let c = catalog();
        let outs = infer_all(&person_scene(), &zoo, &c, 7);
        assert_eq!(outs.len(), 30);
        for (i, o) in outs.iter().enumerate() {
            assert_eq!(o.model.index(), i);
        }
    }
}
