//! Execution traces and their invariants.

use serde::{Deserialize, Serialize};

/// One executed job's time span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Job id.
    pub job: usize,
    /// Start time, ms.
    pub start_ms: u64,
    /// End time, ms (exclusive).
    pub end_ms: u64,
    /// Memory held over the span, MB.
    pub mem_mb: u32,
}

/// A full execution trace: the spans of every job that ran.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExecTrace {
    /// Spans in start-time order.
    pub spans: Vec<Span>,
}

impl ExecTrace {
    /// Record a span.
    pub fn push(&mut self, span: Span) {
        debug_assert!(span.end_ms >= span.start_ms);
        self.spans.push(span);
    }

    /// Latest end time across spans (total schedule length).
    pub fn makespan_ms(&self) -> u64 {
        self.spans.iter().map(|s| s.end_ms).max().unwrap_or(0)
    }

    /// Sum of job times (serial work content).
    pub fn busy_ms(&self) -> u64 {
        self.spans.iter().map(|s| s.end_ms - s.start_ms).sum()
    }

    /// Peak concurrent memory across the trace, computed from span overlap.
    pub fn peak_mem_mb(&self) -> u32 {
        // sweep over start/end events
        let mut events: Vec<(u64, i64)> = Vec::with_capacity(self.spans.len() * 2);
        for s in &self.spans {
            events.push((s.start_ms, i64::from(s.mem_mb)));
            events.push((s.end_ms, -i64::from(s.mem_mb)));
        }
        // releases before acquisitions at the same instant
        events.sort_by_key(|&(t, d)| (t, d));
        let mut cur = 0i64;
        let mut peak = 0i64;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak.max(0) as u32
    }

    /// Check that concurrent memory never exceeds `capacity_mb`.
    pub fn respects_memory(&self, capacity_mb: u32) -> bool {
        self.peak_mem_mb() <= capacity_mb
    }

    /// Check that no two spans overlap in time (serial executions only).
    pub fn is_serial(&self) -> bool {
        let mut sorted: Vec<&Span> = self.spans.iter().collect();
        sorted.sort_by_key(|s| s.start_ms);
        sorted.windows(2).all(|w| w[0].end_ms <= w[1].start_ms)
    }

    /// Job ids in completion order.
    pub fn completion_order(&self) -> Vec<usize> {
        let mut sorted: Vec<&Span> = self.spans.iter().collect();
        sorted.sort_by_key(|s| (s.end_ms, s.start_ms, s.job));
        sorted.iter().map(|s| s.job).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(job: usize, start: u64, end: u64, mem: u32) -> Span {
        Span {
            job,
            start_ms: start,
            end_ms: end,
            mem_mb: mem,
        }
    }

    #[test]
    fn makespan_and_busy() {
        let mut t = ExecTrace::default();
        t.push(span(0, 0, 100, 10));
        t.push(span(1, 50, 250, 20));
        assert_eq!(t.makespan_ms(), 250);
        assert_eq!(t.busy_ms(), 300);
    }

    #[test]
    fn peak_memory_with_overlap() {
        let mut t = ExecTrace::default();
        t.push(span(0, 0, 100, 10));
        t.push(span(1, 50, 150, 20)); // overlaps 0
        t.push(span(2, 100, 200, 30)); // starts exactly when 0 ends
        assert_eq!(t.peak_mem_mb(), 50); // 1 & 2 overlap in (100,150)
        assert!(t.respects_memory(50));
        assert!(!t.respects_memory(49));
    }

    #[test]
    fn release_before_acquire_at_same_instant() {
        let mut t = ExecTrace::default();
        t.push(span(0, 0, 100, 40));
        t.push(span(1, 100, 200, 40));
        assert_eq!(t.peak_mem_mb(), 40, "back-to-back jobs don't stack");
    }

    #[test]
    fn serial_detection() {
        let mut t = ExecTrace::default();
        t.push(span(0, 0, 100, 1));
        t.push(span(1, 100, 180, 1));
        assert!(t.is_serial());
        t.push(span(2, 150, 160, 1));
        assert!(!t.is_serial());
    }

    #[test]
    fn completion_order_sorted_by_end() {
        let mut t = ExecTrace::default();
        t.push(span(7, 0, 300, 1));
        t.push(span(3, 0, 100, 1));
        t.push(span(5, 100, 200, 1));
        assert_eq!(t.completion_order(), vec![3, 5, 7]);
    }

    #[test]
    fn empty_trace() {
        let t = ExecTrace::default();
        assert_eq!(t.makespan_ms(), 0);
        assert_eq!(t.peak_mem_mb(), 0);
        assert!(t.is_serial());
    }
}
