//! Batched admission: a calibrated per-batch latency model.
//!
//! A real GPU serving stack coalesces items queued for the same model into
//! one batched invocation: the model's weights are loaded (or already
//! resident) once, the kernels launch once, and each extra item only pays
//! the marginal per-item compute. The virtual executors model this as
//!
//! ```text
//! batch_time(k) = setup + k * marginal        (k items, same model)
//! ```
//!
//! calibrated against the model's published single-item latency so that
//! `batch_time(1)` equals `time_ms` exactly — batching is free to help but
//! can never make a lone job faster than its spec says. Memory is charged
//! once per batch (the weights dominate and are shared; per-item
//! activations are folded into the spec's peak figure).

use crate::parallel::ParallelExecutor;
use crate::Job;
use serde::{Deserialize, Serialize};

/// Calibrated setup + marginal per-item latency split for batched execution.
///
/// `setup_permille` is the share (in thousandths) of a model's single-item
/// latency that is fixed per invocation — weight residency checks, kernel
/// launch, host/device transfer setup. The remainder is the marginal
/// per-item cost. Integer millisecond arithmetic keeps virtual schedules
/// exactly reproducible:
///
/// * `batch_time_ms(t, 1) == t` for every `t` (calibration identity),
/// * `batch_time_ms(t, k)` is non-decreasing in `k` (monotonicity),
/// * `batch_time_ms(t, k) <= k * t` (batching never loses to k serial runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchLatencyModel {
    setup_permille: u32,
}

impl BatchLatencyModel {
    /// Model with the given fixed-setup share, clamped to `0..=1000`.
    pub fn new(setup_permille: u32) -> Self {
        Self {
            setup_permille: setup_permille.min(1000),
        }
    }

    /// The configured fixed-setup share in thousandths.
    pub fn setup_permille(&self) -> u32 {
        self.setup_permille
    }

    /// Fixed setup portion of a single-item latency of `single_ms`.
    pub fn setup_ms(&self, single_ms: u32) -> u64 {
        u64::from(single_ms) * u64::from(self.setup_permille) / 1000
    }

    /// Marginal per-item portion of a single-item latency of `single_ms`.
    pub fn marginal_ms(&self, single_ms: u32) -> u64 {
        u64::from(single_ms) - self.setup_ms(single_ms)
    }

    /// Latency of one batched invocation over `batch` items of a model
    /// whose single-item latency is `single_ms`. Zero items cost nothing.
    pub fn batch_time_ms(&self, single_ms: u32, batch: usize) -> u64 {
        if batch == 0 {
            return 0;
        }
        self.setup_ms(single_ms) + batch as u64 * self.marginal_ms(single_ms)
    }

    /// Marginal cost of admitting one more item into a batch currently
    /// holding `batch` items: the full `single_ms` for the item that opens
    /// the invocation (it pays the setup), the marginal share for every
    /// item after it. This is the quantity a cost-aware router or batching
    /// controller compares across placement choices —
    /// `batch_time_ms(t, k+1) - batch_time_ms(t, k)` exactly.
    pub fn marginal_cost_ms(&self, single_ms: u32, batch: usize) -> u64 {
        if batch == 0 {
            u64::from(single_ms)
        } else {
            self.marginal_ms(single_ms)
        }
    }

    /// Amortized per-item latency of a `batch`-item invocation, in
    /// fractional milliseconds (0 for an empty batch). Decreasing in the
    /// batch size: the setup charge spreads over more items.
    pub fn amortized_ms(&self, single_ms: u32, batch: usize) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        self.batch_time_ms(single_ms, batch) as f64 / batch as f64
    }

    /// How much longer a batched invocation gets when it grows from `from`
    /// to `to` items, as a latency ratio (`batch_time(to) / batch_time(from)`,
    /// 1.0 for degenerate inputs). Scale-free in `single_ms`: the ratio
    /// depends only on the setup share and the two batch sizes, so an
    /// adaptive controller can bound a wall-clock p99 prediction with it
    /// without knowing the models' absolute latencies.
    pub fn growth_ratio(&self, from: usize, to: usize) -> f64 {
        // A reference latency large enough that integer setup/marginal
        // rounding cannot distort the ratio.
        const REF_MS: u32 = 1_000_000;
        if from == 0 || to <= from {
            return 1.0;
        }
        self.batch_time_ms(REF_MS, to) as f64 / self.batch_time_ms(REF_MS, from) as f64
    }

    /// The largest batch whose single invocation still fits a latency
    /// budget: max `k` with `batch_time_ms(single_ms, k) <= budget_ms`
    /// (0 when even one item does not fit). The upper bound an adaptive
    /// batching controller must never grow past, whatever its control law
    /// says.
    pub fn max_batch_within(&self, single_ms: u32, budget_ms: u64) -> usize {
        if u64::from(single_ms) > budget_ms || single_ms == 0 {
            return if single_ms == 0 { usize::MAX } else { 0 };
        }
        let marginal = self.marginal_ms(single_ms);
        if marginal == 0 {
            // Pure-setup model: every batch costs the same as one item.
            return usize::MAX;
        }
        ((budget_ms - self.setup_ms(single_ms)) / marginal) as usize
    }
}

impl Default for BatchLatencyModel {
    /// 70% fixed setup: the measured shape of small-batch vision inference,
    /// where weight residency and launch overhead dominate a single item.
    fn default() -> Self {
        Self::new(700)
    }
}

/// Virtual makespan of running `groups` of batched jobs — `(job, count)`
/// pairs, one per model, where `job` carries the model's single-item spec —
/// on a shared pool of `capacity_mb`, under `model`'s latency split.
///
/// Greedy event loop (the Algorithm 2 shape): admit every batch that fits,
/// wait for the earliest completion, repeat. Deterministic for a given
/// group order. A batch whose weights exceed the whole pool is clamped to
/// the pool (it would stream from host memory; it still runs, exclusively).
pub fn batched_makespan(
    groups: &[(Job, usize)],
    capacity_mb: u32,
    model: &BatchLatencyModel,
) -> u64 {
    let capacity_mb = capacity_mb.max(1);
    let mut ex = ParallelExecutor::new(capacity_mb);
    let mut pending: Vec<(Job, usize)> = groups
        .iter()
        .filter(|&&(_, count)| count > 0)
        .map(|&(job, count)| {
            (
                Job {
                    mem_mb: job.mem_mb.min(capacity_mb),
                    ..job
                },
                count,
            )
        })
        .collect();
    while !pending.is_empty() {
        let mut i = 0;
        while i < pending.len() {
            if ex.fits(pending[i].0.mem_mb) {
                let (job, count) = pending.remove(i);
                ex.admit_batch(job, count, model)
                    .expect("fits() admits the batch");
            } else {
                i += 1;
            }
        }
        if ex.wait_next().is_none() {
            break;
        }
    }
    ex.drain();
    ex.now_ms()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_item_batch_is_calibrated_exactly() {
        for permille in [0, 137, 500, 700, 1000] {
            let m = BatchLatencyModel::new(permille);
            for t in [1u32, 7, 90, 333, 2000] {
                assert_eq!(m.batch_time_ms(t, 1), u64::from(t), "permille {permille}");
                assert_eq!(m.setup_ms(t) + m.marginal_ms(t), u64::from(t));
            }
        }
    }

    #[test]
    fn batch_time_monotone_and_bounded_by_serial() {
        let m = BatchLatencyModel::default();
        for t in [1u32, 45, 90, 700] {
            let mut prev = 0;
            for k in 1..=64usize {
                let bt = m.batch_time_ms(t, k);
                assert!(bt >= prev, "monotone in batch size");
                assert!(bt >= u64::from(t), "never cheaper than one full run");
                assert!(bt <= k as u64 * u64::from(t), "never worse than serial");
                prev = bt;
            }
        }
    }

    #[test]
    fn empty_batch_is_free() {
        assert_eq!(BatchLatencyModel::default().batch_time_ms(500, 0), 0);
    }

    #[test]
    fn marginal_cost_is_exact_batch_time_difference() {
        for permille in [0, 300, 700, 1000] {
            let m = BatchLatencyModel::new(permille);
            for t in [1u32, 45, 90, 700] {
                for k in 0..=16usize {
                    assert_eq!(
                        m.marginal_cost_ms(t, k),
                        m.batch_time_ms(t, k + 1) - m.batch_time_ms(t, k),
                        "permille {permille}, t {t}, k {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn amortized_cost_decreases_with_batch_size() {
        let m = BatchLatencyModel::default();
        let mut prev = f64::INFINITY;
        for k in 1..=32usize {
            let a = m.amortized_ms(180, k);
            assert!(a <= prev, "amortized cost must not grow: k={k}");
            assert!(a >= m.marginal_ms(180) as f64, "never below marginal");
            prev = a;
        }
        assert_eq!(m.amortized_ms(180, 0), 0.0);
    }

    #[test]
    fn growth_ratio_is_scale_free_and_bounded() {
        let m = BatchLatencyModel::new(700);
        assert_eq!(m.growth_ratio(0, 5), 1.0);
        assert_eq!(m.growth_ratio(4, 4), 1.0);
        assert_eq!(m.growth_ratio(8, 2), 1.0);
        for (from, to) in [(1usize, 2usize), (2, 4), (4, 8), (8, 9)] {
            let r = m.growth_ratio(from, to);
            // Growing a batch costs something but less than proportionally:
            // the setup charge is already paid.
            assert!(r > 1.0, "{from}->{to}: {r}");
            assert!(r <= to as f64 / from as f64, "{from}->{to}: {r}");
            // Matches the batch-time ratio at an arbitrary latency scale.
            let direct = m.batch_time_ms(90_000, to) as f64 / m.batch_time_ms(90_000, from) as f64;
            assert!((r - direct).abs() < 1e-3, "{from}->{to}: {r} vs {direct}");
        }
    }

    #[test]
    fn max_batch_within_inverts_batch_time() {
        let m = BatchLatencyModel::new(700);
        for t in [10u32, 90, 450] {
            for budget in [0u64, 5, 10, 100, 1000, 10_000] {
                let k = m.max_batch_within(t, budget);
                if k == 0 {
                    assert!(u64::from(t) > budget, "one item must not fit");
                } else {
                    assert!(m.batch_time_ms(t, k) <= budget, "t {t} budget {budget}");
                    assert!(m.batch_time_ms(t, k + 1) > budget, "k={k} not maximal");
                }
            }
        }
        // Pure-setup model and zero-cost model: unbounded batches.
        assert_eq!(
            BatchLatencyModel::new(1000).max_batch_within(100, 100),
            usize::MAX
        );
        assert_eq!(m.max_batch_within(0, 1), usize::MAX);
    }

    #[test]
    fn permille_clamped() {
        let m = BatchLatencyModel::new(5000);
        assert_eq!(m.setup_permille(), 1000);
        assert_eq!(m.marginal_ms(100), 0);
        assert_eq!(m.batch_time_ms(100, 50), 100, "pure-setup model is flat");
    }

    #[test]
    fn makespan_of_disjoint_fitting_groups_is_longest_batch() {
        let m = BatchLatencyModel::new(500);
        let j = |id, t, mem| Job {
            id,
            time_ms: t,
            mem_mb: mem,
        };
        let groups = [(j(0, 100, 300), 4), (j(1, 200, 300), 2)];
        // batch 0: 50 + 4*50 = 250; batch 1: 100 + 2*100 = 300
        assert_eq!(batched_makespan(&groups, 1000, &m), 300);
    }

    #[test]
    fn makespan_serializes_under_memory_pressure() {
        let m = BatchLatencyModel::new(0); // no setup: batch k = k * t
        let job = Job {
            id: 0,
            time_ms: 100,
            mem_mb: 600,
        };
        // Two 600 MB batches on a 1000 MB pool cannot overlap.
        let groups = [(job, 1), (Job { id: 1, ..job }, 1)];
        assert_eq!(batched_makespan(&groups, 1000, &m), 200);
        // On a 1200 MB pool they run concurrently.
        assert_eq!(batched_makespan(&groups, 1200, &m), 100);
    }

    #[test]
    fn oversized_batch_is_clamped_not_stuck() {
        let m = BatchLatencyModel::default();
        let job = Job {
            id: 0,
            time_ms: 100,
            mem_mb: 50_000,
        };
        assert_eq!(batched_makespan(&[(job, 1)], 1000, &m), 100);
    }
}
