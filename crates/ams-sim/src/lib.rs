//! # ams-sim — virtual-time execution substrate
//!
//! The paper's schedulers reason about two resources: wall-clock time
//! (deadline per item) and GPU memory (shared pool under multi-processor
//! parallel execution). In the paper these are properties of a real Tesla
//! P100; here they are simulated so that experiments are deterministic and
//! run in milliseconds.
//!
//! * [`clock`] — a virtual clock in milliseconds.
//! * [`gpu`] — a GPU memory pool with acquire/release accounting.
//! * [`serial`] — single-processor executor: jobs run one after another
//!   against a deadline (the setting of Algorithm 1).
//! * [`parallel`] — event-driven multi-processor executor: jobs run
//!   concurrently while they fit in memory; completions release memory
//!   (the setting of Algorithm 2).
//! * [`batch`] — batched admission: coalesce same-model items into one
//!   invocation under a calibrated setup + marginal-per-item latency split.
//! * [`trace`] — execution traces and their invariants.
//!
//! The crate is deliberately generic: a job is just `(id, time, memory)`.
//! `ams-core` maps models onto jobs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod clock;
pub mod gpu;
pub mod parallel;
pub mod serial;
pub mod trace;

pub use batch::{batched_makespan, BatchLatencyModel};
pub use clock::VirtualClock;
pub use gpu::MemoryPool;
pub use parallel::ParallelExecutor;
pub use serial::SerialExecutor;
pub use trace::{ExecTrace, Span};

/// A schedulable unit of work: opaque id plus resource demands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Caller-assigned identifier (model index in `ams-core`).
    pub id: usize,
    /// Execution time in milliseconds.
    pub time_ms: u32,
    /// Peak memory demand in megabytes.
    pub mem_mb: u32,
}
