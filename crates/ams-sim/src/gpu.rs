//! GPU memory pool accounting.

/// Errors from the memory pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The request exceeds the remaining capacity.
    Insufficient {
        /// Requested megabytes.
        requested: u32,
        /// Currently available megabytes.
        available: u32,
    },
    /// A release was larger than the amount currently held.
    OverRelease,
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::Insufficient {
                requested,
                available,
            } => {
                write!(
                    f,
                    "insufficient memory: requested {requested} MB, {available} MB free"
                )
            }
            MemError::OverRelease => write!(f, "released more memory than held"),
        }
    }
}

impl std::error::Error for MemError {}

/// A fixed-capacity memory pool (one GPU's RAM) with peak tracking.
#[derive(Debug, Clone)]
pub struct MemoryPool {
    capacity_mb: u32,
    in_use_mb: u32,
    peak_mb: u32,
}

impl MemoryPool {
    /// Pool with the given capacity in megabytes.
    pub fn new(capacity_mb: u32) -> Self {
        Self {
            capacity_mb,
            in_use_mb: 0,
            peak_mb: 0,
        }
    }

    /// Total capacity.
    pub fn capacity_mb(&self) -> u32 {
        self.capacity_mb
    }

    /// Currently allocated amount.
    pub fn in_use_mb(&self) -> u32 {
        self.in_use_mb
    }

    /// Free capacity.
    pub fn available_mb(&self) -> u32 {
        self.capacity_mb - self.in_use_mb
    }

    /// High-water mark since construction.
    pub fn peak_mb(&self) -> u32 {
        self.peak_mb
    }

    /// Whether `mb` can currently be acquired.
    pub fn fits(&self, mb: u32) -> bool {
        mb <= self.available_mb()
    }

    /// Acquire `mb`; fails without side effects when it does not fit.
    pub fn acquire(&mut self, mb: u32) -> Result<(), MemError> {
        if !self.fits(mb) {
            return Err(MemError::Insufficient {
                requested: mb,
                available: self.available_mb(),
            });
        }
        self.in_use_mb += mb;
        self.peak_mb = self.peak_mb.max(self.in_use_mb);
        Ok(())
    }

    /// Release `mb` back to the pool.
    pub fn release(&mut self, mb: u32) -> Result<(), MemError> {
        if mb > self.in_use_mb {
            return Err(MemError::OverRelease);
        }
        self.in_use_mb -= mb;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut p = MemoryPool::new(1000);
        assert!(p.fits(1000));
        p.acquire(600).unwrap();
        assert_eq!(p.available_mb(), 400);
        assert!(!p.fits(401));
        p.acquire(400).unwrap();
        assert_eq!(p.available_mb(), 0);
        p.release(600).unwrap();
        assert_eq!(p.available_mb(), 600);
        assert_eq!(p.peak_mb(), 1000);
    }

    #[test]
    fn failed_acquire_is_side_effect_free() {
        let mut p = MemoryPool::new(100);
        p.acquire(90).unwrap();
        let err = p.acquire(20).unwrap_err();
        assert_eq!(
            err,
            MemError::Insufficient {
                requested: 20,
                available: 10
            }
        );
        assert_eq!(p.in_use_mb(), 90);
    }

    #[test]
    fn over_release_detected() {
        let mut p = MemoryPool::new(100);
        p.acquire(50).unwrap();
        assert_eq!(p.release(60).unwrap_err(), MemError::OverRelease);
        assert_eq!(p.in_use_mb(), 50);
    }

    #[test]
    fn error_display() {
        let e = MemError::Insufficient {
            requested: 5,
            available: 1,
        };
        assert!(e.to_string().contains("5 MB"));
        assert!(MemError::OverRelease.to_string().contains("release"));
    }
}
