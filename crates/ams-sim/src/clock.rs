//! A virtual clock measured in milliseconds.

/// Virtual time in integer milliseconds.
///
/// Integer arithmetic keeps event ordering exact and experiments
/// reproducible across platforms (no floating-point drift).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct VirtualClock {
    now_ms: u64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Advance by `delta_ms`.
    pub fn advance(&mut self, delta_ms: u64) {
        self.now_ms += delta_ms;
    }

    /// Jump to an absolute time.
    ///
    /// # Panics
    /// Panics if `t_ms` is in the past — virtual time never rewinds.
    pub fn advance_to(&mut self, t_ms: u64) {
        assert!(
            t_ms >= self.now_ms,
            "clock cannot rewind: {} -> {t_ms}",
            self.now_ms
        );
        self.now_ms = t_ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now_ms(), 0);
        c.advance(100);
        c.advance(50);
        assert_eq!(c.now_ms(), 150);
        c.advance_to(200);
        assert_eq!(c.now_ms(), 200);
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn cannot_rewind() {
        let mut c = VirtualClock::new();
        c.advance(10);
        c.advance_to(5);
    }
}
