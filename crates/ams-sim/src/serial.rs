//! Single-processor execution under a deadline (the Algorithm 1 setting).

use crate::clock::VirtualClock;
use crate::trace::{ExecTrace, Span};
use crate::Job;

/// Serial executor: runs one job at a time against a per-item deadline.
#[derive(Debug, Clone)]
pub struct SerialExecutor {
    clock: VirtualClock,
    deadline_ms: u64,
    trace: ExecTrace,
}

impl SerialExecutor {
    /// Executor with a total time budget (`B_time`) in milliseconds.
    pub fn new(deadline_ms: u64) -> Self {
        Self {
            clock: VirtualClock::new(),
            deadline_ms,
            trace: ExecTrace::default(),
        }
    }

    /// Remaining budget.
    pub fn remaining_ms(&self) -> u64 {
        self.deadline_ms.saturating_sub(self.clock.now_ms())
    }

    /// Elapsed virtual time.
    pub fn elapsed_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Whether `job` fits in the remaining budget.
    pub fn fits(&self, job: &Job) -> bool {
        u64::from(job.time_ms) <= self.remaining_ms()
    }

    /// Run `job` to completion. Returns `false` (and does nothing) when the
    /// job does not fit in the remaining budget.
    pub fn run(&mut self, job: Job) -> bool {
        if !self.fits(&job) {
            return false;
        }
        let start = self.clock.now_ms();
        self.clock.advance(u64::from(job.time_ms));
        self.trace.push(Span {
            job: job.id,
            start_ms: start,
            end_ms: self.clock.now_ms(),
            mem_mb: job.mem_mb,
        });
        true
    }

    /// The trace so far.
    pub fn trace(&self) -> &ExecTrace {
        &self.trace
    }

    /// Consume the executor, returning its trace.
    pub fn into_trace(self) -> ExecTrace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: usize, t: u32) -> Job {
        Job {
            id,
            time_ms: t,
            mem_mb: 100,
        }
    }

    #[test]
    fn runs_until_deadline() {
        let mut ex = SerialExecutor::new(500);
        assert!(ex.run(job(0, 200)));
        assert!(ex.run(job(1, 200)));
        assert_eq!(ex.remaining_ms(), 100);
        assert!(!ex.run(job(2, 200)), "job over budget must be rejected");
        assert!(ex.run(job(3, 100)), "exact fit is allowed");
        assert_eq!(ex.remaining_ms(), 0);
    }

    #[test]
    fn trace_is_serial_and_ordered() {
        let mut ex = SerialExecutor::new(1000);
        for i in 0..4 {
            ex.run(job(i, 100));
        }
        let t = ex.into_trace();
        assert!(t.is_serial());
        assert_eq!(t.completion_order(), vec![0, 1, 2, 3]);
        assert_eq!(t.makespan_ms(), 400);
    }

    #[test]
    fn rejected_job_leaves_no_trace() {
        let mut ex = SerialExecutor::new(50);
        assert!(!ex.run(job(0, 100)));
        assert!(ex.trace().spans.is_empty());
        assert_eq!(ex.elapsed_ms(), 0);
    }
}
