//! Event-driven multi-processor execution with a shared memory pool
//! (the Algorithm 2 setting).
//!
//! Jobs admitted into the executor run concurrently as long as their
//! combined memory fits the pool; each completion releases memory and
//! advances the virtual clock to the completion instant. This reproduces
//! the paper's loop: pack models into GPU memory, wait until one finishes,
//! release its memory, re-plan.

use crate::batch::BatchLatencyModel;
use crate::clock::VirtualClock;
use crate::gpu::{MemError, MemoryPool};
use crate::trace::{ExecTrace, Span};
use crate::Job;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A job currently executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Running {
    finish_ms: u64,
    job: Job,
}

impl Ord for Running {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; order by finish time then id for
        // deterministic tie-breaking.
        (self.finish_ms, self.job.id).cmp(&(other.finish_ms, other.job.id))
    }
}

impl PartialOrd for Running {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Event-driven executor over a shared memory pool.
#[derive(Debug, Clone)]
pub struct ParallelExecutor {
    clock: VirtualClock,
    pool: MemoryPool,
    running: BinaryHeap<Reverse<Running>>,
    trace: ExecTrace,
}

impl ParallelExecutor {
    /// Executor over a pool of `capacity_mb` megabytes.
    pub fn new(capacity_mb: u32) -> Self {
        Self {
            clock: VirtualClock::new(),
            pool: MemoryPool::new(capacity_mb),
            running: BinaryHeap::new(),
            trace: ExecTrace::default(),
        }
    }

    /// Current virtual time.
    pub fn now_ms(&self) -> u64 {
        self.clock.now_ms()
    }

    /// Free memory right now.
    pub fn available_mb(&self) -> u32 {
        self.pool.available_mb()
    }

    /// Whether a job of `mem_mb` can be admitted right now.
    pub fn fits(&self, mem_mb: u32) -> bool {
        self.pool.fits(mem_mb)
    }

    /// Number of jobs currently running.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Earliest completion time among running jobs.
    pub fn next_completion_ms(&self) -> Option<u64> {
        self.running.peek().map(|Reverse(r)| r.finish_ms)
    }

    /// Admit `job` at the current virtual time.
    pub fn admit(&mut self, job: Job) -> Result<(), MemError> {
        self.pool.acquire(job.mem_mb)?;
        let finish_ms = self.clock.now_ms() + u64::from(job.time_ms);
        self.running.push(Reverse(Running { finish_ms, job }));
        Ok(())
    }

    /// Admit one *batched* invocation of `count` items through the model
    /// `job` describes: memory is acquired once (the weights are shared
    /// across the batch) and the invocation occupies the processor for
    /// [`BatchLatencyModel::batch_time_ms`] of `job.time_ms` and `count`.
    ///
    /// The running entry's `time_ms` becomes the whole batch's duration, so
    /// [`Self::wait_next`] returns the batch as a single completed job and
    /// the trace records one span covering it. Returns the batch duration.
    /// A zero-item batch is rejected as a no-op (`Ok(0)` without admission).
    /// Durations beyond `u32::MAX` ms (~49 virtual days — far past any
    /// meaningful simulation horizon) saturate rather than wrap; past that
    /// point the model's monotonicity guarantee flattens with them.
    pub fn admit_batch(
        &mut self,
        job: Job,
        count: usize,
        model: &BatchLatencyModel,
    ) -> Result<u64, MemError> {
        if count == 0 {
            return Ok(0);
        }
        let batch_ms = model.batch_time_ms(job.time_ms, count);
        let time_ms = u32::try_from(batch_ms).unwrap_or(u32::MAX);
        self.admit(Job { time_ms, ..job })?;
        Ok(u64::from(time_ms))
    }

    /// Advance the clock to the next completion; returns the finished job.
    /// Returns `None` when nothing is running.
    pub fn wait_next(&mut self) -> Option<Job> {
        let Reverse(done) = self.running.pop()?;
        self.clock.advance_to(done.finish_ms);
        self.pool
            .release(done.job.mem_mb)
            .expect("release of admitted job cannot fail");
        self.trace.push(Span {
            job: done.job.id,
            start_ms: done.finish_ms - u64::from(done.job.time_ms),
            end_ms: done.finish_ms,
            mem_mb: done.job.mem_mb,
        });
        Some(done.job)
    }

    /// Drain every running job to completion, in completion order.
    pub fn drain(&mut self) -> Vec<Job> {
        let mut out = Vec::with_capacity(self.running.len());
        while let Some(j) = self.wait_next() {
            out.push(j);
        }
        out
    }

    /// The trace of *completed* jobs so far.
    pub fn trace(&self) -> &ExecTrace {
        &self.trace
    }

    /// Consume the executor, draining remaining jobs into the trace.
    pub fn into_trace(mut self) -> ExecTrace {
        self.drain();
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: usize, t: u32, m: u32) -> Job {
        Job {
            id,
            time_ms: t,
            mem_mb: m,
        }
    }

    #[test]
    fn parallel_overlap_shortens_makespan() {
        let mut ex = ParallelExecutor::new(1000);
        ex.admit(job(0, 300, 400))
            .expect("400MB fits a 1000MB pool");
        ex.admit(job(1, 200, 400))
            .expect("800MB total fits the pool");
        let first = ex.wait_next().expect("two jobs are running");
        assert_eq!(first.id, 1, "shorter job completes first");
        assert_eq!(ex.now_ms(), 200);
        let second = ex.wait_next().expect("one job still running");
        assert_eq!(second.id, 0);
        assert_eq!(ex.now_ms(), 300);
        let t = ex.into_trace();
        assert_eq!(t.makespan_ms(), 300);
        assert_eq!(t.busy_ms(), 500);
        assert!(t.respects_memory(800));
    }

    #[test]
    fn memory_gate_rejects_oversubscription() {
        let mut ex = ParallelExecutor::new(500);
        ex.admit(job(0, 100, 300)).expect("300MB fits a 500MB pool");
        assert!(ex.admit(job(1, 100, 300)).is_err());
        assert_eq!(ex.running_count(), 1);
        // after completion the memory frees up
        ex.wait_next().expect("job 0 is running");
        assert!(ex.admit(job(1, 100, 300)).is_ok());
    }

    #[test]
    fn admission_after_wait_starts_at_current_time() {
        let mut ex = ParallelExecutor::new(1000);
        ex.admit(job(0, 100, 100))
            .expect("100MB fits a 1000MB pool");
        ex.wait_next().expect("job 0 is running");
        ex.admit(job(1, 50, 100)).expect("pool is empty again");
        ex.wait_next().expect("job 1 is running");
        let t = ex.into_trace();
        let span1 = t
            .spans
            .iter()
            .find(|s| s.job == 1)
            .expect("job 1 completed, so it has a span");
        assert_eq!(span1.start_ms, 100);
        assert_eq!(span1.end_ms, 150);
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let mut ex = ParallelExecutor::new(1000);
        ex.admit(job(5, 100, 100))
            .expect("100MB fits a 1000MB pool");
        ex.admit(job(2, 100, 100))
            .expect("200MB total fits the pool");
        assert_eq!(ex.wait_next().expect("two jobs running").id, 2);
        assert_eq!(ex.wait_next().expect("one job running").id, 5);
    }

    #[test]
    fn drain_completes_everything() {
        let mut ex = ParallelExecutor::new(10_000);
        for i in 0..5 {
            ex.admit(job(i, 100 * (i as u32 + 1), 1000))
                .expect("5 x 1000MB fits a 10000MB pool");
        }
        let done = ex.drain();
        assert_eq!(done.len(), 5);
        assert_eq!(ex.running_count(), 0);
        assert!(ex.trace().respects_memory(10_000));
    }

    #[test]
    fn batched_admission_charges_pool_once_and_batch_latency() {
        let model = BatchLatencyModel::new(500);
        let mut ex = ParallelExecutor::new(500);
        // An 8-item batch of a 100ms/400MB model: one 400MB acquisition,
        // 50 + 8*50 = 450ms duration.
        let dur = ex
            .admit_batch(job(0, 100, 400), 8, &model)
            .expect("weights fit once");
        assert_eq!(dur, 450);
        assert_eq!(
            ex.available_mb(),
            100,
            "memory charged per batch, not per item"
        );
        assert!(ex.admit_batch(job(1, 100, 400), 2, &model).is_err());
        let done = ex.wait_next().expect("the batch is running");
        assert_eq!(done.id, 0);
        assert_eq!(ex.now_ms(), 450);
        assert_eq!(ex.available_mb(), 500);
        let t = ex.into_trace();
        assert_eq!(t.spans[0].end_ms - t.spans[0].start_ms, 450);
    }

    #[test]
    fn zero_item_batch_is_a_noop() {
        let model = BatchLatencyModel::default();
        let mut ex = ParallelExecutor::new(100);
        assert_eq!(ex.admit_batch(job(0, 100, 90), 0, &model), Ok(0));
        assert_eq!(ex.running_count(), 0);
        assert_eq!(ex.available_mb(), 100);
    }

    #[test]
    fn trace_memory_profile_matches_pool_constraint() {
        let mut ex = ParallelExecutor::new(700);
        ex.admit(job(0, 300, 400)).expect("400MB fits a 700MB pool");
        ex.admit(job(1, 100, 300))
            .expect("700MB total fits the pool");
        ex.wait_next().expect("job 1 finishes at t=100");
        ex.admit(job(2, 100, 300)).expect("job 1 freed 300MB");
        let t = ex.into_trace();
        assert!(t.respects_memory(700));
        assert_eq!(t.peak_mem_mb(), 700);
    }
}
