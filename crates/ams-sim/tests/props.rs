//! Property tests for the execution substrate: memory conservation, trace
//! invariants, and serial/parallel consistency.

use ams_sim::{Job, MemoryPool, ParallelExecutor, SerialExecutor};
use proptest::prelude::*;

fn arb_jobs() -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec((50u32..500, 500u32..8000), 1..30).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(id, (time_ms, mem_mb))| Job {
                id,
                time_ms,
                mem_mb,
            })
            .collect()
    })
}

proptest! {
    /// The parallel executor never exceeds its pool and completes all jobs.
    #[test]
    fn parallel_executor_conserves_memory(jobs in arb_jobs(), capacity in 8000u32..20000) {
        let mut ex = ParallelExecutor::new(capacity);
        let mut pending = jobs.clone();
        let mut done = Vec::new();
        while !pending.is_empty() || ex.running_count() > 0 {
            let mut i = 0;
            while i < pending.len() {
                if ex.fits(pending[i].mem_mb) {
                    let j = pending.remove(i);
                    ex.admit(j).expect("fits() said yes");
                } else {
                    i += 1;
                }
            }
            match ex.wait_next() {
                Some(j) => done.push(j),
                None => break,
            }
        }
        prop_assert_eq!(done.len() + pending.len(), jobs.len());
        // jobs bigger than the pool can never run, everything else must
        for p in &pending {
            prop_assert!(p.mem_mb > capacity);
        }
        let trace = ex.into_trace();
        prop_assert!(trace.respects_memory(capacity), "peak {}", trace.peak_mem_mb());
        // makespan >= the critical path lower bound (longest single job)
        if let Some(max_t) = done.iter().map(|j| u64::from(j.time_ms)).max() {
            prop_assert!(trace.makespan_ms() >= max_t);
        }
        // busy time equals the sum of executed job times
        let total: u64 = done.iter().map(|j| u64::from(j.time_ms)).sum();
        prop_assert_eq!(trace.busy_ms(), total);
    }

    /// Serial execution time is exactly the prefix sum; the deadline is a
    /// hard gate.
    #[test]
    fn serial_executor_prefix_sums(jobs in arb_jobs(), deadline in 0u64..8000) {
        let mut ex = SerialExecutor::new(deadline);
        let mut expected = 0u64;
        for j in &jobs {
            let fits = expected + u64::from(j.time_ms) <= deadline;
            let ran = ex.run(*j);
            prop_assert_eq!(ran, fits);
            if ran {
                expected += u64::from(j.time_ms);
            }
        }
        prop_assert_eq!(ex.elapsed_ms(), expected);
        prop_assert!(ex.into_trace().is_serial());
    }

    /// Memory pool accounting never goes negative or above capacity and
    /// failed acquires change nothing.
    #[test]
    fn memory_pool_accounting(ops in prop::collection::vec((any::<bool>(), 1u32..10000), 0..100), capacity in 1000u32..16000) {
        let mut pool = MemoryPool::new(capacity);
        let mut held: Vec<u32> = Vec::new();
        for (acquire, size) in ops {
            if acquire {
                let before = pool.in_use_mb();
                match pool.acquire(size) {
                    Ok(()) => held.push(size),
                    Err(_) => prop_assert_eq!(pool.in_use_mb(), before),
                }
            } else if let Some(mb) = held.pop() {
                pool.release(mb).expect("held memory releases");
            }
            let sum: u32 = held.iter().sum();
            prop_assert_eq!(pool.in_use_mb(), sum);
            prop_assert!(pool.in_use_mb() <= capacity);
            prop_assert!(pool.peak_mb() >= pool.in_use_mb());
        }
    }

    /// The parallel executor with capacity >= all jobs behaves like pure
    /// concurrency: makespan equals the longest job.
    #[test]
    fn unbounded_pool_is_fully_concurrent(jobs in arb_jobs()) {
        let total_mem: u32 = jobs.iter().map(|j| j.mem_mb).sum();
        let mut ex = ParallelExecutor::new(total_mem.max(1));
        for j in &jobs {
            ex.admit(*j).expect("unbounded");
        }
        let max_t = jobs.iter().map(|j| u64::from(j.time_ms)).max().unwrap_or(0);
        ex.drain();
        prop_assert_eq!(ex.now_ms(), max_t);
    }
}
