//! Property tests for the execution substrate: memory conservation, trace
//! invariants, and serial/parallel consistency.

use ams_sim::{
    batched_makespan, BatchLatencyModel, Job, MemoryPool, ParallelExecutor, SerialExecutor,
};
use proptest::prelude::*;

fn arb_jobs() -> impl Strategy<Value = Vec<Job>> {
    prop::collection::vec((50u32..500, 500u32..8000), 1..30).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(id, (time_ms, mem_mb))| Job {
                id,
                time_ms,
                mem_mb,
            })
            .collect()
    })
}

proptest! {
    /// The parallel executor never exceeds its pool and completes all jobs.
    #[test]
    fn parallel_executor_conserves_memory(jobs in arb_jobs(), capacity in 8000u32..20000) {
        let mut ex = ParallelExecutor::new(capacity);
        let mut pending = jobs.clone();
        let mut done = Vec::new();
        while !pending.is_empty() || ex.running_count() > 0 {
            let mut i = 0;
            while i < pending.len() {
                if ex.fits(pending[i].mem_mb) {
                    let j = pending.remove(i);
                    ex.admit(j).expect("fits() said yes");
                } else {
                    i += 1;
                }
            }
            match ex.wait_next() {
                Some(j) => done.push(j),
                None => break,
            }
        }
        prop_assert_eq!(done.len() + pending.len(), jobs.len());
        // jobs bigger than the pool can never run, everything else must
        for p in &pending {
            prop_assert!(p.mem_mb > capacity);
        }
        let trace = ex.into_trace();
        prop_assert!(trace.respects_memory(capacity), "peak {}", trace.peak_mem_mb());
        // makespan >= the critical path lower bound (longest single job)
        if let Some(max_t) = done.iter().map(|j| u64::from(j.time_ms)).max() {
            prop_assert!(trace.makespan_ms() >= max_t);
        }
        // busy time equals the sum of executed job times
        let total: u64 = done.iter().map(|j| u64::from(j.time_ms)).sum();
        prop_assert_eq!(trace.busy_ms(), total);
    }

    /// Serial execution time is exactly the prefix sum; the deadline is a
    /// hard gate.
    #[test]
    fn serial_executor_prefix_sums(jobs in arb_jobs(), deadline in 0u64..8000) {
        let mut ex = SerialExecutor::new(deadline);
        let mut expected = 0u64;
        for j in &jobs {
            let fits = expected + u64::from(j.time_ms) <= deadline;
            let ran = ex.run(*j);
            prop_assert_eq!(ran, fits);
            if ran {
                expected += u64::from(j.time_ms);
            }
        }
        prop_assert_eq!(ex.elapsed_ms(), expected);
        prop_assert!(ex.into_trace().is_serial());
    }

    /// Memory pool accounting never goes negative or above capacity and
    /// failed acquires change nothing.
    #[test]
    fn memory_pool_accounting(ops in prop::collection::vec((any::<bool>(), 1u32..10000), 0..100), capacity in 1000u32..16000) {
        let mut pool = MemoryPool::new(capacity);
        let mut held: Vec<u32> = Vec::new();
        for (acquire, size) in ops {
            if acquire {
                let before = pool.in_use_mb();
                match pool.acquire(size) {
                    Ok(()) => held.push(size),
                    Err(_) => prop_assert_eq!(pool.in_use_mb(), before),
                }
            } else if let Some(mb) = held.pop() {
                pool.release(mb).expect("held memory releases");
            }
            let sum: u32 = held.iter().sum();
            prop_assert_eq!(pool.in_use_mb(), sum);
            prop_assert!(pool.in_use_mb() <= capacity);
            prop_assert!(pool.peak_mb() >= pool.in_use_mb());
        }
    }

    /// The per-batch latency model is calibrated (batch of 1 = the single
    /// job), monotone in batch size, and never cheaper than the max single
    /// job nor dearer than running the batch serially.
    #[test]
    fn batch_latency_model_calibrated_and_monotone(
        single_ms in 1u32..5000,
        permille in 0u32..=1000,
        batch in 1usize..128,
    ) {
        let m = BatchLatencyModel::new(permille);
        prop_assert_eq!(m.batch_time_ms(single_ms, 1), u64::from(single_ms));
        let t = m.batch_time_ms(single_ms, batch);
        prop_assert!(t >= m.batch_time_ms(single_ms, batch.saturating_sub(1)));
        prop_assert!(t <= m.batch_time_ms(single_ms, batch + 1));
        prop_assert!(t >= u64::from(single_ms), "never cheaper than one full run");
        prop_assert!(t <= batch as u64 * u64::from(single_ms), "never worse than serial");
        prop_assert_eq!(m.setup_ms(single_ms) + m.marginal_ms(single_ms), u64::from(single_ms));
    }

    /// Batched admission conserves pool memory: weights are acquired once
    /// per batch, every admission/release balances, and the trace respects
    /// the capacity.
    #[test]
    fn batched_admission_conserves_memory(
        groups in prop::collection::vec((50u32..500, 500u32..8000, 1usize..32), 1..20),
        capacity in 8000u32..20000,
        permille in 0u32..=1000,
    ) {
        let model = BatchLatencyModel::new(permille);
        let mut ex = ParallelExecutor::new(capacity);
        let mut pending: Vec<(Job, usize)> = groups
            .iter()
            .enumerate()
            .map(|(id, &(time_ms, mem_mb, count))| (Job { id, time_ms, mem_mb }, count))
            .collect();
        let mut admitted = 0usize;
        while !pending.is_empty() || ex.running_count() > 0 {
            let mut i = 0;
            while i < pending.len() {
                if ex.fits(pending[i].0.mem_mb) {
                    let (job, count) = pending.remove(i);
                    let dur = ex.admit_batch(job, count, &model).expect("fits() said yes");
                    prop_assert_eq!(dur, model.batch_time_ms(job.time_ms, count));
                    admitted += 1;
                } else {
                    i += 1;
                }
            }
            prop_assert!(ex.available_mb() <= capacity);
            if ex.wait_next().is_none() {
                break;
            }
        }
        // every admitted batch ran and released its memory
        prop_assert_eq!(ex.running_count(), 0);
        prop_assert_eq!(ex.available_mb(), capacity);
        for p in &pending {
            prop_assert!(p.0.mem_mb > capacity, "only pool-exceeding batches remain");
        }
        let trace = ex.into_trace();
        prop_assert_eq!(trace.spans.len(), admitted);
        prop_assert!(trace.respects_memory(capacity));
    }

    /// `batched_makespan` is bounded below by the longest single batch and
    /// above by the serial sum of batch times.
    #[test]
    fn batched_makespan_within_scheduling_bounds(
        groups in prop::collection::vec((50u32..500, 500u32..8000, 1usize..32), 1..20),
        capacity in 1000u32..20000,
        permille in 0u32..=1000,
    ) {
        let model = BatchLatencyModel::new(permille);
        let gs: Vec<(Job, usize)> = groups
            .iter()
            .enumerate()
            .map(|(id, &(time_ms, mem_mb, count))| (Job { id, time_ms, mem_mb }, count))
            .collect();
        let makespan = batched_makespan(&gs, capacity, &model);
        let longest = gs
            .iter()
            .map(|&(j, c)| model.batch_time_ms(j.time_ms, c))
            .max()
            .unwrap_or(0);
        let serial: u64 = gs
            .iter()
            .map(|&(j, c)| model.batch_time_ms(j.time_ms, c))
            .sum();
        prop_assert!(makespan >= longest);
        prop_assert!(makespan <= serial);
    }

    /// The parallel executor with capacity >= all jobs behaves like pure
    /// concurrency: makespan equals the longest job.
    #[test]
    fn unbounded_pool_is_fully_concurrent(jobs in arb_jobs()) {
        let total_mem: u32 = jobs.iter().map(|j| j.mem_mb).sum();
        let mut ex = ParallelExecutor::new(total_mem.max(1));
        for j in &jobs {
            ex.admit(*j).expect("unbounded");
        }
        let max_t = jobs.iter().map(|j| u64::from(j.time_ms)).max().unwrap_or(0);
        ex.drain();
        prop_assert_eq!(ex.now_ms(), max_t);
    }
}
