//! Explore–exploit scheduling for correlated chunks (§I).
//!
//! The paper observes that when the stream partitions into chunks with
//! correlated content (e.g. video segments), a simple strategy works
//! extremely well: *explore* at the head of each chunk by running all
//! models on a few items to discover which subset is valuable there, then
//! *exploit* by running only that subset on the remainder.
//!
//! This module implements that scheduler over chunked streams of scenes and
//! reports the time saved and recall retained — the `ablation_chunked`
//! bench regenerates the claim.

use ams_data::dataset::Dataset;
use ams_data::{DatasetProfile, ItemTruth, TruthTable};
use ams_models::{ModelId, ModelZoo};

/// Configuration of the explore–exploit scheduler.
#[derive(Debug, Clone, Copy)]
pub struct ChunkedConfig {
    /// Items at the head of each chunk executed with *all* models.
    pub explore_items: usize,
    /// Greedy subset selection stops when the best remaining model's
    /// marginal value across the explore items falls below this fraction of
    /// the explore items' total value. This prunes redundant same-task
    /// variants, not just worthless models.
    ///
    /// The default (0.012) is calibrated against the current synthetic
    /// substrate so the exploit set stays small enough to halve stream cost
    /// at >0.85 recall; like every threshold over the synthetic worlds it
    /// is coupled to the seeded scene distribution, so re-calibrate it if
    /// the RNG or generator internals change (it moved from 0.006 when the
    /// vendored RNG replaced upstream `rand`'s stream).
    pub min_gain_fraction: f64,
    /// Valuable-label confidence threshold.
    pub value_threshold: f32,
}

impl Default for ChunkedConfig {
    fn default() -> Self {
        Self {
            explore_items: 4,
            min_gain_fraction: 0.012,
            value_threshold: 0.5,
        }
    }
}

/// Outcome over one chunk.
#[derive(Debug, Clone)]
pub struct ChunkOutcome {
    /// Models kept for the exploit phase.
    pub exploited_models: Vec<ModelId>,
    /// Total execution time spent on the chunk, ms.
    pub time_ms: u64,
    /// Mean recall across the chunk's items.
    pub mean_recall: f64,
}

/// Run explore–exploit over one chunk of ground-truth items.
pub fn run_chunk(items: &[ItemTruth], zoo: &ModelZoo, cfg: &ChunkedConfig) -> ChunkOutcome {
    let n_models = zoo.len();
    let explore = cfg.explore_items.min(items.len());
    let mut time_ms = 0u64;
    let mut recall_sum = 0.0f64;

    // Explore: run everything on the chunk head.
    for _item in &items[..explore] {
        for m in 0..n_models {
            time_ms += u64::from(zoo.spec(ModelId(m as u8)).time_ms);
        }
        recall_sum += 1.0; // full execution recalls everything
    }

    // Greedy coverage over the explore items: repeatedly keep the model
    // with the highest marginal recalled value per second, until the best
    // remaining gain is a negligible fraction of the explore value. Unlike
    // a per-model "was it valuable" filter, this drops same-task variants
    // whose labels a kept model already covers.
    let mut keep: Vec<ModelId> = Vec::new();
    if explore > 0 {
        let total_explore_value: f64 = items[..explore].iter().map(|it| it.total_value).sum();
        let mut states: Vec<ams_models::LabelSet> = items[..explore]
            .iter()
            .map(|it| ams_models::LabelSet::new(it.universe()))
            .collect();
        let mut kept_mask = 0u64;
        loop {
            let mut best: Option<(usize, f64, f64)> = None; // (model, gain, density)
            for m in 0..n_models {
                if kept_mask >> m & 1 == 1 {
                    continue;
                }
                let id = ModelId(m as u8);
                let gain: f64 = items[..explore]
                    .iter()
                    .zip(&states)
                    .map(|(it, st)| it.marginal_value(st, id, cfg.value_threshold))
                    .sum();
                let density = gain / f64::from(zoo.spec(id).time_ms).max(1.0);
                if best.map(|(_, _, d)| density > d).unwrap_or(true) {
                    best = Some((m, gain, density));
                }
            }
            let Some((m, gain, _)) = best else { break };
            if gain < cfg.min_gain_fraction * total_explore_value.max(1e-9) {
                break;
            }
            let id = ModelId(m as u8);
            kept_mask |= 1 << m;
            keep.push(id);
            for (it, st) in items[..explore].iter().zip(states.iter_mut()) {
                it.apply(st, id, cfg.value_threshold);
            }
        }
    }

    // Exploit: run only the kept subset.
    for item in &items[explore..] {
        for &id in &keep {
            time_ms += u64::from(zoo.spec(id).time_ms);
        }
        recall_sum += item.recall_of_set(&keep, cfg.value_threshold);
    }

    let mean_recall = if items.is_empty() {
        1.0
    } else {
        recall_sum / items.len() as f64
    };
    ChunkOutcome {
        exploited_models: keep,
        time_ms,
        mean_recall,
    }
}

/// Build a chunked stream: `num_chunks` chunks of `chunk_len` scenes, each
/// chunk drawn from a single scene template (maximally correlated content,
/// like frames of one video segment). Returns one [`TruthTable`] per chunk.
pub fn chunked_stream(
    zoo: &ModelZoo,
    chunk_len: usize,
    num_chunks: usize,
    world_seed: u64,
    threshold: f32,
) -> Vec<TruthTable> {
    use ams_data::SceneGenerator;
    use ams_data::TemplateKind;
    let catalog = zoo.catalog();
    let kinds = TemplateKind::ALL;
    (0..num_chunks)
        .map(|c| {
            let kind = kinds[c % kinds.len()];
            let generator = SceneGenerator::new(vec![(kind, 1.0)], world_seed, 0xC00C + c as u64);
            let dataset = Dataset {
                profile: DatasetProfile::Coco2017, // profile tag is irrelevant here
                scenes: generator.scenes(chunk_len),
                world_seed,
            };
            TruthTable::build(zoo, &catalog, &dataset, threshold)
        })
        .collect()
}

/// Aggregate explore–exploit over a whole chunked stream; returns
/// `(total time ms, mean recall, no-policy time ms)`.
pub fn run_stream(chunks: &[TruthTable], zoo: &ModelZoo, cfg: &ChunkedConfig) -> (u64, f64, u64) {
    let mut time = 0u64;
    let mut recall = 0.0f64;
    let mut items = 0usize;
    for chunk in chunks {
        let out = run_chunk(chunk.items(), zoo, cfg);
        time += out.time_ms;
        recall += out.mean_recall * chunk.len() as f64;
        items += chunk.len();
    }
    let no_policy = u64::from(zoo.total_time_ms()) * items as u64;
    (
        time,
        if items > 0 {
            recall / items as f64
        } else {
            1.0
        },
        no_policy,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (ModelZoo, Vec<TruthTable>) {
        let zoo = ModelZoo::standard();
        let chunks = chunked_stream(&zoo, 12, 4, 91, 0.5);
        (zoo, chunks)
    }

    #[test]
    fn chunks_are_template_homogeneous() {
        let (_, chunks) = fixture();
        assert_eq!(chunks.len(), 4);
        for c in &chunks {
            assert_eq!(c.len(), 12);
        }
    }

    #[test]
    fn explore_exploit_saves_time_with_high_recall() {
        let (zoo, chunks) = fixture();
        let cfg = ChunkedConfig::default();
        let (time, recall, no_policy) = run_stream(&chunks, &zoo, &cfg);
        assert!(
            time < no_policy / 2,
            "chunked explore-exploit should save >50% ({time} vs {no_policy})"
        );
        assert!(recall > 0.85, "recall should stay high ({recall:.3})");
    }

    #[test]
    fn exploit_set_is_much_smaller_than_zoo() {
        let (zoo, chunks) = fixture();
        let cfg = ChunkedConfig::default();
        for chunk in &chunks {
            let out = run_chunk(chunk.items(), &zoo, &cfg);
            assert!(
                out.exploited_models.len() < zoo.len(),
                "exploit subset should shrink ({} models)",
                out.exploited_models.len()
            );
        }
    }

    #[test]
    fn zero_explore_keeps_nothing() {
        let (zoo, chunks) = fixture();
        let cfg = ChunkedConfig {
            explore_items: 0,
            ..Default::default()
        };
        let out = run_chunk(chunks[0].items(), &zoo, &cfg);
        assert!(out.exploited_models.is_empty());
    }

    #[test]
    fn exploit_set_avoids_same_task_redundancy() {
        // Greedy coverage should keep roughly one model per relevant task,
        // not all three variants.
        let (zoo, chunks) = fixture();
        let cfg = ChunkedConfig::default();
        for chunk in &chunks {
            let out = run_chunk(chunk.items(), &zoo, &cfg);
            let mut per_task = std::collections::HashMap::new();
            for m in &out.exploited_models {
                *per_task.entry(zoo.spec(*m).task).or_insert(0usize) += 1;
            }
            let triples = per_task.values().filter(|&&c| c == 3).count();
            assert!(
                triples <= 2,
                "at most a couple of tasks should need all three variants ({per_task:?})"
            );
        }
    }

    #[test]
    fn full_explore_equals_no_policy_time() {
        let (zoo, chunks) = fixture();
        let cfg = ChunkedConfig {
            explore_items: usize::MAX,
            ..Default::default()
        };
        let out = run_chunk(chunks[0].items(), &zoo, &cfg);
        let expected = u64::from(zoo.total_time_ms()) * chunks[0].len() as u64;
        assert_eq!(out.time_ms, expected);
        assert!((out.mean_recall - 1.0).abs() < 1e-12);
    }
}
