//! Model-value prediction: the interface between the learned agent and the
//! scheduling algorithms.

use ams_data::ItemTruth;
use ams_models::LabelSet;
use ams_nn::{FwdCache, Input};
use ams_rl::{AgentSnapshot, TrainedAgent};
use std::sync::{Arc, Mutex};

/// Predicts the value of executing each model given the current labeling
/// state (Fig. 3's "model value prediction" component).
///
/// Implementations that peek at the ground truth (`item`) are *oracles* and
/// only legitimate for upper-bound baselines; the deployable implementation
/// is [`AgentPredictor`], which uses only the labeling state.
pub trait ValuePredictor: Send + Sync {
    /// Number of models scored.
    fn num_models(&self) -> usize;

    /// Predicted value per model, written into `out`
    /// (`out.len() == num_models`). Scores for already-executed models are
    /// ignored by schedulers.
    ///
    /// This is the scheduling hot path: it runs once per decision step per
    /// item, so implementations keep it allocation-free and schedulers
    /// reuse one `out` buffer across the whole item.
    fn predict_into(&self, state: &LabelSet, item: &ItemTruth, out: &mut [f32]);

    /// Predicted value per model as a fresh vector (convenience wrapper
    /// over [`ValuePredictor::predict_into`]).
    fn predict(&self, state: &LabelSet, item: &ItemTruth) -> Vec<f32> {
        let mut out = vec![0.0; self.num_models()];
        self.predict_into(state, item, &mut out);
        out
    }

    /// Short display name for experiment output.
    fn name(&self) -> &'static str;
}

/// Per-call scratch of an [`AgentPredictor`]: the sparse state encoding
/// and the network forward cache, both reused across predictions.
#[derive(Default)]
struct AgentScratch {
    sparse: Vec<u32>,
    cache: FwdCache,
}

/// The deployable predictor: a trained DRL agent's Q values.
///
/// Forward passes run against a small pool of reusable scratch buffers
/// (sparse encoding + `FwdCache`), so prediction allocates nothing in
/// steady state and concurrent callers (the parallel stream engine) each
/// check out their own scratch instead of serializing on a shared one.
pub struct AgentPredictor {
    agent: TrainedAgent,
    scratch_pool: Mutex<Vec<AgentScratch>>,
}

impl AgentPredictor {
    /// Wrap a trained agent.
    pub fn new(agent: TrainedAgent) -> Self {
        Self {
            agent,
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// Access the wrapped agent.
    pub fn agent(&self) -> &TrainedAgent {
        &self.agent
    }
}

impl ValuePredictor for AgentPredictor {
    fn num_models(&self) -> usize {
        self.agent.num_models
    }

    fn predict_into(&self, state: &LabelSet, _item: &ItemTruth, out: &mut [f32]) {
        // Check out a scratch; the lock is held only for the pop/push, not
        // for the network forward, so parallel workers rarely contend.
        let mut scratch = self
            .scratch_pool
            .lock()
            .expect("scratch pool")
            .pop()
            .unwrap_or_default();
        state.write_sparse(&mut scratch.sparse);
        let q = self
            .agent
            .net
            .forward(Input::Sparse(&scratch.sparse), &mut scratch.cache);
        out.copy_from_slice(&q[..self.agent.num_models]);
        self.scratch_pool
            .lock()
            .expect("scratch pool")
            .push(scratch);
    }

    fn name(&self) -> &'static str {
        "drl-agent"
    }
}

/// A predictor over a pinned, generation-stamped weight snapshot — the
/// serve-time face of online adaptation.
///
/// Unlike [`AgentPredictor`], which owns its agent for the process
/// lifetime, this predictor reads from an [`AgentSnapshot`] behind an
/// `Arc` and can be repointed at a newer generation with
/// [`SnapshotPredictor::set_snapshot`]. The swap takes `&mut self`: a
/// predict in progress holds `&self`, so the borrow checker — not a lock —
/// guarantees a forward pass can never observe half-old, half-new weights.
/// Workers pin one snapshot per batch (one generation check, then every
/// predict in the batch sees the same coherent weights) and keep their
/// scratch buffers across swaps.
pub struct SnapshotPredictor {
    snapshot: Arc<AgentSnapshot>,
    scratch_pool: Mutex<Vec<AgentScratch>>,
}

impl SnapshotPredictor {
    /// A predictor pinned to `snapshot`.
    pub fn new(snapshot: Arc<AgentSnapshot>) -> Self {
        Self {
            snapshot,
            scratch_pool: Mutex::new(Vec::new()),
        }
    }

    /// Generation of the pinned snapshot.
    pub fn generation(&self) -> u64 {
        self.snapshot.generation
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &Arc<AgentSnapshot> {
        &self.snapshot
    }

    /// Repoint at a newer snapshot, keeping the scratch buffers. Takes
    /// `&mut self` so no concurrent predict can straddle the swap.
    pub fn set_snapshot(&mut self, snapshot: Arc<AgentSnapshot>) {
        self.snapshot = snapshot;
    }
}

impl ValuePredictor for SnapshotPredictor {
    fn num_models(&self) -> usize {
        self.snapshot.agent.num_models
    }

    fn predict_into(&self, state: &LabelSet, _item: &ItemTruth, out: &mut [f32]) {
        let mut scratch = self
            .scratch_pool
            .lock()
            .expect("scratch pool")
            .pop()
            .unwrap_or_default();
        state.write_sparse(&mut scratch.sparse);
        let agent = &self.snapshot.agent;
        let q = agent
            .net
            .forward(Input::Sparse(&scratch.sparse), &mut scratch.cache);
        out.copy_from_slice(&q[..agent.num_models]);
        self.scratch_pool
            .lock()
            .expect("scratch pool")
            .push(scratch);
    }

    fn name(&self) -> &'static str {
        "drl-agent-snapshot"
    }
}

/// Oracle: the *true marginal value* of each model given the state.
/// Used to realize the optimal\* upper bound of §V-C.
pub struct OraclePredictor {
    num_models: usize,
    threshold: f32,
}

impl OraclePredictor {
    /// Oracle over `num_models` models at the given value threshold.
    pub fn new(num_models: usize, threshold: f32) -> Self {
        Self {
            num_models,
            threshold,
        }
    }
}

impl ValuePredictor for OraclePredictor {
    fn num_models(&self) -> usize {
        self.num_models
    }

    fn predict_into(&self, state: &LabelSet, item: &ItemTruth, out: &mut [f32]) {
        for (m, o) in out.iter_mut().enumerate() {
            *o = item.marginal_value(state, ams_models::ModelId(m as u8), self.threshold) as f32;
        }
    }

    fn name(&self) -> &'static str {
        "oracle-marginal"
    }
}

/// Oracle with *static* per-model values (ignores overlap): the knowledge
/// the paper's "optimal policy" baseline of §VI-B uses (models sorted by
/// their own true output value).
pub struct StaticValuePredictor {
    num_models: usize,
}

impl StaticValuePredictor {
    /// Static oracle over `num_models` models.
    pub fn new(num_models: usize) -> Self {
        Self { num_models }
    }
}

impl ValuePredictor for StaticValuePredictor {
    fn num_models(&self) -> usize {
        self.num_models
    }

    fn predict_into(&self, _state: &LabelSet, item: &ItemTruth, out: &mut [f32]) {
        for (o, &v) in out.iter_mut().zip(&item.model_value) {
            *o = v as f32;
        }
    }

    fn name(&self) -> &'static str {
        "oracle-static"
    }
}

/// Uninformed predictor: identical value for every model. Under Algorithm 1
/// this degenerates to cheapest-first; mainly useful in tests.
pub struct UniformPredictor {
    num_models: usize,
}

impl UniformPredictor {
    /// Uniform scores over `num_models` models.
    pub fn new(num_models: usize) -> Self {
        Self { num_models }
    }
}

impl ValuePredictor for UniformPredictor {
    fn num_models(&self) -> usize {
        self.num_models
    }

    fn predict_into(&self, _state: &LabelSet, _item: &ItemTruth, out: &mut [f32]) {
        out.fill(1.0);
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_data::{Dataset, DatasetProfile, TruthTable};
    use ams_models::{LabelSet, ModelId, ModelZoo};

    fn fixture() -> TruthTable {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::MirFlickr25, 10, 3);
        TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5)
    }

    #[test]
    fn oracle_matches_marginal_value() {
        let t = fixture();
        let item = t.item(0);
        let oracle = OraclePredictor::new(30, 0.5);
        let state = LabelSet::new(item.universe());
        let p = oracle.predict(&state, item);
        for (m, &got) in p.iter().enumerate() {
            let want = item.marginal_value(&state, ModelId(m as u8), 0.5) as f32;
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn oracle_decays_as_state_fills() {
        let t = fixture();
        let item = t.item(0);
        let oracle = OraclePredictor::new(30, 0.5);
        let mut state = LabelSet::new(item.universe());
        let before: f32 = oracle.predict(&state, item).iter().sum();
        // execute everything
        for m in 0..30 {
            item.apply(&mut state, ModelId(m), 0.5);
        }
        let after: f32 = oracle.predict(&state, item).iter().sum();
        assert_eq!(after, 0.0, "no marginal value left after full execution");
        assert!(before >= after);
    }

    #[test]
    fn static_predictor_is_state_independent() {
        let t = fixture();
        let item = t.item(1);
        let p = StaticValuePredictor::new(30);
        let empty = LabelSet::new(item.universe());
        let mut full = LabelSet::new(item.universe());
        for m in 0..30 {
            item.apply(&mut full, ModelId(m), 0.5);
        }
        assert_eq!(p.predict(&empty, item), p.predict(&full, item));
    }

    #[test]
    fn snapshot_predictor_matches_agent_predictor_and_swaps() {
        use ams_rl::{train, Algo, TrainConfig};
        let t = fixture();
        let cfg = TrainConfig {
            episodes: 8,
            ..TrainConfig::fast_test(Algo::Dqn)
        };
        let (agent, _) = train(t.items(), 30, &cfg);
        let direct = AgentPredictor::new(agent.clone());
        let mut snap = SnapshotPredictor::new(Arc::new(AgentSnapshot::initial(agent.clone())));
        assert_eq!(snap.generation(), 0);
        assert_eq!(snap.num_models(), 30);
        let item = t.item(0);
        let mut state = LabelSet::new(item.universe());
        assert_eq!(direct.predict(&state, item), snap.predict(&state, item));
        item.apply(&mut state, ModelId(4), 0.5);
        assert_eq!(direct.predict(&state, item), snap.predict(&state, item));
        // Repointing at a newer generation changes what predicts.
        let cfg2 = TrainConfig {
            episodes: 8,
            seed: 5,
            ..TrainConfig::fast_test(Algo::Dqn)
        };
        let (agent2, _) = train(t.items(), 30, &cfg2);
        snap.set_snapshot(Arc::new(AgentSnapshot {
            agent: agent2.clone(),
            generation: 3,
        }));
        assert_eq!(snap.generation(), 3);
        assert_eq!(
            AgentPredictor::new(agent2).predict(&state, item),
            snap.predict(&state, item)
        );
    }

    #[test]
    fn uniform_predictor_scores_equal() {
        let t = fixture();
        let p = UniformPredictor::new(30);
        let state = LabelSet::new(1104);
        let scores = p.predict(&state, t.item(0));
        assert_eq!(scores, vec![1.0; 30]);
        assert_eq!(p.num_models(), 30);
    }
}
