//! Metrics shared by the experiments: CDFs, series and scalar summaries.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; 0 for slices shorter than 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// An empirical CDF (the per-image time-cost CDFs of Figs. 2 and 8).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from raw samples.
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x`.
    pub fn at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let n = self.sorted.partition_point(|&v| v <= x);
        n as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "empty CDF");
        let q = q.clamp(0.0, 1.0);
        let i = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[i]
    }

    /// Sample the CDF at `k` evenly spaced points across its support,
    /// returning `(x, F(x))` pairs (for plotting/printing).
    pub fn sample_points(&self, k: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || k == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        (0..k)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (k.max(2) - 1) as f64;
                (x, self.at(x))
            })
            .collect()
    }

    /// Mean of the underlying samples.
    pub fn mean(&self) -> f64 {
        mean(&self.sorted)
    }
}

/// A named `(x, y)` series — one curve of a paper figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Legend label (e.g. `"DuelingDQN"`).
    pub label: String,
    /// X coordinates (e.g. recall-rate grid, deadline grid).
    pub x: Vec<f64>,
    /// Y values.
    pub y: Vec<f64>,
}

impl Series {
    /// Build a series; `x` and `y` must have equal length.
    pub fn new(label: impl Into<String>, x: Vec<f64>, y: Vec<f64>) -> Self {
        assert_eq!(x.len(), y.len(), "series length mismatch");
        Self {
            label: label.into(),
            x,
            y,
        }
    }

    /// Interpolated y at `x` (linear, clamped to the range).
    pub fn at(&self, x: f64) -> f64 {
        assert!(!self.x.is_empty(), "empty series");
        if x <= self.x[0] {
            return self.y[0];
        }
        if x >= *self.x.last().expect("non-empty") {
            return *self.y.last().expect("non-empty");
        }
        let i = self.x.partition_point(|&v| v <= x);
        let (x0, x1) = (self.x[i - 1], self.x[i]);
        let (y0, y1) = (self.y[i - 1], self.y[i]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Whether the series is monotone non-decreasing in y.
    pub fn is_non_decreasing(&self) -> bool {
        self.y.windows(2).all(|w| w[1] >= w[0] - 1e-9)
    }
}

/// A figure: a set of series over a common x-axis meaning.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure {
    /// Figure identifier (e.g. `"fig4a"`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Axis labels.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Render as an aligned text table (one row per x, one column per
    /// series) — the form EXPERIMENTS.md embeds.
    pub fn to_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {:>14}", s.label);
        }
        let _ = writeln!(out);
        if let Some(first) = self.series.first() {
            for (i, &x) in first.x.iter().enumerate() {
                let _ = write!(out, "{x:>12.3}");
                for s in &self.series {
                    let _ = write!(out, " {:>14.4}", s.y.get(i).copied().unwrap_or(f64::NAN));
                }
                let _ = writeln!(out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let c = Cdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(c.at(0.5), 0.0);
        assert_eq!(c.at(1.0), 0.25);
        assert_eq!(c.at(2.0), 0.75);
        assert_eq!(c.at(10.0), 1.0);
        let pts = c.sample_points(5);
        assert!(pts.windows(2).all(|w| w[1].1 >= w[0].1));
    }

    #[test]
    fn cdf_quantiles() {
        let c = Cdf::new((1..=100).map(f64::from).collect());
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 100.0);
        let med = c.quantile(0.5);
        assert!((49.0..=52.0).contains(&med));
        assert!((c.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn series_interpolates() {
        let s = Series::new("x", vec![0.0, 1.0, 2.0], vec![0.0, 10.0, 40.0]);
        assert_eq!(s.at(-1.0), 0.0);
        assert_eq!(s.at(0.5), 5.0);
        assert_eq!(s.at(1.5), 25.0);
        assert_eq!(s.at(5.0), 40.0);
        assert!(s.is_non_decreasing());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn series_length_checked() {
        let _ = Series::new("bad", vec![0.0], vec![]);
    }

    #[test]
    fn figure_table_renders() {
        let fig = Figure {
            id: "t".into(),
            title: "test".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![Series::new("a", vec![1.0, 2.0], vec![0.1, 0.2])],
        };
        let t = fig.to_table();
        assert!(t.contains("test"));
        assert!(t.contains('a'));
        assert!(t.lines().count() >= 4);
    }
}
