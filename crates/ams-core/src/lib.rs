//! # ams-core — Adaptive Model Scheduling
//!
//! The paper's primary contribution (Yuan, Zhang, Li, Xiong — ICDE 2020):
//! given a set of deep-learning models and a stream of data items, adaptively
//! schedule a subset of models per item to maximize the value of extracted
//! labels under resource constraints.
//!
//! The crate composes the substrates:
//!
//! * [`predictor`] — the model-value prediction interface: a trained DRL
//!   agent (from `ams-rl`), oracle predictors for upper bounds, and uniform
//!   predictors for baselines.
//! * [`scheduler`] — Algorithm 1 (deadline constraint, cost-profit greedy
//!   on `Q/m.time`) and Algorithm 2 (deadline + GPU-memory constraint on a
//!   multi-processor pool), plus the relaxed **optimal\*** upper bound of
//!   §V-C.
//! * [`policies`] — run-to-recall execution policies: random, optimal
//!   (true-value descending), Q-greedy, and the shared rollout runner.
//! * [`rules`] — the handcrafted-rule baseline of Table II.
//! * [`chunked`] — the §I explore–exploit scheduler for correlated chunks.
//! * [`graph`] — the model-relationship graph sketched as future work in
//!   §VIII, usable as a lightweight statistical value predictor.
//! * [`metrics`] — CDFs, series and summaries used by the experiments.
//! * [`framework`] — the user-facing facade: the
//!   "prediction → scheduling → execution → state update" loop of Fig. 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod chunked;
pub mod framework;
pub mod graph;
pub mod metrics;
pub mod policies;
pub mod predictor;
pub mod rules;
pub mod scheduler;
pub mod streaming;

pub use framework::{AdaptiveModelScheduler, Budget, LabelingOutcome};
pub use predictor::{
    AgentPredictor, OraclePredictor, SnapshotPredictor, StaticValuePredictor, UniformPredictor,
    ValuePredictor,
};
pub use scheduler::deadline::{schedule_deadline, DeadlineResult};
pub use scheduler::deadline_memory::{schedule_deadline_memory, DeadlineMemoryResult};
pub use scheduler::optimal_star::{optimal_star_deadline, optimal_star_deadline_memory};
