//! Run-to-recall execution policies (§VI-B protocol) and the shared
//! rollout runner.
//!
//! These policies answer: "in what order do we execute models until the
//! recalled value reaches a target?" They power Figs. 2, 4, 5, 6 and 8:
//!
//! * **Random** — uniformly random order (the paper's random policy).
//! * **Optimal** — models in descending order of their true output value
//!   (the paper's optimal policy; knows the ground truth).
//! * **Q-greedy** — maximal predicted value first (via any
//!   [`ValuePredictor`]; with an [`crate::AgentPredictor`] this is the
//!   paper's Q-value greedy policy).

use crate::predictor::ValuePredictor;
use ams_data::ItemTruth;
use ams_models::{LabelSet, ModelId, ModelZoo};
use ams_rl::Rollout;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Execute models chosen by `pick` until the recall target is reached or
/// every model has run. `pick(state, executed_mask)` must return an
/// unexecuted model.
pub fn run_to_recall(
    item: &ItemTruth,
    zoo: &ModelZoo,
    recall_target: f64,
    threshold: f32,
    mut pick: impl FnMut(&LabelSet, u64) -> ModelId,
) -> Rollout {
    let n = zoo.len();
    let mut state = LabelSet::new(item.universe());
    let mut executed = Vec::new();
    let mut mask = 0u64;
    let mut time_ms = 0u64;
    let mut recalled = 0.0f64;
    let total = item.total_value;

    while executed.len() < n && total > 0.0 && recalled / total < recall_target - 1e-12 {
        let m = pick(&state, mask);
        assert_eq!(mask >> m.index() & 1, 0, "policy picked executed model {m}");
        mask |= 1 << m.index();
        executed.push(m);
        time_ms += u64::from(zoo.spec(m).time_ms);
        recalled += item.apply(&mut state, m, threshold);
    }
    let recall = if total > 0.0 { recalled / total } else { 1.0 };
    Rollout {
        executed,
        time_ms,
        recall,
    }
}

/// Random policy: a fresh uniformly random order per item.
pub fn random_rollout(
    item: &ItemTruth,
    zoo: &ModelZoo,
    recall_target: f64,
    threshold: f32,
    seed: u64,
) -> Rollout {
    let mut order: Vec<ModelId> = zoo.ids().collect();
    let mut rng = StdRng::seed_from_u64(seed ^ item.scene_id.wrapping_mul(0x9E37_79B9));
    order.shuffle(&mut rng);
    let mut i = 0;
    run_to_recall(item, zoo, recall_target, threshold, |_, _| {
        let m = order[i];
        i += 1;
        m
    })
}

/// Optimal policy (§VI-B): executes models in descending order of their
/// *true* output value.
pub fn optimal_rollout(
    item: &ItemTruth,
    zoo: &ModelZoo,
    recall_target: f64,
    threshold: f32,
) -> Rollout {
    let mut order: Vec<ModelId> = zoo.ids().collect();
    order.sort_by(|a, b| {
        item.model_value[b.index()]
            .partial_cmp(&item.model_value[a.index()])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    });
    let mut i = 0;
    run_to_recall(item, zoo, recall_target, threshold, |_, _| {
        let m = order[i];
        i += 1;
        m
    })
}

/// Q-greedy policy: maximal predicted value among unexecuted models.
pub fn predictor_greedy_rollout(
    item: &ItemTruth,
    zoo: &ModelZoo,
    predictor: &dyn ValuePredictor,
    recall_target: f64,
    threshold: f32,
) -> Rollout {
    let mut q = vec![0.0f32; predictor.num_models()];
    run_to_recall(item, zoo, recall_target, threshold, move |state, mask| {
        predictor.predict_into(state, item, &mut q);
        let mut best = usize::MAX;
        let mut best_q = f32::NEG_INFINITY;
        for (a, &v) in q.iter().enumerate() {
            if mask >> a & 1 == 0 && v > best_q {
                best_q = v;
                best = a;
            }
        }
        ModelId(best as u8)
    })
}

/// "No policy": execute everything; per-item time is the full zoo cost.
pub fn no_policy_time_ms(zoo: &ModelZoo) -> u64 {
    u64::from(zoo.total_time_ms())
}

/// Aggregate a rollout metric over items: returns
/// `(avg executed models, avg time seconds)`.
pub fn aggregate_rollouts<'a>(
    items: impl Iterator<Item = &'a ItemTruth>,
    mut run: impl FnMut(&ItemTruth) -> Rollout,
) -> (f64, f64) {
    let mut n = 0usize;
    let mut models = 0.0;
    let mut time = 0.0;
    for item in items {
        let r = run(item);
        models += r.executed.len() as f64;
        time += r.time_ms as f64 / 1000.0;
        n += 1;
    }
    if n == 0 {
        (0.0, 0.0)
    } else {
        (models / n as f64, time / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{OraclePredictor, StaticValuePredictor};
    use ams_data::{Dataset, DatasetProfile, TruthTable};

    fn fixture() -> (ModelZoo, TruthTable) {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 40, 77);
        let t = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        (zoo, t)
    }

    #[test]
    fn all_policies_reach_full_recall() {
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        for item in t.items().iter().take(10) {
            for r in [
                random_rollout(item, &zoo, 1.0, 0.5, 1),
                optimal_rollout(item, &zoo, 1.0, 0.5),
                predictor_greedy_rollout(item, &zoo, &oracle, 1.0, 0.5),
            ] {
                assert!(r.recall >= 1.0 - 1e-9, "recall {}", r.recall);
            }
        }
    }

    #[test]
    fn optimal_beats_random_on_average() {
        let (zoo, t) = fixture();
        let (rand_models, rand_time) =
            aggregate_rollouts(t.items().iter(), |it| random_rollout(it, &zoo, 1.0, 0.5, 9));
        let (opt_models, opt_time) =
            aggregate_rollouts(t.items().iter(), |it| optimal_rollout(it, &zoo, 1.0, 0.5));
        assert!(
            opt_models < rand_models,
            "optimal executes fewer models ({opt_models:.1} vs {rand_models:.1})"
        );
        assert!(opt_time < rand_time);
    }

    #[test]
    fn oracle_greedy_at_least_matches_static_optimal() {
        // The marginal-value oracle accounts for overlap, so it should not
        // need more executions than the static-value order on average.
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        let static_p = StaticValuePredictor::new(30);
        let (om, _) = aggregate_rollouts(t.items().iter(), |it| {
            predictor_greedy_rollout(it, &zoo, &oracle, 1.0, 0.5)
        });
        let (sm, _) = aggregate_rollouts(t.items().iter(), |it| {
            predictor_greedy_rollout(it, &zoo, &static_p, 1.0, 0.5)
        });
        assert!(om <= sm + 0.5, "oracle-marginal {om:.2} vs static {sm:.2}");
    }

    #[test]
    fn lower_targets_cost_less() {
        let (zoo, t) = fixture();
        for item in t.items().iter().take(10) {
            let lo = optimal_rollout(item, &zoo, 0.5, 0.5);
            let hi = optimal_rollout(item, &zoo, 1.0, 0.5);
            assert!(lo.executed.len() <= hi.executed.len());
            assert!(lo.time_ms <= hi.time_ms);
        }
    }

    #[test]
    fn random_rollout_is_deterministic_per_seed() {
        let (zoo, t) = fixture();
        let a = random_rollout(t.item(0), &zoo, 1.0, 0.5, 42);
        let b = random_rollout(t.item(0), &zoo, 1.0, 0.5, 42);
        assert_eq!(a.executed, b.executed);
    }

    #[test]
    fn no_policy_time_is_zoo_total() {
        let (zoo, _) = fixture();
        assert_eq!(no_policy_time_ms(&zoo), u64::from(zoo.total_time_ms()));
    }

    #[test]
    fn rollouts_never_duplicate_models() {
        let (zoo, t) = fixture();
        for item in t.items().iter().take(20) {
            let r = random_rollout(item, &zoo, 1.0, 0.5, 5);
            let mut seen = std::collections::HashSet::new();
            assert!(r.executed.iter().all(|m| seen.insert(*m)));
        }
    }
}
