//! The user-facing facade: Fig. 3's
//! "prediction → scheduling → execution → state update" loop behind one
//! type.
//!
//! [`AdaptiveModelScheduler`] owns the zoo, the catalog and a value
//! predictor, and labels data items under a chosen [`Budget`]. In the paper
//! the execution step invokes real models on a GPU; here it consults the
//! simulated-inference substrate (`ams-data::infer`), which plays the same
//! role at zero cost — the scheduling logic is identical.

use crate::predictor::ValuePredictor;
use crate::scheduler::deadline::schedule_deadline;
use crate::scheduler::deadline_memory::schedule_deadline_memory;
use ams_data::{ItemTruth, Scene};
use ams_models::{LabelCatalog, LabelId, LabelSet, ModelId, ModelZoo};

/// Resource constraint for labeling one item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// No constraint: Q-greedy until no model predicts positive value.
    Unconstrained,
    /// Per-item deadline in milliseconds (Algorithm 1).
    Deadline {
        /// Time budget, ms.
        ms: u64,
    },
    /// Deadline + shared GPU memory pool (Algorithm 2).
    DeadlineMemory {
        /// Time budget, ms.
        ms: u64,
        /// Memory budget, MB.
        mem_mb: u32,
    },
}

/// Result of labeling one data item.
#[derive(Debug, Clone)]
pub struct LabelingOutcome {
    /// Labels extracted (with confidences), sorted by label id.
    pub labels: Vec<(LabelId, f32)>,
    /// Models executed (completion order under parallel budgets).
    pub executed: Vec<ModelId>,
    /// Value of the extracted labels, `f(S, d)`.
    pub value: f64,
    /// Recall of the full-execution value.
    pub recall: f64,
    /// Virtual execution time consumed, ms.
    pub elapsed_ms: u64,
}

/// The adaptive model scheduling framework.
pub struct AdaptiveModelScheduler {
    zoo: ModelZoo,
    catalog: LabelCatalog,
    predictor: Box<dyn ValuePredictor>,
    value_threshold: f32,
    world_seed: u64,
}

impl AdaptiveModelScheduler {
    /// Assemble the framework.
    pub fn new(
        zoo: ModelZoo,
        predictor: Box<dyn ValuePredictor>,
        value_threshold: f32,
        world_seed: u64,
    ) -> Self {
        assert_eq!(
            predictor.num_models(),
            zoo.len(),
            "predictor/zoo size mismatch"
        );
        let catalog = zoo.catalog();
        Self {
            zoo,
            catalog,
            predictor,
            value_threshold,
            world_seed,
        }
    }

    /// The model zoo.
    pub fn zoo(&self) -> &ModelZoo {
        &self.zoo
    }

    /// The label catalog.
    pub fn catalog(&self) -> &LabelCatalog {
        &self.catalog
    }

    /// The value predictor in use.
    pub fn predictor(&self) -> &dyn ValuePredictor {
        self.predictor.as_ref()
    }

    /// Label a scene: simulates model execution on demand, then schedules.
    pub fn label_scene(&self, scene: &Scene, budget: Budget) -> LabelingOutcome {
        // The truth row for the scene *is* the set of all model outputs —
        // exactly what executing models on the item would yield. Built
        // directly: no scene clone, no one-element dataset or table.
        let item = ams_data::ItemTruth::build(
            &self.zoo,
            &self.catalog,
            scene,
            self.world_seed,
            self.value_threshold,
        );
        self.label_item(&item, budget)
    }

    /// Label a pre-executed ground-truth item under `budget`.
    pub fn label_item(&self, item: &ItemTruth, budget: Budget) -> LabelingOutcome {
        match budget {
            Budget::Unconstrained => self.label_unconstrained(item),
            Budget::Deadline { ms } => {
                let r = schedule_deadline(
                    self.predictor.as_ref(),
                    &self.zoo,
                    item,
                    ms,
                    self.value_threshold,
                );
                self.outcome(item, r.executed, r.value, r.recall, r.elapsed_ms)
            }
            Budget::DeadlineMemory { ms, mem_mb } => {
                let r = schedule_deadline_memory(
                    self.predictor.as_ref(),
                    &self.zoo,
                    item,
                    ms,
                    mem_mb,
                    self.value_threshold,
                );
                let elapsed = r.trace.makespan_ms().min(ms);
                self.outcome(item, r.completed, r.value, r.recall, elapsed)
            }
        }
    }

    /// Greedy by predicted value until no unexecuted model has positive
    /// predicted value (the "no resource constraint" mode of §V).
    fn label_unconstrained(&self, item: &ItemTruth) -> LabelingOutcome {
        let n = self.zoo.len();
        let mut state = LabelSet::new(item.universe());
        let mut executed = Vec::new();
        let mut mask = 0u64;
        let mut value = 0.0;
        let mut elapsed = 0u64;
        let mut q = vec![0.0f32; n];
        while executed.len() < n {
            self.predictor.predict_into(&state, item, &mut q);
            let mut best: Option<(usize, f32)> = None;
            for (m, &v) in q.iter().enumerate() {
                if mask >> m & 1 == 0 && best.map(|(_, bv)| v > bv).unwrap_or(true) {
                    best = Some((m, v));
                }
            }
            let Some((m, v)) = best else { break };
            if v <= 0.0 {
                break; // nothing left worth running
            }
            let id = ModelId(m as u8);
            mask |= 1 << m;
            executed.push(id);
            elapsed += u64::from(self.zoo.spec(id).time_ms);
            value += item.apply(&mut state, id, self.value_threshold);
        }
        let recall = if item.total_value > 0.0 {
            value / item.total_value
        } else {
            1.0
        };
        self.outcome(item, executed, value, recall, elapsed)
    }

    fn outcome(
        &self,
        item: &ItemTruth,
        executed: Vec<ModelId>,
        value: f64,
        recall: f64,
        elapsed_ms: u64,
    ) -> LabelingOutcome {
        // Collect the labels the executed set produced (max conf per label).
        let mut labels: Vec<(LabelId, f32)> = Vec::new();
        for &m in &executed {
            for d in item.output(m).valuable(self.value_threshold) {
                match labels.binary_search_by_key(&d.label, |&(l, _)| l) {
                    Ok(i) => labels[i].1 = labels[i].1.max(d.confidence),
                    Err(i) => labels.insert(i, (d.label, d.confidence)),
                }
            }
        }
        LabelingOutcome {
            labels,
            executed,
            value,
            recall,
            elapsed_ms,
        }
    }

    /// Human-readable rendering of an outcome (used by examples).
    pub fn describe(&self, outcome: &LabelingOutcome) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "executed {} models in {:.2}s (recall {:.1}%, value {:.2}):",
            outcome.executed.len(),
            outcome.elapsed_ms as f64 / 1000.0,
            outcome.recall * 100.0,
            outcome.value,
        );
        for &m in &outcome.executed {
            let _ = writeln!(s, "  - {}", self.zoo.spec(m).name);
        }
        let _ = writeln!(s, "labels:");
        for &(l, c) in &outcome.labels {
            let _ = writeln!(s, "  {} ({c:.2})", self.catalog.name(l));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::OraclePredictor;
    use ams_data::{Dataset, DatasetProfile};

    fn scheduler() -> AdaptiveModelScheduler {
        let zoo = ModelZoo::standard();
        let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
        AdaptiveModelScheduler::new(zoo, predictor, 0.5, 7)
    }

    fn one_scene() -> Scene {
        Dataset::generate(DatasetProfile::Coco2017, 3, 7)
            .scenes
            .remove(1)
    }

    #[test]
    fn unconstrained_oracle_full_recall() {
        let s = scheduler();
        let out = s.label_scene(&one_scene(), Budget::Unconstrained);
        assert!(
            (out.recall - 1.0).abs() < 1e-9,
            "oracle unconstrained recalls all"
        );
        // and it should have skipped worthless models
        assert!(
            out.executed.len() < 30,
            "executed {} models",
            out.executed.len()
        );
    }

    #[test]
    fn deadline_budget_respected() {
        let s = scheduler();
        let out = s.label_scene(&one_scene(), Budget::Deadline { ms: 600 });
        assert!(out.elapsed_ms <= 600);
        assert!(out.recall <= 1.0);
    }

    #[test]
    fn deadline_memory_budget_runs() {
        let s = scheduler();
        let out = s.label_scene(
            &one_scene(),
            Budget::DeadlineMemory {
                ms: 800,
                mem_mb: 12288,
            },
        );
        assert!(out.elapsed_ms <= 800);
        assert!(!out.labels.is_empty() || out.recall == 1.0);
    }

    #[test]
    fn labels_are_sorted_and_valuable() {
        let s = scheduler();
        let out = s.label_scene(&one_scene(), Budget::Unconstrained);
        for w in out.labels.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert!(out.labels.iter().all(|&(_, c)| c >= 0.5));
    }

    #[test]
    fn describe_mentions_models_and_labels() {
        let s = scheduler();
        let out = s.label_scene(&one_scene(), Budget::Unconstrained);
        let text = s.describe(&out);
        assert!(text.contains("executed"));
        assert!(text.contains("labels:"));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn size_mismatch_rejected() {
        let zoo = ModelZoo::standard();
        let predictor = Box::new(OraclePredictor::new(5, 0.5));
        let _ = AdaptiveModelScheduler::new(zoo, predictor, 0.5, 7);
    }
}
