//! The user-facing facade: Fig. 3's
//! "prediction → scheduling → execution → state update" loop behind one
//! type.
//!
//! [`AdaptiveModelScheduler`] owns the zoo, the catalog and a value
//! predictor, and labels data items under a chosen [`Budget`]. In the paper
//! the execution step invokes real models on a GPU; here it consults the
//! simulated-inference substrate (`ams-data::infer`), which plays the same
//! role at zero cost — the scheduling logic is identical.

use crate::predictor::ValuePredictor;
use crate::scheduler::deadline::schedule_deadline;
use crate::scheduler::deadline_memory::schedule_deadline_memory;
use ams_data::{ItemTruth, Scene};
use ams_models::{LabelCatalog, LabelId, LabelSet, ModelId, ModelZoo};

/// Resource constraint for labeling one item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// No constraint: Q-greedy until no model predicts positive value.
    Unconstrained,
    /// Per-item deadline in milliseconds (Algorithm 1).
    Deadline {
        /// Time budget, ms.
        ms: u64,
    },
    /// Deadline + shared GPU memory pool (Algorithm 2).
    DeadlineMemory {
        /// Time budget, ms.
        ms: u64,
        /// Memory budget, MB.
        mem_mb: u32,
    },
}

/// A request's full serving fingerprint: the affinity signature and value
/// estimate produced by one top-k scan, plus a 64-bit hash of the item's
/// *complete* content so exact duplicates are detected — not merely items
/// that land in the same affinity cluster.
///
/// Two items with equal `content` hashes produce identical labeling
/// outcomes under the same scheduler and budget (labeling is a pure
/// function of the item's truth row), which is what lets a serving-side
/// result cache answer repeats without re-invoking any model. Distinct
/// items collide with probability ~2⁻⁶⁴ per pair; see PERF.md ("Label
/// cache") for the collision stance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fingerprint {
    /// Affinity signature: bitmask of the item's top-k models (routing key).
    pub signature: u64,
    /// Summed static value of the masked models (admission value estimate).
    pub value: f64,
    /// FNV-1a hash over the item's full content (exact-duplicate cache key).
    pub content: u64,
}

/// 64-bit FNV-1a over an item's full ground-truth content: scene id, every
/// model's detections, the valuable-label profile, and the per-model value
/// vector. Everything the labeling path can read flows into the hash, so
/// equal hashes mean (up to the ~2⁻⁶⁴ collision floor) equal labels.
pub fn content_hash(item: &ItemTruth) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn mix(h: u64, x: u64) -> u64 {
        (h ^ x).wrapping_mul(PRIME)
    }
    let mut h = mix(OFFSET, item.scene_id);
    for out in &item.outputs {
        h = mix(h, u64::from(out.model.0));
        h = mix(h, out.detections.len() as u64);
        for d in &out.detections {
            h = mix(h, u64::from(d.label.0));
            h = mix(h, u64::from(d.confidence.to_bits()));
        }
    }
    h = mix(h, item.valuable.len() as u64);
    for &(label, profit) in &item.valuable {
        h = mix(h, u64::from(label.0));
        h = mix(h, u64::from(profit.to_bits()));
    }
    h = mix(h, item.total_value.to_bits());
    for &v in &item.model_value {
        h = mix(h, v.to_bits());
    }
    h
}

/// Result of labeling one data item.
#[derive(Debug, Clone)]
pub struct LabelingOutcome {
    /// Labels extracted (with confidences), sorted by label id.
    pub labels: Vec<(LabelId, f32)>,
    /// Models executed (completion order under parallel budgets).
    pub executed: Vec<ModelId>,
    /// Value of the extracted labels, `f(S, d)`.
    pub value: f64,
    /// Recall of the full-execution value.
    pub recall: f64,
    /// Virtual execution time consumed, ms.
    pub elapsed_ms: u64,
}

/// The adaptive model scheduling framework.
pub struct AdaptiveModelScheduler {
    zoo: ModelZoo,
    catalog: LabelCatalog,
    predictor: Box<dyn ValuePredictor>,
    value_threshold: f32,
    world_seed: u64,
}

impl AdaptiveModelScheduler {
    /// Assemble the framework.
    pub fn new(
        zoo: ModelZoo,
        predictor: Box<dyn ValuePredictor>,
        value_threshold: f32,
        world_seed: u64,
    ) -> Self {
        assert_eq!(
            predictor.num_models(),
            zoo.len(),
            "predictor/zoo size mismatch"
        );
        let catalog = zoo.catalog();
        Self {
            zoo,
            catalog,
            predictor,
            value_threshold,
            world_seed,
        }
    }

    /// The model zoo.
    pub fn zoo(&self) -> &ModelZoo {
        &self.zoo
    }

    /// The label catalog.
    pub fn catalog(&self) -> &LabelCatalog {
        &self.catalog
    }

    /// The value predictor in use.
    pub fn predictor(&self) -> &dyn ValuePredictor {
        self.predictor.as_ref()
    }

    /// Predicted per-model values on the item's *initial* (empty) labeling
    /// state, written into `out` (`out.len() == zoo.len()`). One predictor
    /// forward, no labeling work — the cheap introspection a serving router
    /// uses to guess which models an item will lean on before any scheduling
    /// decision is made.
    pub fn initial_values_into(&self, item: &ItemTruth, out: &mut [f32]) {
        let state = LabelSet::new(item.universe());
        self.predictor.predict_into(&state, item, out);
    }

    /// The item's *affinity signature*: a bitmask over the zoo of the
    /// `top_k` models whose own output is most valuable on this item
    /// ([`ItemTruth::model_value`]; ties broken toward the lower model
    /// index, models with zero static value skipped — nothing schedules
    /// them first).
    ///
    /// This is the cheap per-request fingerprint a serving router keys on:
    /// no predictor forward, no labeling work, just a top-k scan of the
    /// request's precomputed value profile. In a real deployment the
    /// profile would come from a lightweight scene classifier; in this
    /// reproduction the simulated request *is* its ground truth, and the
    /// static per-model values (the same knowledge the paper's "optimal
    /// policy" baseline sorts by) play that role. Crucially it is
    /// **item-discriminative even under the deployable state-only DRL
    /// predictor**, whose empty-state scores are identical for every item.
    ///
    /// Requests with equal signatures execute largely overlapping model
    /// sets, so routing equal signatures to the same shard coalesces
    /// bigger same-model batches. The signature is a pure function of the
    /// item: routing stays deterministic.
    pub fn affinity_signature(&self, item: &ItemTruth, top_k: usize) -> u64 {
        self.affinity_value_scan(item, top_k).0
    }

    /// The affinity signature *and* the summed static value of the masked
    /// models — the same top-k scan as [`affinity_signature`], returning
    /// the value it already computed along the way.
    ///
    /// This is the serving layer's per-request **value hook**: the returned
    /// sum is a cheap prediction of how much label value the request will
    /// yield (the models that would be scheduled first, weighted by what
    /// their output is worth on this item), available at admission time
    /// with no predictor forward and no labeling work. SLO-aware shedding
    /// uses it to decide *which* request to drop when overloaded — the
    /// economics MCAL frames as minimum-cost selection — so the value
    /// estimate comes for free with routing.
    ///
    /// [`affinity_signature`]: AdaptiveModelScheduler::affinity_signature
    pub fn affinity_value_scan(&self, item: &ItemTruth, top_k: usize) -> (u64, f64) {
        let n = self.zoo.len().min(64).min(item.model_value.len());
        let mut mask = 0u64;
        let mut value = 0.0f64;
        for _ in 0..top_k.min(n) {
            let mut best: Option<(usize, f64)> = None;
            for (m, &v) in item.model_value.iter().enumerate().take(n) {
                if mask >> m & 1 == 0 && v > 0.0 && best.map(|(_, bv)| v > bv).unwrap_or(true) {
                    best = Some((m, v));
                }
            }
            let Some((m, v)) = best else { break };
            mask |= 1 << m;
            value += v;
        }
        (mask, value)
    }

    /// The item's full [`Fingerprint`]: affinity signature + value estimate
    /// from one top-k scan, plus the full-content hash. This is the single
    /// per-request scan the serving front-end performs — routing, admission
    /// pricing, and the content-addressed result cache all key off the one
    /// returned struct, so the top-k scan runs exactly once per request.
    pub fn fingerprint(&self, item: &ItemTruth, top_k: usize) -> Fingerprint {
        let (signature, value) = self.affinity_value_scan(item, top_k);
        Fingerprint {
            signature,
            value,
            content: content_hash(item),
        }
    }

    /// Label a scene: simulates model execution on demand, then schedules.
    pub fn label_scene(&self, scene: &Scene, budget: Budget) -> LabelingOutcome {
        // The truth row for the scene *is* the set of all model outputs —
        // exactly what executing models on the item would yield. Built
        // directly: no scene clone, no one-element dataset or table.
        let item = ams_data::ItemTruth::build(
            &self.zoo,
            &self.catalog,
            scene,
            self.world_seed,
            self.value_threshold,
        );
        self.label_item(&item, budget)
    }

    /// Label a pre-executed ground-truth item under `budget`.
    pub fn label_item(&self, item: &ItemTruth, budget: Budget) -> LabelingOutcome {
        self.label_item_with(self.predictor.as_ref(), item, budget)
    }

    /// Label an item under `budget`, scoring models with a caller-supplied
    /// predictor instead of the framework's own.
    ///
    /// This is the hook online adaptation serves through: each worker pins
    /// a [`SnapshotPredictor`](crate::predictor::SnapshotPredictor) to one
    /// weight generation per batch and labels through it, so a concurrent
    /// hot-swap never tears an in-flight prediction. With
    /// `self.predictor()` as the argument this is exactly
    /// [`label_item`](AdaptiveModelScheduler::label_item).
    pub fn label_item_with(
        &self,
        predictor: &dyn ValuePredictor,
        item: &ItemTruth,
        budget: Budget,
    ) -> LabelingOutcome {
        match budget {
            Budget::Unconstrained => self.label_unconstrained(predictor, item),
            Budget::Deadline { ms } => {
                let r = schedule_deadline(predictor, &self.zoo, item, ms, self.value_threshold);
                self.outcome(item, r.executed, r.value, r.recall, r.elapsed_ms)
            }
            Budget::DeadlineMemory { ms, mem_mb } => {
                let r = schedule_deadline_memory(
                    predictor,
                    &self.zoo,
                    item,
                    ms,
                    mem_mb,
                    self.value_threshold,
                );
                let elapsed = r.trace.makespan_ms().min(ms);
                self.outcome(item, r.completed, r.value, r.recall, elapsed)
            }
        }
    }

    /// Greedy by predicted value until no unexecuted model has positive
    /// predicted value (the "no resource constraint" mode of §V).
    fn label_unconstrained(
        &self,
        predictor: &dyn ValuePredictor,
        item: &ItemTruth,
    ) -> LabelingOutcome {
        let n = self.zoo.len();
        let mut state = LabelSet::new(item.universe());
        let mut executed = Vec::new();
        let mut mask = 0u64;
        let mut value = 0.0;
        let mut elapsed = 0u64;
        let mut q = vec![0.0f32; n];
        while executed.len() < n {
            predictor.predict_into(&state, item, &mut q);
            let mut best: Option<(usize, f32)> = None;
            for (m, &v) in q.iter().enumerate() {
                if mask >> m & 1 == 0 && best.map(|(_, bv)| v > bv).unwrap_or(true) {
                    best = Some((m, v));
                }
            }
            let Some((m, v)) = best else { break };
            if v <= 0.0 {
                break; // nothing left worth running
            }
            let id = ModelId(m as u8);
            mask |= 1 << m;
            executed.push(id);
            elapsed += u64::from(self.zoo.spec(id).time_ms);
            value += item.apply(&mut state, id, self.value_threshold);
        }
        let recall = if item.total_value > 0.0 {
            value / item.total_value
        } else {
            1.0
        };
        self.outcome(item, executed, value, recall, elapsed)
    }

    fn outcome(
        &self,
        item: &ItemTruth,
        executed: Vec<ModelId>,
        value: f64,
        recall: f64,
        elapsed_ms: u64,
    ) -> LabelingOutcome {
        // Collect the labels the executed set produced (max conf per label).
        let mut labels: Vec<(LabelId, f32)> = Vec::new();
        for &m in &executed {
            for d in item.output(m).valuable(self.value_threshold) {
                match labels.binary_search_by_key(&d.label, |&(l, _)| l) {
                    Ok(i) => labels[i].1 = labels[i].1.max(d.confidence),
                    Err(i) => labels.insert(i, (d.label, d.confidence)),
                }
            }
        }
        LabelingOutcome {
            labels,
            executed,
            value,
            recall,
            elapsed_ms,
        }
    }

    /// Human-readable rendering of an outcome (used by examples).
    pub fn describe(&self, outcome: &LabelingOutcome) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "executed {} models in {:.2}s (recall {:.1}%, value {:.2}):",
            outcome.executed.len(),
            outcome.elapsed_ms as f64 / 1000.0,
            outcome.recall * 100.0,
            outcome.value,
        );
        for &m in &outcome.executed {
            let _ = writeln!(s, "  - {}", self.zoo.spec(m).name);
        }
        let _ = writeln!(s, "labels:");
        for &(l, c) in &outcome.labels {
            let _ = writeln!(s, "  {} ({c:.2})", self.catalog.name(l));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::OraclePredictor;
    use ams_data::{Dataset, DatasetProfile};

    fn scheduler() -> AdaptiveModelScheduler {
        let zoo = ModelZoo::standard();
        let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
        AdaptiveModelScheduler::new(zoo, predictor, 0.5, 7)
    }

    fn one_scene() -> Scene {
        Dataset::generate(DatasetProfile::Coco2017, 3, 7)
            .scenes
            .remove(1)
    }

    #[test]
    fn unconstrained_oracle_full_recall() {
        let s = scheduler();
        let out = s.label_scene(&one_scene(), Budget::Unconstrained);
        assert!(
            (out.recall - 1.0).abs() < 1e-9,
            "oracle unconstrained recalls all"
        );
        // and it should have skipped worthless models
        assert!(
            out.executed.len() < 30,
            "executed {} models",
            out.executed.len()
        );
    }

    #[test]
    fn deadline_budget_respected() {
        let s = scheduler();
        let out = s.label_scene(&one_scene(), Budget::Deadline { ms: 600 });
        assert!(out.elapsed_ms <= 600);
        assert!(out.recall <= 1.0);
    }

    #[test]
    fn deadline_memory_budget_runs() {
        let s = scheduler();
        let out = s.label_scene(
            &one_scene(),
            Budget::DeadlineMemory {
                ms: 800,
                mem_mb: 12288,
            },
        );
        assert!(out.elapsed_ms <= 800);
        assert!(!out.labels.is_empty() || out.recall == 1.0);
    }

    #[test]
    fn labels_are_sorted_and_valuable() {
        let s = scheduler();
        let out = s.label_scene(&one_scene(), Budget::Unconstrained);
        for w in out.labels.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
        assert!(out.labels.iter().all(|&(_, c)| c >= 0.5));
    }

    #[test]
    fn describe_mentions_models_and_labels() {
        let s = scheduler();
        let out = s.label_scene(&one_scene(), Budget::Unconstrained);
        let text = s.describe(&out);
        assert!(text.contains("executed"));
        assert!(text.contains("labels:"));
    }

    #[test]
    fn affinity_signature_is_stable_and_bounded() {
        let s = scheduler();
        let scenes = Dataset::generate(DatasetProfile::Coco2017, 6, 7).scenes;
        for scene in &scenes {
            let item = ams_data::ItemTruth::build(s.zoo(), s.catalog(), scene, 7, 0.5);
            let sig = s.affinity_signature(&item, 4);
            assert_eq!(sig, s.affinity_signature(&item, 4), "deterministic");
            assert!(sig.count_ones() <= 4, "at most top_k bits");
            // Signature bits point at real models.
            assert_eq!(sig >> s.zoo().len(), 0, "bits within the zoo");
        }
        // top_k = 0 yields the empty signature.
        let item = ams_data::ItemTruth::build(s.zoo(), s.catalog(), &scenes[0], 7, 0.5);
        assert_eq!(s.affinity_signature(&item, 0), 0);
    }

    #[test]
    fn affinity_signature_tracks_the_items_best_models() {
        // The single-bit signature is exactly the model with the highest
        // static output value on the item.
        let s = scheduler();
        let scene = one_scene();
        let item = ams_data::ItemTruth::build(s.zoo(), s.catalog(), &scene, 7, 0.5);
        let best = item
            .model_value
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(b.0.cmp(&a.0)))
            .map(|(m, _)| m)
            .unwrap();
        let sig = s.affinity_signature(&item, 1);
        assert_eq!(sig, 1 << best);
        // Larger top_k only adds bits.
        let sig4 = s.affinity_signature(&item, 4);
        assert_eq!(sig4 & sig, sig, "top-1 remains in top-4");
        // The predictor-introspection hook stays coherent: initial oracle
        // values are the marginal values on the empty state.
        let mut q = vec![0.0f32; s.zoo().len()];
        s.initial_values_into(&item, &mut q);
        let state = LabelSet::new(item.universe());
        for (m, &got) in q.iter().enumerate() {
            let want = item.marginal_value(&state, ModelId(m as u8), 0.5) as f32;
            assert!((got - want).abs() < 1e-6, "model {m}");
        }
    }

    #[test]
    fn affinity_value_scan_sums_the_masked_models() {
        let s = scheduler();
        let scenes = Dataset::generate(DatasetProfile::Coco2017, 6, 7).scenes;
        for scene in &scenes {
            let item = ams_data::ItemTruth::build(s.zoo(), s.catalog(), scene, 7, 0.5);
            for top_k in [0usize, 1, 2, 4] {
                let (sig, value) = s.affinity_value_scan(&item, top_k);
                assert_eq!(sig, s.affinity_signature(&item, top_k), "same scan");
                let want: f64 = item
                    .model_value
                    .iter()
                    .enumerate()
                    .filter(|&(m, _)| sig >> m & 1 == 1)
                    .map(|(_, &v)| v)
                    .sum();
                assert!((value - want).abs() < 1e-12, "top_k={top_k}");
                // Value only grows with k, and is 0 iff the mask is empty.
                assert_eq!(value == 0.0, sig == 0);
            }
        }
        // A zero-value profile yields an empty signature and zero value.
        let mut flat = ams_data::ItemTruth::build(s.zoo(), s.catalog(), &scenes[0], 7, 0.5);
        flat.model_value.iter_mut().for_each(|v| *v = 0.0);
        assert_eq!(s.affinity_value_scan(&flat, 4), (0, 0.0));
    }

    #[test]
    fn fingerprint_extends_the_scan_with_a_content_hash() {
        let s = scheduler();
        let scenes = Dataset::generate(DatasetProfile::Coco2017, 6, 7).scenes;
        for scene in &scenes {
            let item = ams_data::ItemTruth::build(s.zoo(), s.catalog(), scene, 7, 0.5);
            let fp = s.fingerprint(&item, 2);
            let (sig, value) = s.affinity_value_scan(&item, 2);
            assert_eq!(fp.signature, sig, "same top-k scan");
            assert!((fp.value - value).abs() < 1e-12);
            assert_eq!(fp.content, content_hash(&item), "content hash attached");
            assert_eq!(fp, s.fingerprint(&item, 2), "deterministic");
            // An identical rebuild of the same scene hashes identically —
            // the property the result cache relies on for exact hits.
            let again = ams_data::ItemTruth::build(s.zoo(), s.catalog(), scene, 7, 0.5);
            assert_eq!(content_hash(&again), fp.content);
        }
    }

    #[test]
    fn content_hash_separates_items_the_signature_conflates() {
        let s = scheduler();
        let scenes = Dataset::generate(DatasetProfile::Coco2017, 24, 7).scenes;
        let items: Vec<_> = scenes
            .iter()
            .map(|sc| ams_data::ItemTruth::build(s.zoo(), s.catalog(), sc, 7, 0.5))
            .collect();
        // Distinct items never share a content hash (24 items, 64-bit
        // hash: a collision here would be a hash bug, not bad luck)...
        for (i, a) in items.iter().enumerate() {
            for b in items.iter().skip(i + 1) {
                assert_ne!(content_hash(a), content_hash(b));
            }
        }
        // ...while the coarse top-k signature does conflate some of them —
        // that's the gap the full-content hash closes.
        let mut sigs: Vec<u64> = items.iter().map(|it| s.affinity_signature(it, 1)).collect();
        sigs.sort_unstable();
        sigs.dedup();
        assert!(sigs.len() < items.len(), "top-1 signatures cluster");
        // Any content perturbation moves the hash: value profile, valuable
        // labels, and raw detections are all covered.
        let base = &items[0];
        let mut tweaked = base.clone();
        tweaked.model_value[0] += 1.0;
        assert_ne!(content_hash(base), content_hash(&tweaked));
        let mut tweaked = base.clone();
        tweaked.total_value += 1.0;
        assert_ne!(content_hash(base), content_hash(&tweaked));
        let mut tweaked = base.clone();
        tweaked.scene_id ^= 1;
        assert_ne!(content_hash(base), content_hash(&tweaked));
    }

    #[test]
    fn label_item_with_own_predictor_equals_label_item() {
        let s = scheduler();
        let items: Vec<_> = Dataset::generate(DatasetProfile::Coco2017, 5, 7)
            .scenes
            .iter()
            .map(|sc| ams_data::ItemTruth::build(s.zoo(), s.catalog(), sc, 7, 0.5))
            .collect();
        for budget in [
            Budget::Unconstrained,
            Budget::Deadline { ms: 700 },
            Budget::DeadlineMemory {
                ms: 700,
                mem_mb: 12288,
            },
        ] {
            for item in &items {
                let a = s.label_item(item, budget);
                let b = s.label_item_with(s.predictor(), item, budget);
                assert_eq!(a.labels, b.labels);
                assert_eq!(a.executed, b.executed);
                assert_eq!(a.value, b.value);
                assert_eq!(a.elapsed_ms, b.elapsed_ms);
            }
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn size_mismatch_rejected() {
        let zoo = ModelZoo::standard();
        let predictor = Box::new(OraclePredictor::new(5, 0.5));
        let _ = AdaptiveModelScheduler::new(zoo, predictor, 0.5, 7);
    }
}
