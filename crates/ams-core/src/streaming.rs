//! Stream processing: run the framework over a continuous item stream with
//! running statistics — the deployment shape the paper's motivating
//! applications (image-retrieval ingestion, album indexing, surveillance)
//! actually use.

use crate::framework::{AdaptiveModelScheduler, Budget, LabelingOutcome};
use ams_data::ItemTruth;
use ams_models::ModelId;
use serde::{Deserialize, Serialize};

/// Running statistics over a processed stream.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamStats {
    /// Items processed.
    pub items: usize,
    /// Total virtual execution time, ms.
    pub total_exec_ms: u64,
    /// Total model executions.
    pub total_executions: usize,
    /// Sum of per-item recalls (divide by `items` for the mean).
    pub recall_sum: f64,
    /// Total label value recalled.
    pub value_sum: f64,
    /// Executions per model (utilization profile).
    pub per_model_runs: Vec<u64>,
    /// Items whose recall fell below the alert threshold.
    pub low_recall_items: usize,
}

impl StreamStats {
    /// Mean recall across processed items (1.0 when empty).
    pub fn mean_recall(&self) -> f64 {
        if self.items == 0 {
            1.0
        } else {
            self.recall_sum / self.items as f64
        }
    }

    /// Mean virtual execution seconds per item.
    pub fn mean_time_s(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.total_exec_ms as f64 / 1000.0 / self.items as f64
        }
    }

    /// Mean executed models per item.
    pub fn mean_models(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.total_executions as f64 / self.items as f64
        }
    }

    /// Model ids sorted by how often they ran, most-used first.
    pub fn utilization_ranking(&self) -> Vec<(ModelId, u64)> {
        let mut v: Vec<(ModelId, u64)> = self
            .per_model_runs
            .iter()
            .enumerate()
            .map(|(i, &n)| (ModelId(i as u8), n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// A stream processor: an [`AdaptiveModelScheduler`] plus a fixed budget and
/// running statistics.
pub struct StreamProcessor {
    scheduler: AdaptiveModelScheduler,
    budget: Budget,
    stats: StreamStats,
    /// Items below this recall increment [`StreamStats::low_recall_items`].
    pub alert_recall: f64,
}

impl StreamProcessor {
    /// Wrap a scheduler with a per-item budget.
    pub fn new(scheduler: AdaptiveModelScheduler, budget: Budget) -> Self {
        let n = scheduler.zoo().len();
        Self {
            scheduler,
            budget,
            stats: StreamStats { per_model_runs: vec![0; n], ..Default::default() },
            alert_recall: 0.5,
        }
    }

    /// The underlying scheduler.
    pub fn scheduler(&self) -> &AdaptiveModelScheduler {
        &self.scheduler
    }

    /// Process one item; returns the labeling outcome.
    pub fn process(&mut self, item: &ItemTruth) -> LabelingOutcome {
        let outcome = self.scheduler.label_item(item, self.budget);
        self.stats.items += 1;
        self.stats.total_exec_ms += outcome.elapsed_ms;
        self.stats.total_executions += outcome.executed.len();
        self.stats.recall_sum += outcome.recall;
        self.stats.value_sum += outcome.value;
        for &m in &outcome.executed {
            self.stats.per_model_runs[m.index()] += 1;
        }
        if outcome.recall < self.alert_recall {
            self.stats.low_recall_items += 1;
        }
        outcome
    }

    /// Process a batch of items, returning only the stats delta is not
    /// needed — the running [`StreamProcessor::stats`] aggregates.
    pub fn process_all<'a>(&mut self, items: impl IntoIterator<Item = &'a ItemTruth>) {
        for item in items {
            self.process(item);
        }
    }

    /// The running statistics.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Reset statistics (keeps the scheduler and budget).
    pub fn reset_stats(&mut self) {
        let n = self.scheduler.zoo().len();
        self.stats = StreamStats { per_model_runs: vec![0; n], ..Default::default() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::OraclePredictor;
    use ams_data::{Dataset, DatasetProfile, TruthTable};
    use ams_models::ModelZoo;

    fn processor(budget: Budget) -> (StreamProcessor, TruthTable) {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 30, 64);
        let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
        let scheduler = AdaptiveModelScheduler::new(zoo, predictor, 0.5, 64);
        (StreamProcessor::new(scheduler, budget), truth)
    }

    #[test]
    fn stats_accumulate_consistently() {
        let (mut proc, truth) = processor(Budget::Deadline { ms: 1000 });
        proc.process_all(truth.items());
        let s = proc.stats();
        assert_eq!(s.items, 30);
        assert!(s.mean_recall() > 0.0 && s.mean_recall() <= 1.0);
        assert!(s.mean_time_s() <= 1.0, "per-item deadline respected on average");
        let runs: u64 = s.per_model_runs.iter().sum();
        assert_eq!(runs as usize, s.total_executions);
        assert!((s.mean_models() - s.total_executions as f64 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_ranking_is_sorted() {
        let (mut proc, truth) = processor(Budget::Deadline { ms: 800 });
        proc.process_all(truth.items().iter().take(15));
        let ranking = proc.stats().utilization_ranking();
        assert_eq!(ranking.len(), 30);
        for w in ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn low_recall_alerts_fire_under_starved_budget() {
        let (mut proc, truth) = processor(Budget::Deadline { ms: 60 });
        proc.process_all(truth.items());
        assert!(
            proc.stats().low_recall_items > 0,
            "a 60ms budget must starve most items below 50% recall"
        );
    }

    #[test]
    fn reset_clears_counters() {
        let (mut proc, truth) = processor(Budget::Unconstrained);
        proc.process(truth.item(0));
        assert_eq!(proc.stats().items, 1);
        proc.reset_stats();
        assert_eq!(proc.stats().items, 0);
        assert_eq!(proc.stats().total_executions, 0);
        assert!(proc.stats().per_model_runs.iter().all(|&n| n == 0));
    }
}
