//! Stream processing: run the framework over a continuous item stream with
//! running statistics — the deployment shape the paper's motivating
//! applications (image-retrieval ingestion, album indexing, surveillance)
//! actually use.

use crate::framework::{AdaptiveModelScheduler, Budget, LabelingOutcome};
use ams_data::ItemTruth;
use ams_models::ModelId;
use serde::{Deserialize, Serialize};

/// Running statistics over a processed stream.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamStats {
    /// Items processed.
    pub items: usize,
    /// Total virtual execution time, ms.
    pub total_exec_ms: u64,
    /// Total model executions.
    pub total_executions: usize,
    /// Sum of per-item recalls (divide by `items` for the mean).
    pub recall_sum: f64,
    /// Total label value recalled.
    pub value_sum: f64,
    /// Executions per model (utilization profile).
    pub per_model_runs: Vec<u64>,
    /// Items whose recall fell below the alert threshold.
    pub low_recall_items: usize,
}

impl StreamStats {
    /// Empty statistics sized for a zoo of `num_models` models — the
    /// constructor shard collectors (workers, serving front-ends) use so
    /// their [`StreamStats::merge`] results line up with the zoo.
    pub fn with_models(num_models: usize) -> Self {
        Self {
            per_model_runs: vec![0; num_models],
            ..Default::default()
        }
    }

    /// Mean recall across processed items (1.0 when empty).
    pub fn mean_recall(&self) -> f64 {
        if self.items == 0 {
            1.0
        } else {
            self.recall_sum / self.items as f64
        }
    }

    /// Mean virtual execution seconds per item.
    pub fn mean_time_s(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.total_exec_ms as f64 / 1000.0 / self.items as f64
        }
    }

    /// Mean executed models per item.
    pub fn mean_models(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.total_executions as f64 / self.items as f64
        }
    }

    /// Fold one labeling outcome into the statistics.
    pub fn absorb(&mut self, outcome: &LabelingOutcome, alert_recall: f64) {
        self.items += 1;
        self.total_exec_ms += outcome.elapsed_ms;
        self.total_executions += outcome.executed.len();
        self.recall_sum += outcome.recall;
        self.value_sum += outcome.value;
        for &m in &outcome.executed {
            self.per_model_runs[m.index()] += 1;
        }
        if outcome.recall < alert_recall {
            self.low_recall_items += 1;
        }
    }

    /// Merge another shard's statistics into this one. Every field is an
    /// order-independent sum, so merging per-worker shards yields exactly
    /// the stats a serial pass over the same items produces.
    pub fn merge(&mut self, other: &StreamStats) {
        self.items += other.items;
        self.total_exec_ms += other.total_exec_ms;
        self.total_executions += other.total_executions;
        self.recall_sum += other.recall_sum;
        self.value_sum += other.value_sum;
        if self.per_model_runs.len() < other.per_model_runs.len() {
            self.per_model_runs.resize(other.per_model_runs.len(), 0);
        }
        for (a, &b) in self.per_model_runs.iter_mut().zip(&other.per_model_runs) {
            *a += b;
        }
        self.low_recall_items += other.low_recall_items;
    }

    /// Model ids sorted by how often they ran, most-used first.
    pub fn utilization_ranking(&self) -> Vec<(ModelId, u64)> {
        let mut v: Vec<(ModelId, u64)> = self
            .per_model_runs
            .iter()
            .enumerate()
            .map(|(i, &n)| (ModelId(i as u8), n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

/// A stream processor: an [`AdaptiveModelScheduler`] plus a fixed budget and
/// running statistics.
pub struct StreamProcessor {
    scheduler: AdaptiveModelScheduler,
    budget: Budget,
    stats: StreamStats,
    /// Items below this recall increment [`StreamStats::low_recall_items`].
    pub alert_recall: f64,
    /// Deployment emulation: wall-clock milliseconds slept per *virtual*
    /// execution millisecond of each item (default 0 — pure simulation).
    /// In the paper's deployment the processor waits on real model
    /// executions; the virtual clock elides that wait, and this knob
    /// reintroduces it so throughput experiments see a realistic
    /// latency-bound workload.
    pub exec_emulation_scale: f64,
}

impl StreamProcessor {
    /// Wrap a scheduler with a per-item budget.
    pub fn new(scheduler: AdaptiveModelScheduler, budget: Budget) -> Self {
        let n = scheduler.zoo().len();
        Self {
            scheduler,
            budget,
            stats: StreamStats::with_models(n),
            alert_recall: 0.5,
            exec_emulation_scale: 0.0,
        }
    }

    /// The underlying scheduler.
    pub fn scheduler(&self) -> &AdaptiveModelScheduler {
        &self.scheduler
    }

    /// The per-item budget every processed item is labeled under.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Process one item; returns the labeling outcome.
    pub fn process(&mut self, item: &ItemTruth) -> LabelingOutcome {
        let outcome = self.scheduler.label_item(item, self.budget);
        emulate_execution(&outcome, self.exec_emulation_scale);
        self.stats.absorb(&outcome, self.alert_recall);
        outcome
    }

    /// Process a batch of items, returning only the stats delta is not
    /// needed — the running [`StreamProcessor::stats`] aggregates.
    pub fn process_all<'a>(&mut self, items: impl IntoIterator<Item = &'a ItemTruth>) {
        for item in items {
            self.process(item);
        }
    }

    /// The running statistics.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Reset statistics (keeps the scheduler and budget).
    pub fn reset_stats(&mut self) {
        self.stats = StreamStats::with_models(self.scheduler.zoo().len());
    }
}

/// Sleep for an item's emulated execution latency (no-op at scale 0).
fn emulate_execution(outcome: &LabelingOutcome, scale: f64) {
    if scale > 0.0 && outcome.elapsed_ms > 0 {
        let wait = outcome.elapsed_ms as f64 * scale;
        std::thread::sleep(std::time::Duration::from_secs_f64(wait / 1000.0));
    }
}

/// A multi-core stream processor: shards items across worker threads, each
/// labeling against the shared (immutable) scheduler with its own local
/// statistics, then merges the shards.
///
/// Per-item labeling is deterministic and every [`StreamStats`] field is an
/// order-independent sum, so the merged statistics are identical to what
/// the serial [`StreamProcessor`] produces over the same items — verified
/// by the property tests. Predictors keep per-worker scratch (e.g.
/// [`crate::AgentPredictor`]'s pool), so workers don't serialize on shared
/// caches.
pub struct ParallelStreamProcessor {
    scheduler: AdaptiveModelScheduler,
    budget: Budget,
    stats: StreamStats,
    /// Configured worker count; 0 means "auto" (see [`Self::auto`]).
    threads: usize,
    /// Items below this recall increment [`StreamStats::low_recall_items`].
    pub alert_recall: f64,
    /// Deployment emulation: wall-clock milliseconds slept per *virtual*
    /// execution millisecond of each item (see
    /// [`StreamProcessor::exec_emulation_scale`]). Workers overlap these
    /// waits, which is precisely the latency-hiding a deployment's
    /// parallel labeler exists for.
    pub exec_emulation_scale: f64,
}

impl ParallelStreamProcessor {
    /// Wrap a scheduler with a per-item budget, fanning work out over
    /// `threads` workers (clamped to at least 1).
    pub fn new(scheduler: AdaptiveModelScheduler, budget: Budget, threads: usize) -> Self {
        let n = scheduler.zoo().len();
        Self {
            scheduler,
            budget,
            stats: StreamStats::with_models(n),
            threads: threads.max(1),
            alert_recall: 0.5,
            exec_emulation_scale: 0.0,
        }
    }

    /// Auto-sized worker pool: the thread count is chosen per
    /// [`Self::process_all`] call from the host's core count and the
    /// workload's shape.
    ///
    /// * **Compute-bound** (`exec_emulation_scale == 0`): labeling is pure
    ///   CPU work, so more workers than cores only add scheduling overhead
    ///   — the pool sizes itself to the available parallelism and *falls
    ///   back to serial on a single-core host* (spawning threads there is
    ///   the measured own-goal `BENCH_hotpath.json` records as
    ///   `compute_stream_speedup` < 1).
    /// * **Latency-bound** (`exec_emulation_scale > 0`): workers mostly
    ///   wait on (emulated) model executions, so the pool oversubscribes
    ///   the cores to overlap those waits.
    pub fn auto(scheduler: AdaptiveModelScheduler, budget: Budget) -> Self {
        let n = scheduler.zoo().len();
        Self {
            scheduler,
            budget,
            stats: StreamStats::with_models(n),
            threads: 0,
            alert_recall: 0.5,
            exec_emulation_scale: 0.0,
        }
    }

    /// Worker count the processor fans out to. For an [`Self::auto`] pool
    /// this is the count the heuristic resolves to *right now* (it tracks
    /// `exec_emulation_scale`).
    pub fn threads(&self) -> usize {
        self.effective_threads()
    }

    /// Resolve the configured thread count, applying the auto heuristic.
    fn effective_threads(&self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if self.exec_emulation_scale > 0.0 {
            // Latency-bound: oversubscribe to overlap execution waits.
            (cores * 4).clamp(4, 32)
        } else {
            // Compute-bound: one worker per core; serial on one core.
            cores
        }
    }

    /// The underlying scheduler.
    pub fn scheduler(&self) -> &AdaptiveModelScheduler {
        &self.scheduler
    }

    /// Process a batch of items across the worker pool. At an effective
    /// thread count of 1 (e.g. an [`Self::auto`] pool on a single-core
    /// host) the items are processed inline — a true serial fallback, no
    /// thread is spawned.
    pub fn process_all(&mut self, items: &[ItemTruth]) {
        if items.is_empty() {
            return;
        }
        let threads = self.effective_threads().min(items.len());
        if threads == 1 {
            for item in items {
                let outcome = self.scheduler.label_item(item, self.budget);
                emulate_execution(&outcome, self.exec_emulation_scale);
                self.stats.absorb(&outcome, self.alert_recall);
            }
            return;
        }
        let chunk = items.len().div_ceil(threads);
        let n = self.scheduler.zoo().len();
        let scheduler = &self.scheduler;
        let budget = self.budget;
        let alert = self.alert_recall;
        let emu = self.exec_emulation_scale;
        let shards: Vec<StreamStats> = std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|part| {
                    s.spawn(move || {
                        let mut local = StreamStats::with_models(n);
                        for item in part {
                            let outcome = scheduler.label_item(item, budget);
                            emulate_execution(&outcome, emu);
                            local.absorb(&outcome, alert);
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stream worker"))
                .collect()
        });
        for shard in &shards {
            self.stats.merge(shard);
        }
    }

    /// The running statistics.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// The per-item budget every processed item is labeled under.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Reset statistics (keeps the scheduler, budget and worker count).
    pub fn reset_stats(&mut self) {
        self.stats = StreamStats::with_models(self.scheduler.zoo().len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::OraclePredictor;
    use ams_data::{Dataset, DatasetProfile, TruthTable};
    use ams_models::ModelZoo;

    fn processor(budget: Budget) -> (StreamProcessor, TruthTable) {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 30, 64);
        let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        let predictor = Box::new(OraclePredictor::new(zoo.len(), 0.5));
        let scheduler = AdaptiveModelScheduler::new(zoo, predictor, 0.5, 64);
        (StreamProcessor::new(scheduler, budget), truth)
    }

    #[test]
    fn stats_accumulate_consistently() {
        let (mut proc, truth) = processor(Budget::Deadline { ms: 1000 });
        proc.process_all(truth.items());
        let s = proc.stats();
        assert_eq!(s.items, 30);
        assert!(s.mean_recall() > 0.0 && s.mean_recall() <= 1.0);
        assert!(
            s.mean_time_s() <= 1.0,
            "per-item deadline respected on average"
        );
        let runs: u64 = s.per_model_runs.iter().sum();
        assert_eq!(runs as usize, s.total_executions);
        assert!((s.mean_models() - s.total_executions as f64 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_ranking_is_sorted() {
        let (mut proc, truth) = processor(Budget::Deadline { ms: 800 });
        proc.process_all(truth.items().iter().take(15));
        let ranking = proc.stats().utilization_ranking();
        assert_eq!(ranking.len(), 30);
        for w in ranking.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn low_recall_alerts_fire_under_starved_budget() {
        let (mut proc, truth) = processor(Budget::Deadline { ms: 60 });
        proc.process_all(truth.items());
        assert!(
            proc.stats().low_recall_items > 0,
            "a 60ms budget must starve most items below 50% recall"
        );
    }

    /// The parallel engine must produce byte-identical statistics to the
    /// serial one, at every thread count, including the degenerate ones.
    #[test]
    fn parallel_stats_match_serial_exactly() {
        let budget = Budget::Deadline { ms: 900 };
        let (mut serial, truth) = processor(budget);
        serial.process_all(truth.items());
        let want = serial.stats().clone();
        for threads in [1usize, 2, 3, 4, 7, 64] {
            let (proc_serial, _) = processor(budget);
            let (scheduler, b) = (proc_serial.scheduler, proc_serial.budget);
            let mut par = ParallelStreamProcessor::new(scheduler, b, threads);
            par.process_all(truth.items());
            let got = par.stats();
            assert_eq!(got.items, want.items, "{threads} threads");
            assert_eq!(got.total_exec_ms, want.total_exec_ms);
            assert_eq!(got.total_executions, want.total_executions);
            assert_eq!(got.per_model_runs, want.per_model_runs);
            assert_eq!(got.low_recall_items, want.low_recall_items);
            assert!(
                (got.recall_sum - want.recall_sum).abs() < 1e-9,
                "{threads} threads"
            );
            assert!((got.value_sum - want.value_sum).abs() < 1e-9);
        }
    }

    /// Same equivalence through a trained-agent predictor, whose scratch
    /// pool is the part exercised only under concurrency.
    #[test]
    fn parallel_agent_predictor_matches_serial() {
        use crate::predictor::AgentPredictor;
        use ams_rl::{train, Algo, TrainConfig};
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 24, 123);
        let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        let cfg = TrainConfig {
            episodes: 12,
            ..TrainConfig::fast_test(Algo::Dqn)
        };
        let (agent, _) = train(truth.items(), zoo.len(), &cfg);

        let budget = Budget::Deadline { ms: 700 };
        let make = |agent: ams_rl::TrainedAgent| {
            AdaptiveModelScheduler::new(
                ModelZoo::standard(),
                Box::new(AgentPredictor::new(agent)),
                0.5,
                64,
            )
        };
        let mut serial = StreamProcessor::new(make(agent.clone()), budget);
        serial.process_all(truth.items());
        let mut par = ParallelStreamProcessor::new(make(agent), budget, 4);
        par.process_all(truth.items());
        assert_eq!(par.stats().per_model_runs, serial.stats().per_model_runs);
        assert_eq!(par.stats().total_exec_ms, serial.stats().total_exec_ms);
        assert!((par.stats().recall_sum - serial.stats().recall_sum).abs() < 1e-9);
    }

    /// The auto-sized pool resolves to a live thread count for both
    /// workload shapes and still produces exactly the serial statistics.
    #[test]
    fn auto_pool_matches_serial_and_resolves_threads() {
        let budget = Budget::Deadline { ms: 900 };
        let (mut serial, truth) = processor(budget);
        serial.process_all(truth.items());

        let (proc_serial, _) = processor(budget);
        let mut auto = ParallelStreamProcessor::auto(proc_serial.scheduler, budget);
        assert!(auto.threads() >= 1, "compute-bound count resolves");
        auto.exec_emulation_scale = 1e-6;
        assert!(
            auto.threads() >= 4,
            "latency-bound workloads oversubscribe the cores"
        );
        auto.exec_emulation_scale = 0.0;
        auto.process_all(truth.items());
        assert_eq!(auto.stats().items, serial.stats().items);
        assert_eq!(auto.stats().total_exec_ms, serial.stats().total_exec_ms);
        assert_eq!(auto.stats().per_model_runs, serial.stats().per_model_runs);
        assert!((auto.stats().recall_sum - serial.stats().recall_sum).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_counters() {
        let (mut proc, truth) = processor(Budget::Unconstrained);
        proc.process(truth.item(0));
        assert_eq!(proc.stats().items, 1);
        proc.reset_stats();
        assert_eq!(proc.stats().items, 0);
        assert_eq!(proc.stats().total_executions, 0);
        assert!(proc.stats().per_model_runs.iter().all(|&n| n == 0));
    }
}
