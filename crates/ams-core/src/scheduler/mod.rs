//! The adaptive scheduling algorithms of §V.
//!
//! * [`deadline`] — Algorithm 1: single-processor, per-item deadline;
//!   cost-profit greedy on `Q(m,d) / m.time`.
//! * [`deadline_memory`] — Algorithm 2: multi-processor with a shared GPU
//!   memory pool; greedy seed on `Q/(time·mem)`, memory fill on `Q/mem`
//!   under a temporary deadline, re-plan on every completion.
//! * [`optimal_star`] — the relaxed fractional upper bound of §V-C used as
//!   the "optimal\*" baseline in Figs. 10–12.

pub mod deadline;
pub mod deadline_memory;
pub mod optimal_star;

/// Ranking score used by the greedy selections: predicted values are
/// clamped at zero (a model predicted to yield nothing should not look
/// better merely because it is slow or small), with the raw prediction and
/// cost as deterministic tie-breakers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct GreedyScore {
    /// Clamped value-per-cost ratio.
    pub ratio: f64,
    /// Raw predicted value (tie-break).
    pub raw: f64,
    /// Negated cost (tie-break: prefer cheaper).
    pub neg_cost: f64,
}

impl GreedyScore {
    pub(crate) fn new(q: f32, cost: f64) -> Self {
        let q = f64::from(q);
        Self {
            ratio: q.max(0.0) / cost.max(1e-9),
            raw: q,
            neg_cost: -cost,
        }
    }

    pub(crate) fn better_than(&self, other: &GreedyScore) -> bool {
        (self.ratio, self.raw, self.neg_cost) > (other.ratio, other.raw, other.neg_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_values_rank_by_ratio() {
        let a = GreedyScore::new(2.0, 1.0);
        let b = GreedyScore::new(3.0, 2.0);
        assert!(a.better_than(&b));
    }

    #[test]
    fn negative_values_rank_by_raw_then_cost() {
        // Both ratios clamp to 0 → fall back to raw prediction.
        let a = GreedyScore::new(-0.5, 10.0);
        let b = GreedyScore::new(-1.0, 1.0);
        assert!(a.better_than(&b), "less-bad prediction wins");
        // Equal raw → cheaper wins.
        let c = GreedyScore::new(-1.0, 1.0);
        let d = GreedyScore::new(-1.0, 5.0);
        assert!(c.better_than(&d));
    }
}
