//! Algorithm 1: model scheduling under a per-item deadline (§V-A).
//!
//! Single-processor setting: models execute serially. Each iteration
//! filters models that no longer fit the remaining budget, then picks the
//! unexecuted model maximizing `Q(m,d) / m.time` — the cost-profit greedy
//! heuristic with the DRL agent's Q value standing in for the unknown
//! profit. The labeling state is updated with the model's actual output and
//! the next iteration re-predicts.

use super::GreedyScore;
use crate::predictor::ValuePredictor;
use ams_data::ItemTruth;
use ams_models::{LabelSet, ModelId, ModelZoo};
use ams_sim::{Job, SerialExecutor};

/// Outcome of scheduling one item under a deadline.
#[derive(Debug, Clone)]
pub struct DeadlineResult {
    /// Models executed, in order.
    pub executed: Vec<ModelId>,
    /// Value recalled, `f(S, d)`.
    pub value: f64,
    /// Recall rate `f(S,d) / f(M,d)`.
    pub recall: f64,
    /// Virtual time consumed, ms.
    pub elapsed_ms: u64,
    /// Execution trace.
    pub trace: ams_sim::ExecTrace,
}

/// Run Algorithm 1 on one item.
pub fn schedule_deadline(
    predictor: &dyn ValuePredictor,
    zoo: &ModelZoo,
    item: &ItemTruth,
    budget_ms: u64,
    threshold: f32,
) -> DeadlineResult {
    let n = zoo.len();
    debug_assert_eq!(predictor.num_models(), n);
    let mut ex = SerialExecutor::new(budget_ms);
    let mut state = LabelSet::new(item.universe());
    let mut executed = Vec::new();
    let mut mask = 0u64;
    let mut value = 0.0f64;
    let mut q = vec![0.0f32; n];

    loop {
        // Line 3: filter models that don't fit the remaining budget.
        let remaining = ex.remaining_ms();
        predictor.predict_into(&state, item, &mut q);
        let mut best: Option<(usize, GreedyScore)> = None;
        #[allow(clippy::needless_range_loop)] // index pairs with the bitmask
        for m in 0..n {
            if mask >> m & 1 == 1 {
                continue;
            }
            let spec = zoo.spec(ModelId(m as u8));
            if u64::from(spec.time_ms) > remaining {
                continue;
            }
            // Line 4: argmax Q(m,d) / m.time.
            let score = GreedyScore::new(q[m], f64::from(spec.time_ms) / 1000.0);
            if best.map(|(_, s)| score.better_than(&s)).unwrap_or(true) {
                best = Some((m, score));
            }
        }
        let Some((pick, _)) = best else { break };
        let m = ModelId(pick as u8);
        let spec = zoo.spec(m);
        let ran = ex.run(Job {
            id: pick,
            time_ms: spec.time_ms,
            mem_mb: spec.mem_mb,
        });
        debug_assert!(ran, "filtered model must fit");
        mask |= 1 << pick;
        executed.push(m);
        value += item.apply(&mut state, m, threshold);
    }

    let recall = if item.total_value > 0.0 {
        value / item.total_value
    } else {
        1.0
    };
    DeadlineResult {
        executed,
        value,
        recall,
        elapsed_ms: ex.elapsed_ms(),
        trace: ex.into_trace(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{OraclePredictor, UniformPredictor};
    use ams_data::{Dataset, DatasetProfile, TruthTable};

    fn fixture() -> (ModelZoo, TruthTable) {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 30, 13);
        let t = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        (zoo, t)
    }

    #[test]
    fn respects_deadline() {
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        for budget in [100u64, 500, 1000, 3000] {
            for item in t.items().iter().take(8) {
                let r = schedule_deadline(&oracle, &zoo, item, budget, 0.5);
                assert!(
                    r.elapsed_ms <= budget,
                    "elapsed {} > budget {budget}",
                    r.elapsed_ms
                );
                let sum: u64 = r
                    .executed
                    .iter()
                    .map(|&m| u64::from(zoo.spec(m).time_ms))
                    .sum();
                assert_eq!(sum, r.elapsed_ms);
                assert!(r.trace.is_serial());
            }
        }
    }

    #[test]
    fn zero_budget_executes_nothing() {
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        let r = schedule_deadline(&oracle, &zoo, t.item(0), 0, 0.5);
        assert!(r.executed.is_empty());
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn large_budget_reaches_full_recall_with_oracle() {
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        let total: u64 = zoo.total_time_ms().into();
        for item in t.items().iter().take(8) {
            let r = schedule_deadline(&oracle, &zoo, item, total, 0.5);
            assert!(r.recall >= 1.0 - 1e-9, "recall {}", r.recall);
        }
    }

    #[test]
    fn recall_monotone_in_budget() {
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        for item in t.items().iter().take(6) {
            let mut prev = 0.0;
            for budget in [200u64, 500, 1000, 2000, 5200] {
                let r = schedule_deadline(&oracle, &zoo, item, budget, 0.5);
                assert!(
                    r.recall >= prev - 1e-9,
                    "recall must grow with budget ({} < {prev})",
                    r.recall
                );
                prev = r.recall;
            }
        }
    }

    #[test]
    fn oracle_beats_uniform_at_tight_budget() {
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        let uniform = UniformPredictor::new(30);
        let mut oracle_sum = 0.0;
        let mut uniform_sum = 0.0;
        for item in t.items() {
            oracle_sum += schedule_deadline(&oracle, &zoo, item, 500, 0.5).recall;
            uniform_sum += schedule_deadline(&uniform, &zoo, item, 500, 0.5).recall;
        }
        assert!(
            oracle_sum > uniform_sum,
            "oracle {oracle_sum:.2} must beat uniform {uniform_sum:.2} at 0.5 s"
        );
    }

    #[test]
    fn value_matches_recall_times_total() {
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        let item = t.item(0);
        let r = schedule_deadline(&oracle, &zoo, item, 1000, 0.5);
        assert!((r.value - r.recall * item.total_value).abs() < 1e-9);
    }
}
