//! Algorithm 2: model scheduling under deadline + GPU-memory constraints
//! (§V-B), in the multi-processor setting.
//!
//! Each planning iteration:
//! 1. greedily seeds with the unexecuted model maximizing
//!    `Q / (time · mem)` (value per unit resource *area*),
//! 2. sets the seed's finish time as a **temporary deadline** and fills the
//!    remaining memory with models maximizing `Q / mem` that would finish
//!    within it,
//! 3. waits until one running model completes, releases its memory, folds
//!    its output into the labeling state, and re-plans with fresh
//!    predictions.
//!
//! Models still running at the overall deadline do not contribute value
//! (their execution did not complete in time).

use super::GreedyScore;
use crate::predictor::ValuePredictor;
use ams_data::ItemTruth;
use ams_models::{LabelSet, ModelId, ModelZoo};
use ams_sim::{Job, ParallelExecutor};

/// Outcome of scheduling one item under deadline + memory constraints.
#[derive(Debug, Clone)]
pub struct DeadlineMemoryResult {
    /// Models whose execution *completed* within the deadline, in
    /// completion order.
    pub completed: Vec<ModelId>,
    /// Models admitted but still running at the deadline (no value).
    pub cut_off: Vec<ModelId>,
    /// Value recalled from completed models.
    pub value: f64,
    /// Recall rate.
    pub recall: f64,
    /// Execution trace of completed models.
    pub trace: ams_sim::ExecTrace,
    /// Peak memory observed, MB.
    pub peak_mem_mb: u32,
}

/// Run Algorithm 2 on one item.
pub fn schedule_deadline_memory(
    predictor: &dyn ValuePredictor,
    zoo: &ModelZoo,
    item: &ItemTruth,
    budget_ms: u64,
    mem_budget_mb: u32,
    threshold: f32,
) -> DeadlineMemoryResult {
    let n = zoo.len();
    debug_assert_eq!(predictor.num_models(), n);
    let mut ex = ParallelExecutor::new(mem_budget_mb);
    let mut state = LabelSet::new(item.universe());
    let mut scheduled = 0u64; // admitted (running or done)
    let mut completed = Vec::new();
    let mut value = 0.0f64;
    let mut q = vec![0.0f32; n];

    while ex.now_ms() < budget_ms {
        let now = ex.now_ms();
        predictor.predict_into(&state, item, &mut q);

        // Step 1: seed by value per resource area among models that fit the
        // free memory and can finish before the overall deadline.
        let mut seed: Option<(usize, GreedyScore)> = None;
        #[allow(clippy::needless_range_loop)] // index pairs with the bitmask
        for m in 0..n {
            if scheduled >> m & 1 == 1 {
                continue;
            }
            let spec = zoo.spec(ModelId(m as u8));
            if !ex.fits(spec.mem_mb) || now + u64::from(spec.time_ms) > budget_ms {
                continue;
            }
            let area = f64::from(spec.time_ms) / 1000.0 * f64::from(spec.mem_mb) / 1024.0;
            let score = GreedyScore::new(q[m], area);
            if seed.map(|(_, s)| score.better_than(&s)).unwrap_or(true) {
                seed = Some((m, score));
            }
        }

        if let Some((s, _)) = seed {
            let spec = zoo.spec(ModelId(s as u8));
            let temp_deadline = now + u64::from(spec.time_ms);
            ex.admit(Job {
                id: s,
                time_ms: spec.time_ms,
                mem_mb: spec.mem_mb,
            })
            .expect("seed fits by construction");
            scheduled |= 1 << s;

            // Step 2: fill remaining memory with Q/mem-greedy picks that
            // finish within the temporary deadline.
            loop {
                let mut fill: Option<(usize, GreedyScore)> = None;
                #[allow(clippy::needless_range_loop)] // index pairs with the bitmask
                for m in 0..n {
                    if scheduled >> m & 1 == 1 {
                        continue;
                    }
                    let sp = zoo.spec(ModelId(m as u8));
                    if !ex.fits(sp.mem_mb) || now + u64::from(sp.time_ms) > temp_deadline {
                        continue;
                    }
                    let score = GreedyScore::new(q[m], f64::from(sp.mem_mb) / 1024.0);
                    if fill.map(|(_, s)| score.better_than(&s)).unwrap_or(true) {
                        fill = Some((m, score));
                    }
                }
                let Some((f, _)) = fill else { break };
                let sp = zoo.spec(ModelId(f as u8));
                ex.admit(Job {
                    id: f,
                    time_ms: sp.time_ms,
                    mem_mb: sp.mem_mb,
                })
                .expect("fill fits by construction");
                scheduled |= 1 << f;
            }
        } else if ex.running_count() == 0 {
            // Nothing runnable and nothing running: done.
            break;
        }

        // Step 3: wait for one completion and fold in its output.
        let Some(done) = ex.wait_next() else { break };
        if ex.now_ms() <= budget_ms {
            let m = ModelId(done.id as u8);
            completed.push(m);
            value += item.apply(&mut state, m, threshold);
        }
    }

    // Anything still in flight at the deadline produced no value.
    let peak = ex.trace().peak_mem_mb();
    let mut cut_off = Vec::new();
    let mut drained = ex;
    for job in drained.drain() {
        cut_off.push(ModelId(job.id as u8));
    }
    let trace = drained.into_trace();
    let peak_mem_mb = peak.max(trace.peak_mem_mb());

    let recall = if item.total_value > 0.0 {
        value / item.total_value
    } else {
        1.0
    };
    DeadlineMemoryResult {
        completed,
        cut_off,
        value,
        recall,
        trace,
        peak_mem_mb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{OraclePredictor, UniformPredictor};
    use ams_data::{Dataset, DatasetProfile, TruthTable};

    fn fixture() -> (ModelZoo, TruthTable) {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::PascalVoc2012, 24, 17);
        let t = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        (zoo, t)
    }

    #[test]
    fn respects_memory_budget() {
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        for mem in [8192u32, 12288, 16384] {
            for item in t.items().iter().take(6) {
                let r = schedule_deadline_memory(&oracle, &zoo, item, 800, mem, 0.5);
                assert!(
                    r.peak_mem_mb <= mem,
                    "peak {} exceeds budget {mem}",
                    r.peak_mem_mb
                );
                assert!(r.trace.respects_memory(mem));
            }
        }
    }

    #[test]
    fn completed_models_finish_within_deadline() {
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        let budget = 800u64;
        for item in t.items().iter().take(6) {
            let r = schedule_deadline_memory(&oracle, &zoo, item, budget, 12288, 0.5);
            let completed: std::collections::HashSet<usize> =
                r.completed.iter().map(|m| m.index()).collect();
            for span in &r.trace.spans {
                if completed.contains(&span.job) {
                    assert!(span.end_ms <= budget, "completed job past deadline");
                }
            }
            // no model appears in both lists
            for m in &r.cut_off {
                assert!(!completed.contains(&m.index()));
            }
        }
    }

    #[test]
    fn parallelism_beats_serial_at_same_deadline() {
        // With 16 GB the pool can run several models at once, so recall at a
        // tight deadline should beat Algorithm 1's serial recall.
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        let mut par = 0.0;
        let mut ser = 0.0;
        for item in t.items() {
            par += schedule_deadline_memory(&oracle, &zoo, item, 800, 16384, 0.5).recall;
            ser +=
                crate::scheduler::deadline::schedule_deadline(&oracle, &zoo, item, 800, 0.5).recall;
        }
        assert!(par > ser, "parallel {par:.2} must beat serial {ser:.2}");
    }

    #[test]
    fn more_memory_never_hurts_much() {
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        let mut lo = 0.0;
        let mut hi = 0.0;
        for item in t.items() {
            lo += schedule_deadline_memory(&oracle, &zoo, item, 800, 8192, 0.5).recall;
            hi += schedule_deadline_memory(&oracle, &zoo, item, 800, 16384, 0.5).recall;
        }
        assert!(
            hi >= lo * 0.98,
            "16 GB ({hi:.2}) should not lose to 8 GB ({lo:.2})"
        );
    }

    #[test]
    fn zero_budget_completes_nothing() {
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        let r = schedule_deadline_memory(&oracle, &zoo, t.item(0), 0, 16384, 0.5);
        assert!(r.completed.is_empty());
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn no_duplicate_admissions() {
        let (zoo, t) = fixture();
        let uniform = UniformPredictor::new(30);
        for item in t.items().iter().take(6) {
            let r = schedule_deadline_memory(&uniform, &zoo, item, 3000, 16384, 0.5);
            let mut seen = std::collections::HashSet::new();
            for m in r.completed.iter().chain(&r.cut_off) {
                assert!(seen.insert(*m), "model {m} admitted twice");
            }
        }
    }

    #[test]
    fn tiny_memory_budget_still_progresses() {
        // Even at 8 GB only the pose flagship fills the whole pool; the
        // scheduler must still run models one at a time.
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        let r = schedule_deadline_memory(&oracle, &zoo, t.item(1), 2000, 8192, 0.5);
        assert!(!r.completed.is_empty(), "some models must complete");
    }
}
