//! The optimal\* relaxed upper bound of §V-C.
//!
//! Exact optimal scheduling is NP-hard (it would require enumerating
//! `O(|M|!)` policies), so the paper relaxes the problem: a model may be
//! selected even when the remaining budget cannot finish it, contributing a
//! *proportional fraction* of its value. The relaxed optimum is then the
//! fractional-knapsack greedy on the true marginal value per unit cost —
//! an upper bound on the exact optimum and the denominator of the
//! performance-ratio plots (Figs. 10d and 11d).

use ams_data::ItemTruth;
use ams_models::{LabelSet, ModelId, ModelZoo};

/// Fractional greedy under a time budget: value per `m.time`, proportional
/// credit for the model straddling the deadline. Returns the (relaxed)
/// recalled value.
pub fn optimal_star_deadline(
    zoo: &ModelZoo,
    item: &ItemTruth,
    budget_ms: u64,
    threshold: f32,
) -> f64 {
    fractional_greedy(
        zoo,
        item,
        f64::from(u32::try_from(budget_ms.min(u64::from(u32::MAX))).unwrap_or(u32::MAX)),
        threshold,
        |spec| f64::from(spec.time_ms),
    )
}

/// Fractional greedy under a time × memory *area* budget: value per
/// `m.time · m.mem`, proportional credit for the straddler. The area
/// capacity is `B_time · B_mem`, the natural relaxation of the
/// two-dimensional orthogonal packing constraint.
pub fn optimal_star_deadline_memory(
    zoo: &ModelZoo,
    item: &ItemTruth,
    budget_ms: u64,
    mem_budget_mb: u32,
    threshold: f32,
) -> f64 {
    let area = budget_ms as f64 * f64::from(mem_budget_mb);
    fractional_greedy(zoo, item, area, threshold, |spec| {
        f64::from(spec.time_ms) * f64::from(spec.mem_mb)
    })
}

/// Shared fractional-knapsack greedy: repeatedly pick the unexecuted model
/// with the highest true-marginal-value-to-cost ratio; the final pick that
/// exceeds the remaining capacity contributes proportionally.
fn fractional_greedy(
    zoo: &ModelZoo,
    item: &ItemTruth,
    mut capacity: f64,
    threshold: f32,
    cost: impl Fn(&ams_models::ModelSpec) -> f64,
) -> f64 {
    let n = zoo.len();
    let mut state = LabelSet::new(item.universe());
    let mut mask = 0u64;
    let mut value = 0.0f64;

    while capacity > 0.0 {
        // Highest marginal-value density among unexecuted models.
        let mut best: Option<(usize, f64, f64)> = None; // (model, marginal, density)
        for m in 0..n {
            if mask >> m & 1 == 1 {
                continue;
            }
            let id = ModelId(m as u8);
            let marginal = item.marginal_value(&state, id, threshold);
            if marginal <= 0.0 {
                continue;
            }
            let c = cost(zoo.spec(id)).max(1e-9);
            let density = marginal / c;
            if best.map(|(_, _, d)| density > d).unwrap_or(true) {
                best = Some((m, marginal, density));
            }
        }
        let Some((m, marginal, _)) = best else { break };
        let id = ModelId(m as u8);
        let c = cost(zoo.spec(id));
        mask |= 1 << m;
        if c <= capacity {
            capacity -= c;
            value += marginal;
            item.apply(&mut state, id, threshold);
        } else {
            // Relaxation: proportional credit for the straddling model.
            value += marginal * capacity / c;
            break;
        }
    }
    value
}

/// Recall-rate convenience wrappers.
pub mod recall {
    use super::*;

    /// Optimal\* recall under a deadline.
    pub fn deadline(zoo: &ModelZoo, item: &ItemTruth, budget_ms: u64, threshold: f32) -> f64 {
        if item.total_value <= 0.0 {
            return 1.0;
        }
        (optimal_star_deadline(zoo, item, budget_ms, threshold) / item.total_value).min(1.0)
    }

    /// Optimal\* recall under deadline + memory.
    pub fn deadline_memory(
        zoo: &ModelZoo,
        item: &ItemTruth,
        budget_ms: u64,
        mem_budget_mb: u32,
        threshold: f32,
    ) -> f64 {
        if item.total_value <= 0.0 {
            return 1.0;
        }
        (optimal_star_deadline_memory(zoo, item, budget_ms, mem_budget_mb, threshold)
            / item.total_value)
            .min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::OraclePredictor;
    use crate::scheduler::deadline::schedule_deadline;
    use ams_data::{Dataset, DatasetProfile, TruthTable};

    fn fixture() -> (ModelZoo, TruthTable) {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::MirFlickr25, 24, 29);
        let t = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        (zoo, t)
    }

    #[test]
    fn upper_bounds_the_oracle_scheduler() {
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        for item in t.items() {
            for budget in [300u64, 800, 2000] {
                let exact = schedule_deadline(&oracle, &zoo, item, budget, 0.5).value;
                let star = optimal_star_deadline(
                    zoo.specs().first().map(|_| &zoo).unwrap(),
                    item,
                    budget,
                    0.5,
                );
                assert!(
                    star >= exact - 1e-9,
                    "optimal* {star:.3} must bound the integral schedule {exact:.3} (budget {budget})"
                );
            }
        }
    }

    #[test]
    fn full_budget_recalls_everything() {
        let (zoo, t) = fixture();
        let full: u64 = zoo.total_time_ms().into();
        for item in t.items().iter().take(8) {
            let v = optimal_star_deadline(&zoo, item, full, 0.5);
            assert!((v - item.total_value).abs() < 1e-9);
            assert!((recall::deadline(&zoo, item, full, 0.5) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn monotone_in_budget() {
        let (zoo, t) = fixture();
        for item in t.items().iter().take(8) {
            let mut prev = 0.0;
            for b in (0..=5000).step_by(250) {
                let v = optimal_star_deadline(&zoo, item, b, 0.5);
                assert!(v >= prev - 1e-9);
                prev = v;
            }
        }
    }

    #[test]
    fn fractional_credit_is_continuous() {
        // Value at budget b and b+1 must differ by at most the densest
        // model's per-ms density — no jumps.
        let (zoo, t) = fixture();
        let item = t.item(0);
        let mut prev = optimal_star_deadline(&zoo, item, 0, 0.5);
        for b in 1..200u64 {
            let v = optimal_star_deadline(&zoo, item, b, 0.5);
            assert!(v - prev < 0.5, "jump of {} at budget {b}", v - prev);
            prev = v;
        }
    }

    #[test]
    fn memory_variant_bounds_memory_scheduler() {
        use crate::scheduler::deadline_memory::schedule_deadline_memory;
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        for item in t.items().iter().take(10) {
            for mem in [8192u32, 16384] {
                let exact = schedule_deadline_memory(&oracle, &zoo, item, 800, mem, 0.5).value;
                let star = optimal_star_deadline_memory(&zoo, item, 800, mem, 0.5);
                assert!(
                    star >= exact - 1e-9,
                    "star {star:.3} vs exact {exact:.3} at {mem} MB"
                );
            }
        }
    }

    #[test]
    fn recall_wrappers_clamp_to_one() {
        let (zoo, t) = fixture();
        let item = t.item(0);
        let r = recall::deadline_memory(&zoo, item, 100_000, 1_000_000, 0.5);
        assert!((0.99..=1.0).contains(&r));
    }
}
