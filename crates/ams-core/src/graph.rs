//! The model-relationship graph (§VIII future work).
//!
//! The paper's conclusion proposes constructing an explicit graph of
//! semantic relationships among models' labeling capacities. This module
//! builds one from a training split of the ground truth: for every
//! (trigger label, model) pair it estimates
//!
//! ```text
//! lift(l → m) = P(m valuable | l recalled) / P(m valuable)
//! ```
//!
//! The graph serves two purposes: (1) a human-inspectable artifact
//! (exportable as Graphviz dot) showing what the dependencies look like,
//! and (2) a lightweight statistical [`ValuePredictor`] — a non-learned
//! comparator that sits between handcrafted rules and the DRL agent.

use crate::predictor::ValuePredictor;
use ams_data::ItemTruth;
use ams_models::{LabelCatalog, LabelId, LabelSet, ModelId};

/// Conditional-probability statistics from a train split.
#[derive(Debug, Clone)]
pub struct ModelRelationGraph {
    num_models: usize,
    num_labels: usize,
    /// `p_valuable[m]`: prior probability model `m` yields valuable output.
    p_valuable: Vec<f64>,
    /// `p_joint[l * num_models + m]`: P(label l present AND m valuable).
    p_joint: Vec<f64>,
    /// `p_label[l]`: P(label l present).
    p_label: Vec<f64>,
    threshold: f32,
}

impl ModelRelationGraph {
    /// Estimate the graph from ground-truth items (a train split).
    pub fn build(
        items: &[ItemTruth],
        num_models: usize,
        num_labels: usize,
        threshold: f32,
    ) -> Self {
        assert!(!items.is_empty(), "empty training split");
        let n = items.len() as f64;
        let mut p_valuable = vec![0.0f64; num_models];
        let mut p_label = vec![0.0f64; num_labels];
        let mut p_joint = vec![0.0f64; num_labels * num_models];

        for item in items {
            let valuable_models: Vec<bool> = (0..num_models)
                .map(|m| {
                    item.output(ModelId(m as u8))
                        .valuable(threshold)
                        .next()
                        .is_some()
                })
                .collect();
            for (m, &v) in valuable_models.iter().enumerate() {
                if v {
                    p_valuable[m] += 1.0;
                }
            }
            for &(l, _) in &item.valuable {
                p_label[l.index()] += 1.0;
                for (m, &v) in valuable_models.iter().enumerate() {
                    if v {
                        p_joint[l.index() * num_models + m] += 1.0;
                    }
                }
            }
        }
        for p in &mut p_valuable {
            *p /= n;
        }
        for p in &mut p_label {
            *p /= n;
        }
        for p in &mut p_joint {
            *p /= n;
        }
        Self {
            num_models,
            num_labels,
            p_valuable,
            p_joint,
            p_label,
            threshold,
        }
    }

    /// Prior probability that model `m` is valuable.
    pub fn prior(&self, m: ModelId) -> f64 {
        self.p_valuable[m.index()]
    }

    /// `P(m valuable | l recalled)`, falling back to the prior when `l` was
    /// never observed in training.
    pub fn conditional(&self, l: LabelId, m: ModelId) -> f64 {
        let pl = self.p_label[l.index()];
        if pl <= 0.0 {
            return self.prior(m);
        }
        self.p_joint[l.index() * self.num_models + m.index()] / pl
    }

    /// Lift of edge `l → m` (1.0 = independent; >1 = l predicts m).
    pub fn lift(&self, l: LabelId, m: ModelId) -> f64 {
        let pm = self.prior(m);
        if pm <= 0.0 {
            return 0.0;
        }
        self.conditional(l, m) / pm
    }

    /// Strongest incoming edges of model `m`: `(label, lift)` with lift ≥
    /// `min_lift` and label support ≥ `min_support`, sorted descending.
    pub fn top_edges(
        &self,
        m: ModelId,
        min_lift: f64,
        min_support: f64,
        k: usize,
    ) -> Vec<(LabelId, f64)> {
        let mut edges: Vec<(LabelId, f64)> = (0..self.num_labels)
            .filter(|&l| self.p_label[l] >= min_support)
            .map(|l| (LabelId(l as u16), self.lift(LabelId(l as u16), m)))
            .filter(|&(_, lift)| lift >= min_lift)
            .collect();
        edges.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        edges.truncate(k);
        edges
    }

    /// Export the strongest edges as a Graphviz dot digraph.
    pub fn to_dot(
        &self,
        catalog: &LabelCatalog,
        zoo: &ams_models::ModelZoo,
        min_lift: f64,
    ) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph model_relations {\n  rankdir=LR;\n");
        for m in 0..self.num_models {
            let id = ModelId(m as u8);
            for (l, lift) in self.top_edges(id, min_lift, 0.02, 3) {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\" [label=\"{lift:.1}\"];",
                    catalog.name(l),
                    zoo.spec(id).name,
                );
            }
        }
        out.push_str("}\n");
        out
    }

    /// The value threshold the statistics were computed at.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }
}

/// A [`ValuePredictor`] backed by the relation graph: score of model `m` is
/// the maximum conditional probability over active state labels (prior when
/// the state is empty), i.e. "how strongly does anything we've seen so far
/// suggest m will pay off".
pub struct GraphPredictor {
    graph: ModelRelationGraph,
}

impl GraphPredictor {
    /// Wrap a built graph.
    pub fn new(graph: ModelRelationGraph) -> Self {
        Self { graph }
    }

    /// Access the underlying graph.
    pub fn graph(&self) -> &ModelRelationGraph {
        &self.graph
    }
}

impl ValuePredictor for GraphPredictor {
    fn num_models(&self) -> usize {
        self.graph.num_models
    }

    fn predict_into(&self, state: &LabelSet, _item: &ItemTruth, out: &mut [f32]) {
        for (m, o) in out.iter_mut().enumerate() {
            let id = ModelId(m as u8);
            let mut score = self.graph.prior(id);
            for l in state.iter() {
                score = score.max(self.graph.conditional(l, id));
            }
            *o = score as f32;
        }
    }

    fn name(&self) -> &'static str {
        "relation-graph"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{aggregate_rollouts, predictor_greedy_rollout, random_rollout};
    use ams_data::{Dataset, DatasetProfile, TruthTable};
    use ams_models::ModelZoo;

    fn fixture() -> (ModelZoo, LabelCatalog, TruthTable) {
        let zoo = ModelZoo::standard();
        let catalog = zoo.catalog();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 150, 57);
        let t = TruthTable::build(&zoo, &catalog, &ds, 0.5);
        (zoo, catalog, t)
    }

    #[test]
    fn probabilities_are_probabilities() {
        let (_, _, t) = fixture();
        let g = ModelRelationGraph::build(t.items(), 30, 1104, 0.5);
        for m in 0..30 {
            let p = g.prior(ModelId(m));
            assert!((0.0..=1.0).contains(&p), "prior {p}");
        }
        let person = LabelId(0);
        for m in 0..30 {
            let c = g.conditional(person, ModelId(m));
            assert!((0.0..=1.0 + 1e-9).contains(&c), "conditional {c}");
        }
    }

    #[test]
    fn person_label_lifts_pose_models() {
        let (zoo, catalog, t) = fixture();
        let g = ModelRelationGraph::build(t.items(), 30, 1104, 0.5);
        let person = catalog.find("person").unwrap();
        let pose = zoo
            .models_for(ams_models::Task::PoseEstimation)
            .next()
            .unwrap()
            .id;
        let lift = g.lift(person, pose);
        assert!(
            lift > 1.1,
            "person should lift pose models (lift {lift:.2})"
        );
    }

    #[test]
    fn place_models_have_high_prior() {
        let (zoo, _, t) = fixture();
        let g = ModelRelationGraph::build(t.items(), 30, 1104, 0.5);
        let place = zoo
            .models_for(ams_models::Task::PlaceClassification)
            .next()
            .unwrap()
            .id;
        let hand = zoo
            .models_for(ams_models::Task::HandLandmark)
            .next()
            .unwrap()
            .id;
        assert!(
            g.prior(place) > g.prior(hand),
            "place classifiers pay off more often"
        );
    }

    #[test]
    fn graph_predictor_beats_random() {
        let (zoo, _, t) = fixture();
        let (train, test) = t.split(ams_data::dataset::Split {
            train_len: 100,
            total: 150,
        });
        let g = GraphPredictor::new(ModelRelationGraph::build(train, 30, 1104, 0.5));
        let (graph_models, _) = aggregate_rollouts(test.iter(), |it| {
            predictor_greedy_rollout(it, &zoo, &g, 0.8, 0.5)
        });
        let (rand_models, _) =
            aggregate_rollouts(test.iter(), |it| random_rollout(it, &zoo, 0.8, 0.5, 3));
        assert!(
            graph_models < rand_models,
            "graph predictor ({graph_models:.2}) should beat random ({rand_models:.2})"
        );
    }

    #[test]
    fn dot_export_contains_edges() {
        let (zoo, catalog, t) = fixture();
        let g = ModelRelationGraph::build(t.items(), 30, 1104, 0.5);
        let dot = g.to_dot(&catalog, &zoo, 1.3);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("->"), "dot should contain at least one edge");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn top_edges_sorted_and_bounded() {
        let (_, _, t) = fixture();
        let g = ModelRelationGraph::build(t.items(), 30, 1104, 0.5);
        let edges = g.top_edges(ModelId(12), 1.0, 0.02, 5);
        assert!(edges.len() <= 5);
        assert!(edges.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_split_panics() {
        let _ = ModelRelationGraph::build(&[], 30, 1104, 0.5);
    }
}
