//! The handcrafted-rule baseline of §III-B / §VI-C (Table II).
//!
//! Rules reweight model *execution probabilities* when trigger labels
//! appear: all models start with equal weight; after each execution, every
//! rule whose trigger fired multiplies its target models' weights by a
//! fixed factor (2x to encourage, 0.5x to discourage). The next model is
//! then sampled proportionally to weight among unexecuted models.
//!
//! The paper's point — which this implementation reproduces — is that such
//! pairwise, fixed-multiplier rules help only marginally: they encode a
//! handful of obvious dependencies while the DRL agent mines many more.

use ams_data::ItemTruth;
use ams_models::{LabelCatalog, LabelId, LabelSet, ModelId, ModelZoo, Task};
use ams_rl::Rollout;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What fires a rule: a predicate over a single newly output valuable label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trigger {
    /// A specific label (e.g. "person", "dog", "face").
    Label(LabelId),
    /// Any pose-estimation keypoint label.
    BodyKeypoints,
    /// A wrist keypoint specifically.
    WristKeypoints,
    /// Any indoor place label.
    IndoorPlace,
}

impl Trigger {
    fn matches(&self, label: LabelId, catalog: &LabelCatalog) -> bool {
        match self {
            Trigger::Label(l) => *l == label,
            Trigger::BodyKeypoints => catalog.task_of(label) == Task::PoseEstimation,
            Trigger::WristKeypoints => {
                catalog.task_of(label) == Task::PoseEstimation
                    && catalog.name(label).contains("wrist")
            }
            Trigger::IndoorPlace => {
                catalog.task_of(label) == Task::PlaceClassification
                    && LabelCatalog::place_is_indoor(
                        label.index() - Task::PlaceClassification.label_offset(),
                    )
            }
        }
    }
}

/// One handcrafted rule: when `trigger` fires, multiply the execution
/// probability of the targeted models by `multiplier`.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Task of the model whose output is inspected (documentation only —
    /// triggers are label predicates and already imply the task).
    pub source_task: Task,
    /// The firing predicate.
    pub trigger: Trigger,
    /// Task whose models are reweighted.
    pub target_task: Task,
    /// Restrict the target to one variant tier (e.g. only the specialist
    /// model of the task). `None` targets every model of the task.
    pub tier_filter: Option<ams_models::SkillTier>,
    /// Weight multiplier (2.0 = encourage, 0.5 = discourage).
    pub multiplier: f64,
}

/// An ordered collection of rules with the reweighting machinery.
#[derive(Debug, Clone)]
pub struct RuleBook {
    rules: Vec<Rule>,
}

impl RuleBook {
    /// Build from explicit rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        Self { rules }
    }

    /// The ten rules of Table II, mapped onto the standard catalog.
    ///
    /// The table's "Animal-Object Detection" and "Sport-Action
    /// Classification" targets are content-specialized models; the closest
    /// members of this zoo are the *specialist* variants, so the two
    /// discouraging indoor rules target only those. The tenth rule
    /// (person → face detection) follows the table's person-centric,
    /// chain-building pattern: it links the object detectors to the
    /// face-landmark/emotion rules further down the chain.
    pub fn table2(catalog: &LabelCatalog) -> Self {
        use ams_models::SkillTier;
        let person = catalog.find("person").expect("person label");
        let dog = catalog.find("dog").expect("dog label");
        let face = catalog.find("face").expect("face label");
        let r = |source_task, trigger, target_task, multiplier| Rule {
            source_task,
            trigger,
            target_task,
            tier_filter: None,
            multiplier,
        };
        let rs = |source_task, trigger, target_task, multiplier| Rule {
            source_task,
            trigger,
            target_task,
            tier_filter: Some(SkillTier::Specialist),
            multiplier,
        };
        Self::new(vec![
            r(
                Task::ObjectDetection,
                Trigger::Label(person),
                Task::PoseEstimation,
                2.0,
            ),
            r(
                Task::ObjectDetection,
                Trigger::Label(person),
                Task::GenderClassification,
                2.0,
            ),
            r(
                Task::ObjectDetection,
                Trigger::Label(person),
                Task::FaceDetection,
                2.0,
            ),
            r(
                Task::ObjectDetection,
                Trigger::Label(dog),
                Task::DogClassification,
                2.0,
            ),
            r(
                Task::FaceDetection,
                Trigger::Label(face),
                Task::FaceLandmark,
                2.0,
            ),
            r(
                Task::FaceDetection,
                Trigger::Label(face),
                Task::EmotionClassification,
                2.0,
            ),
            r(
                Task::PoseEstimation,
                Trigger::BodyKeypoints,
                Task::ActionClassification,
                2.0,
            ),
            r(
                Task::PoseEstimation,
                Trigger::WristKeypoints,
                Task::HandLandmark,
                2.0,
            ),
            rs(
                Task::PlaceClassification,
                Trigger::IndoorPlace,
                Task::DogClassification,
                0.5,
            ),
            rs(
                Task::PlaceClassification,
                Trigger::IndoorPlace,
                Task::ActionClassification,
                0.5,
            ),
        ])
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the book is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Apply every rule fired by `new_labels` to the weight vector.
    pub fn apply(
        &self,
        new_labels: &[LabelId],
        catalog: &LabelCatalog,
        zoo: &ModelZoo,
        weights: &mut [f64],
    ) {
        for rule in &self.rules {
            let fired = new_labels.iter().any(|&l| rule.trigger.matches(l, catalog));
            if !fired {
                continue;
            }
            for spec in zoo.specs() {
                let tier_ok = rule
                    .tier_filter
                    .map(|t| spec.quality.tier == t)
                    .unwrap_or(true);
                if spec.task == rule.target_task && tier_ok {
                    weights[spec.id.index()] *= rule.multiplier;
                }
            }
        }
    }
}

/// Run the rule-based policy on one item until `recall_target` is reached.
pub fn rule_rollout(
    item: &ItemTruth,
    zoo: &ModelZoo,
    catalog: &LabelCatalog,
    book: &RuleBook,
    recall_target: f64,
    threshold: f32,
    seed: u64,
) -> Rollout {
    let n = zoo.len();
    let mut rng = StdRng::seed_from_u64(seed ^ item.scene_id.wrapping_mul(0x517C_C1B7));
    let mut weights = vec![1.0f64; n];
    let mut state = LabelSet::new(item.universe());
    let mut executed = Vec::new();
    let mut mask = 0u64;
    let mut time_ms = 0u64;
    let mut recalled = 0.0f64;
    let total = item.total_value;

    while executed.len() < n && total > 0.0 && recalled / total < recall_target - 1e-12 {
        // weighted sample among unexecuted models
        let sum: f64 = (0..n)
            .filter(|&m| mask >> m & 1 == 0)
            .map(|m| weights[m])
            .sum();
        let mut x = rng.gen_range(0.0..sum);
        let mut pick = usize::MAX;
        #[allow(clippy::needless_range_loop)] // index pairs with the bitmask
        for m in 0..n {
            if mask >> m & 1 == 1 {
                continue;
            }
            if x < weights[m] {
                pick = m;
                break;
            }
            x -= weights[m];
        }
        if pick == usize::MAX {
            pick = (0..n)
                .rev()
                .find(|&m| mask >> m & 1 == 0)
                .expect("model left");
        }
        let m = ModelId(pick as u8);
        mask |= 1 << pick;
        executed.push(m);
        time_ms += u64::from(zoo.spec(m).time_ms);

        // A rule's intent ("run a pose estimator") is satisfied once any
        // model of that task has executed: reset the task-mates' weights so
        // an earlier boost doesn't keep steering picks into redundant
        // same-task variants.
        let task = zoo.spec(m).task;
        for spec in zoo.specs() {
            if spec.task == task && mask >> spec.id.index() & 1 == 0 {
                weights[spec.id.index()] = 1.0;
            }
        }

        // Rules fire on *everything the model printed*, valuable or not —
        // Table II's trigger column reads "Output Label", and a
        // low-confidence "person 0.43" is still a hint that a pose
        // estimator may pay off.
        let output_labels: Vec<LabelId> =
            item.output(m).detections.iter().map(|d| d.label).collect();
        recalled += item.apply(&mut state, m, threshold);
        book.apply(&output_labels, catalog, zoo, &mut weights);
    }
    let recall = if total > 0.0 { recalled / total } else { 1.0 };
    Rollout {
        executed,
        time_ms,
        recall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{aggregate_rollouts, random_rollout};
    use ams_data::{Dataset, DatasetProfile, TruthTable};

    fn fixture() -> (ModelZoo, LabelCatalog, TruthTable) {
        let zoo = ModelZoo::standard();
        let catalog = zoo.catalog();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 60, 41);
        let t = TruthTable::build(&zoo, &catalog, &ds, 0.5);
        (zoo, catalog, t)
    }

    #[test]
    fn table2_has_ten_rules() {
        let catalog = LabelCatalog::standard();
        let book = RuleBook::table2(&catalog);
        assert_eq!(book.len(), 10);
        assert!(!book.is_empty());
        let encouraging = book.rules().iter().filter(|r| r.multiplier > 1.0).count();
        let discouraging = book.rules().iter().filter(|r| r.multiplier < 1.0).count();
        assert_eq!(encouraging, 8);
        assert_eq!(discouraging, 2);
    }

    #[test]
    fn person_label_boosts_pose_models() {
        let (zoo, catalog, _) = fixture();
        let book = RuleBook::table2(&catalog);
        let person = catalog.find("person").unwrap();
        let mut w = vec![1.0f64; 30];
        book.apply(&[person], &catalog, &zoo, &mut w);
        for spec in zoo.specs() {
            let expect = match spec.task {
                Task::PoseEstimation | Task::GenderClassification | Task::FaceDetection => 2.0,
                _ => 1.0,
            };
            assert_eq!(w[spec.id.index()], expect, "{}", spec.name);
        }
    }

    #[test]
    fn indoor_place_discourages_specialist_dogs_and_actions() {
        use ams_models::SkillTier;
        let (zoo, catalog, _) = fixture();
        let book = RuleBook::table2(&catalog);
        let pub_label = catalog.find("pub").unwrap();
        let mut w = vec![1.0f64; 30];
        book.apply(&[pub_label], &catalog, &zoo, &mut w);
        for spec in zoo.specs() {
            let targeted = matches!(
                spec.task,
                Task::DogClassification | Task::ActionClassification
            ) && spec.quality.tier == SkillTier::Specialist;
            let expect = if targeted { 0.5 } else { 1.0 };
            assert_eq!(w[spec.id.index()], expect, "{}", spec.name);
        }
    }

    #[test]
    fn wrist_trigger_is_specific() {
        let (zoo, catalog, _) = fixture();
        let book = RuleBook::table2(&catalog);
        let wrist = catalog.find("left wrist").unwrap();
        let nose = catalog.find("nose").unwrap();
        let mut w = vec![1.0f64; 30];
        book.apply(&[wrist], &catalog, &zoo, &mut w);
        let hand_model = zoo.models_for(Task::HandLandmark).next().unwrap();
        assert_eq!(w[hand_model.id.index()], 2.0, "wrist boosts hand landmarks");
        let mut w2 = vec![1.0f64; 30];
        book.apply(&[nose], &catalog, &zoo, &mut w2);
        assert_eq!(w2[hand_model.id.index()], 1.0, "nose does not");
        // but nose IS a body keypoint → boosts action models
        let action_model = zoo.models_for(Task::ActionClassification).next().unwrap();
        assert_eq!(w2[action_model.id.index()], 2.0);
    }

    #[test]
    fn rollout_reaches_target_and_dedups() {
        let (zoo, catalog, t) = fixture();
        let book = RuleBook::table2(&catalog);
        for item in t.items().iter().take(10) {
            let r = rule_rollout(item, &zoo, &catalog, &book, 1.0, 0.5, 3);
            assert!(r.recall >= 1.0 - 1e-9);
            let mut seen = std::collections::HashSet::new();
            assert!(r.executed.iter().all(|m| seen.insert(*m)));
        }
    }

    #[test]
    fn rules_perform_no_worse_than_random() {
        // §III-B/§VI-C: handcrafted rules "slightly improve the performance
        // compared with the random policy" but "leave a large room for
        // optimization". On this substrate the improvement is within noise
        // (see EXPERIMENTS.md fig6 for the measured gap vs the paper's
        // 22.6%); the invariant we hold is that rules never *hurt*
        // materially and sit far from the optimal policy.
        let (zoo, catalog, t) = fixture();
        let book = RuleBook::table2(&catalog);
        let (rule_models, _) = aggregate_rollouts(t.items().iter(), |it| {
            rule_rollout(it, &zoo, &catalog, &book, 0.8, 0.5, 7)
        });
        let (rand_models, _) =
            aggregate_rollouts(t.items().iter(), |it| random_rollout(it, &zoo, 0.8, 0.5, 7));
        assert!(
            rule_models <= rand_models * 1.03,
            "rules ({rule_models:.2}) must not lose to random ({rand_models:.2})"
        );
        let (opt_models, _) = aggregate_rollouts(t.items().iter(), |it| {
            crate::policies::optimal_rollout(it, &zoo, 0.8, 0.5)
        });
        assert!(
            opt_models * 2.0 < rule_models,
            "optimal ({opt_models:.2}) must dominate rules ({rule_models:.2})"
        );
    }
}
