//! Property tests for the scheduling layer.

use ams_core::metrics::{Cdf, Series};
use ams_core::policies::{predictor_greedy_rollout, random_rollout, run_to_recall};
use ams_core::predictor::{OraclePredictor, UniformPredictor};
use ams_core::scheduler::deadline::schedule_deadline;
use ams_core::scheduler::optimal_star;
use ams_data::{Dataset, DatasetProfile, TruthTable};
use ams_models::{ModelId, ModelZoo};
use proptest::prelude::*;

fn fixture() -> (ModelZoo, TruthTable) {
    let zoo = ModelZoo::standard();
    let ds = Dataset::generate(DatasetProfile::PascalVoc2012, 20, 161);
    let t = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
    (zoo, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any predictor's greedy rollout reaches the requested recall (or
    /// exhausts the zoo) without duplicate executions.
    #[test]
    fn greedy_rollouts_are_sound(item_idx in 0usize..20, target in 0.0f64..1.0, oracle in any::<bool>()) {
        let (zoo, t) = fixture();
        let item = t.item(item_idx);
        let r = if oracle {
            let p = OraclePredictor::new(30, 0.5);
            predictor_greedy_rollout(item, &zoo, &p, target, 0.5)
        } else {
            let p = UniformPredictor::new(30);
            predictor_greedy_rollout(item, &zoo, &p, target, 0.5)
        };
        prop_assert!(r.recall >= target - 1e-9 || r.executed.len() == 30);
        let mut seen = std::collections::HashSet::new();
        prop_assert!(r.executed.iter().all(|m| seen.insert(*m)));
        let time: u64 = r.executed.iter().map(|&m| u64::from(zoo.spec(m).time_ms)).sum();
        prop_assert_eq!(time, r.time_ms);
    }

    /// run_to_recall honours arbitrary (valid) policies and stops exactly
    /// at the target.
    #[test]
    fn run_to_recall_stops_at_target(item_idx in 0usize..20, target in 0.1f64..1.0, seed in any::<u64>()) {
        let (zoo, t) = fixture();
        let item = t.item(item_idx);
        let r = random_rollout(item, &zoo, target, 0.5, seed);
        prop_assert!(r.recall >= target - 1e-9 || r.executed.len() == 30);
        // removing the last execution would drop below the target
        if r.executed.len() > 1 && r.recall >= target {
            let prefix = &r.executed[..r.executed.len() - 1];
            let prefix_recall = item.recall_of_set(prefix, 0.5);
            prop_assert!(prefix_recall < target, "{} >= {}", prefix_recall, target);
        }
    }

    /// Algorithm 1's recall grows monotonically with the budget for a
    /// deterministic predictor.
    #[test]
    fn deadline_recall_monotone(item_idx in 0usize..20, b1 in 0u64..5000, delta in 0u64..2000) {
        let (zoo, t) = fixture();
        let oracle = OraclePredictor::new(30, 0.5);
        let item = t.item(item_idx);
        let r1 = schedule_deadline(&oracle, &zoo, item, b1, 0.5).recall;
        let r2 = schedule_deadline(&oracle, &zoo, item, b1 + delta, 0.5).recall;
        prop_assert!(r2 >= r1 - 1e-9, "budget {} -> {}: recall {} -> {}", b1, b1 + delta, r1, r2);
    }

    /// optimal* is monotone in budget and bounded by the total value.
    #[test]
    fn optimal_star_laws(item_idx in 0usize..20, b in 0u64..8000) {
        let (zoo, t) = fixture();
        let item = t.item(item_idx);
        let v = optimal_star::optimal_star_deadline(&zoo, item, b, 0.5);
        prop_assert!(v >= -1e-12);
        prop_assert!(v <= item.total_value + 1e-9);
        let v2 = optimal_star::optimal_star_deadline(&zoo, item, b + 500, 0.5);
        prop_assert!(v2 >= v - 1e-9);
    }

    /// Cdf::at is a monotone map into [0,1] hitting 0 below the min and 1
    /// at the max.
    #[test]
    fn cdf_laws(mut samples in prop::collection::vec(0.0f64..100.0, 1..100), probes in prop::collection::vec(0.0f64..100.0, 0..20)) {
        let cdf = Cdf::new(samples.clone());
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(cdf.at(samples[0] - 1.0), 0.0);
        prop_assert_eq!(cdf.at(samples[samples.len() - 1]), 1.0);
        let mut sorted_probes = probes;
        sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for p in sorted_probes {
            let v = cdf.at(p);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev);
            prev = v;
        }
    }

    /// Series interpolation stays within the hull of its y values.
    #[test]
    fn series_interpolation_bounded(ys in prop::collection::vec(-50.0f64..50.0, 2..20), probe in -10.0f64..30.0) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let s = Series::new("t", xs, ys.clone());
        let v = s.at(probe);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    /// A custom run_to_recall policy closure receives a consistent
    /// (state, mask) view: the mask bit count equals the executed count.
    #[test]
    fn policy_view_is_consistent(item_idx in 0usize..20, target in 0.2f64..1.0) {
        let (zoo, t) = fixture();
        let item = t.item(item_idx);
        let mut calls = 0u32;
        let r = run_to_recall(item, &zoo, target, 0.5, |_state, mask| {
            assert_eq!(mask.count_ones(), calls, "mask must track executions");
            calls += 1;
            // pick lowest unexecuted id
            let m = (0..30).find(|i| mask >> i & 1 == 0).expect("model left");
            ModelId(m as u8)
        });
        prop_assert_eq!(r.executed.len() as u32, calls);
    }
}
