//! Property tests for [`StreamStats`] shard merging: served statistics
//! must not depend on how items were sharded across queues and workers or
//! in which order the shards are folded back together, and the record must
//! survive a serde round trip (the serving report is persisted as JSON).

use ams_core::streaming::StreamStats;
use proptest::prelude::*;

const MODELS: usize = 30;

fn arb_stats() -> impl Strategy<Value = StreamStats> {
    (
        0usize..1000,
        0u64..1_000_000,
        0usize..10_000,
        0.0f64..1000.0,
        0.0f64..5000.0,
        prop::collection::vec(0u64..500, MODELS..MODELS + 1),
        0usize..1000,
    )
        .prop_map(
            |(
                items,
                total_exec_ms,
                total_executions,
                recall_sum,
                value_sum,
                per_model_runs,
                low,
            )| {
                StreamStats {
                    items,
                    total_exec_ms,
                    total_executions,
                    recall_sum,
                    value_sum,
                    per_model_runs,
                    low_recall_items: low,
                }
            },
        )
}

fn merged(parts: &[&StreamStats]) -> StreamStats {
    let mut acc = StreamStats::with_models(MODELS);
    for p in parts {
        acc.merge(p);
    }
    acc
}

fn assert_stats_eq(a: &StreamStats, b: &StreamStats) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.items, b.items);
    prop_assert_eq!(a.total_exec_ms, b.total_exec_ms);
    prop_assert_eq!(a.total_executions, b.total_executions);
    prop_assert_eq!(&a.per_model_runs, &b.per_model_runs);
    prop_assert_eq!(a.low_recall_items, b.low_recall_items);
    prop_assert!((a.recall_sum - b.recall_sum).abs() < 1e-6 * (1.0 + a.recall_sum.abs()));
    prop_assert!((a.value_sum - b.value_sum).abs() < 1e-6 * (1.0 + a.value_sum.abs()));
    Ok(())
}

proptest! {
    /// Merge is commutative: shard arrival order cannot change the report.
    #[test]
    fn merge_is_commutative(a in arb_stats(), b in arb_stats()) {
        assert_stats_eq(&merged(&[&a, &b]), &merged(&[&b, &a]))?;
    }

    /// Merge is associative: folding worker-locals into shard subtotals
    /// first is the same as folding them straight into the global record.
    #[test]
    fn merge_is_associative(a in arb_stats(), b in arb_stats(), c in arb_stats()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab;
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        assert_stats_eq(&ab_c, &a_bc)?;
    }

    /// The empty record is a merge identity on both sides.
    #[test]
    fn empty_is_identity(a in arb_stats()) {
        let empty = StreamStats::with_models(MODELS);
        assert_stats_eq(&merged(&[&empty, &a]), &a)?;
        assert_stats_eq(&merged(&[&a, &empty]), &a)?;
    }

    /// Shards of different zoo widths merge to the widest profile without
    /// losing any run counts.
    #[test]
    fn merge_widens_model_profiles(a in arb_stats(), keep in 0usize..MODELS) {
        let mut narrow = a.clone();
        narrow.per_model_runs.truncate(keep);
        let mut acc = narrow.clone();
        acc.merge(&a);
        prop_assert_eq!(acc.per_model_runs.len(), MODELS);
        for (i, &runs) in acc.per_model_runs.iter().enumerate() {
            let from_narrow = narrow.per_model_runs.get(i).copied().unwrap_or(0);
            prop_assert_eq!(runs, from_narrow + a.per_model_runs[i]);
        }
    }

    /// Serde round trip preserves every field exactly (JSON is the serve
    /// report's wire format).
    #[test]
    fn serde_round_trip(a in arb_stats()) {
        let json = serde_json::to_string(&a).expect("stats serialize");
        let back: StreamStats = serde_json::from_str(&json).expect("stats deserialize");
        prop_assert_eq!(a.items, back.items);
        prop_assert_eq!(a.total_exec_ms, back.total_exec_ms);
        prop_assert_eq!(a.total_executions, back.total_executions);
        prop_assert_eq!(&a.per_model_runs, &back.per_model_runs);
        prop_assert_eq!(a.low_recall_items, back.low_recall_items);
        prop_assert_eq!(a.recall_sum.to_bits(), back.recall_sum.to_bits());
        prop_assert_eq!(a.value_sum.to_bits(), back.value_sum.to_bits());
    }
}
