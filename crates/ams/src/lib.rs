//! # ams — Adaptive Model Scheduling (facade)
//!
//! One-stop crate re-exporting the whole reproduction of
//! *"Comprehensive and Efficient Data Labeling via Adaptive Model
//! Scheduling"* (ICDE 2020):
//!
//! * [`models`] — the 30-model / 10-task / 1104-label zoo (Table I).
//! * [`data`] — synthetic scenes, the five dataset profiles, simulated
//!   inference and ground-truth tables.
//! * [`nn`] — the dense neural-network substrate.
//! * [`rl`] — the labeling MDP and the four DRL training schemas.
//! * [`sim`] — virtual-time serial/parallel executors, the GPU pool, and
//!   batched admission.
//! * [`core`] — value prediction, Algorithms 1–2, baselines, rules, the
//!   relation graph, and the [`core::framework::AdaptiveModelScheduler`]
//!   facade.
//! * [`serve`] — the sharded serving front-end: a request/response client
//!   API (completion tickets, per-request label delivery, cancellation),
//!   bounded queues with backpressure and per-class admission
//!   reservations, model-affinity routing with deadline-aware spill,
//!   batched admission with an adaptive per-shard batch-limit controller,
//!   deadline shedding, a content-addressed label cache with request
//!   coalescing, latency telemetry, and online adaptation (a background
//!   trainer learning from served outcomes and hot-swapping
//!   generation-counted weight snapshots into the predict path).
//!
//! ## Quickstart
//!
//! ```
//! use ams::prelude::*;
//!
//! // 1. A zoo of 30 simulated vision models and a stream of data items.
//! let zoo = ModelZoo::standard();
//! let dataset = Dataset::generate(DatasetProfile::Coco2017, 50, 42);
//! let truth = TruthTable::build(&zoo, &zoo.catalog(), &dataset, 0.5);
//!
//! // 2. Train a small DRL agent to predict model values.
//! let split = dataset.split_1_to_4();
//! let (train_items, test_items) = truth.split(split);
//! let cfg = TrainConfig { episodes: 40, ..TrainConfig::fast_test(Algo::DuelingDqn) };
//! let (agent, _stats) = train(train_items, zoo.len(), &cfg);
//!
//! // 3. Label items under a 1-second deadline (Algorithm 1).
//! let scheduler = AdaptiveModelScheduler::new(
//!     zoo,
//!     Box::new(AgentPredictor::new(agent)),
//!     0.5,
//!     dataset.world_seed,
//! );
//! let outcome = scheduler.label_item(&test_items[0], Budget::Deadline { ms: 1000 });
//! assert!(outcome.elapsed_ms <= 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub use ams_core as core;
pub use ams_data as data;
pub use ams_models as models;
pub use ams_nn as nn;
pub use ams_rl as rl;
pub use ams_serve as serve;
pub use ams_sim as sim;

/// Everything a typical user needs, importable in one line.
pub mod prelude {
    pub use ams_core::chunked::{self, ChunkedConfig};
    pub use ams_core::framework::{AdaptiveModelScheduler, Budget, LabelingOutcome};
    pub use ams_core::graph::{GraphPredictor, ModelRelationGraph};
    pub use ams_core::metrics::{Cdf, Figure, Series};
    pub use ams_core::policies;
    pub use ams_core::predictor::{
        AgentPredictor, OraclePredictor, SnapshotPredictor, StaticValuePredictor, UniformPredictor,
        ValuePredictor,
    };
    pub use ams_core::rules::{rule_rollout, Rule, RuleBook, Trigger};
    pub use ams_core::scheduler::deadline::{schedule_deadline, DeadlineResult};
    pub use ams_core::scheduler::deadline_memory::{
        schedule_deadline_memory, DeadlineMemoryResult,
    };
    pub use ams_core::scheduler::optimal_star;
    pub use ams_core::streaming::{ParallelStreamProcessor, StreamProcessor, StreamStats};
    pub use ams_data::{
        infer, infer_all, Dataset, DatasetProfile, DogInstance, ItemTruth, Person, Place, Scene,
        SceneGenerator, TemplateKind, TruthTable,
    };
    pub use ams_models::{
        Detection, LabelCatalog, LabelId, LabelSet, ModelId, ModelOutput, ModelSpec, ModelZoo,
        QualityProfile, SkillTier, Task,
    };
    pub use ams_rl::{
        evaluate_q_greedy, learn_step_batched, learn_step_scalar, q_greedy_rollout, train,
        AgentSnapshot, Algo, BatchScratch, EvalSummary, LabelingEnv, OnlineConfig, OnlineTrainer,
        RewardConfig, Rollout, ScalarScratch, Smoothing, TrainConfig, TrainStats, TrainedAgent,
    };
    pub use ams_serve::{
        AdaptConfig, AdaptReport, AdaptiveBatchConfig, AdaptiveReport, AffinityConfig, AmsServer,
        BackpressurePolicy, CacheConfig, CacheReport, ClassReport, Client, Completion, EventKind,
        LabelResult, LatencySummary, MetricsSnapshot, NetClient, NetEvent, NetServer, ObsConfig,
        ObsReport, RoutingMode, ServeConfig, ServeReport, ShardAdaptive, ShedReason, SloClass,
        SloConfig, SloReport, SubmitOptions, SubmitOutcome, Ticket, TraceReport, WireError,
    };
    pub use ams_sim::{
        batched_makespan, BatchLatencyModel, ExecTrace, Job, MemoryPool, ParallelExecutor,
        SerialExecutor, Span,
    };
}
