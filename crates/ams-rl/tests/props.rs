//! Property tests for the RL substrate: MDP invariants and replay laws.

use ams_data::{Dataset, DatasetProfile, TruthTable};
use ams_models::ModelZoo;
use ams_rl::{masked_argmax, LabelingEnv, ReplayBuffer, RewardConfig, Transition};
use proptest::prelude::*;

fn fixture() -> TruthTable {
    let zoo = ModelZoo::standard();
    let ds = Dataset::generate(DatasetProfile::Coco2017, 15, 2718);
    TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any permutation of all 30 models terminates, visits every model
    /// exactly once, and the state only grows.
    #[test]
    fn episode_invariants_under_any_order(item_idx in 0usize..15, perm_seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let t = fixture();
        let cfg = RewardConfig::default();
        let mut env = LabelingEnv::new(t.item(item_idx), &cfg, 30, false);
        let mut order: Vec<usize> = (0..30).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        order.shuffle(&mut rng);
        let mut prev_count = 0usize;
        for (i, &a) in order.iter().enumerate() {
            prop_assert!(!env.is_done());
            let r = env.step(a);
            let count = env.state().count();
            prop_assert!(count >= prev_count, "state can only grow");
            prev_count = count;
            prop_assert_eq!(r.done, i == 29);
        }
        prop_assert!((env.recall() - 1.0).abs() < 1e-9, "all models => full recall");
    }

    /// The availability mask always excludes exactly the executed models.
    #[test]
    fn availability_mask_tracks_execution(item_idx in 0usize..15, picks in prop::collection::vec(0usize..30, 1..15)) {
        let t = fixture();
        let cfg = RewardConfig::default();
        let mut env = LabelingEnv::new(t.item(item_idx), &cfg, 30, true);
        let mut executed = std::collections::HashSet::new();
        for a in picks {
            if executed.contains(&a) || env.is_done() {
                continue;
            }
            env.step(a);
            executed.insert(a);
            let mask = env.available_mask();
            if env.is_done() {
                prop_assert_eq!(mask, 0);
                continue;
            }
            for m in 0..30usize {
                let avail = mask >> m & 1 == 1;
                prop_assert_eq!(avail, !executed.contains(&m));
            }
            prop_assert_eq!(mask >> 30 & 1, 1, "END always available until done");
        }
    }

    /// Reward is -1 exactly when the model adds no new valuable label.
    #[test]
    fn punishment_iff_nothing_new(item_idx in 0usize..15, first in 0usize..30) {
        let t = fixture();
        let item = t.item(item_idx);
        let cfg = RewardConfig::default();
        let mut env = LabelingEnv::new(item, &cfg, 30, true);
        let expected = item.new_label_confidence(env.state(), ams_models::ModelId(first as u8), 0.5);
        let r = env.step(first);
        if expected > 0.0 {
            prop_assert!(r.reward > 0.0);
        } else {
            prop_assert_eq!(r.reward, -1.0);
        }
    }

    /// The replay ring buffer holds the most recent `cap` transitions.
    #[test]
    fn replay_keeps_most_recent(cap in 1usize..64, n in 0usize..200) {
        let mut rb = ReplayBuffer::new(cap);
        for a in 0..n {
            rb.push(Transition {
                state: std::sync::Arc::new([]),
                action: (a % 31) as u8,
                reward: a as f32,
                next_state: std::sync::Arc::new([]),
                next_avail: 1,
                next_action: 0,
                done: false,
            });
        }
        prop_assert_eq!(rb.len(), n.min(cap));
        if n > 0 {
            let min_kept = n.saturating_sub(cap) as f32;
            for i in 0..rb.len() {
                prop_assert!(rb.get(i).reward >= min_kept, "evictions are oldest-first");
            }
        }
    }

    /// masked_argmax returns an available index achieving the max.
    #[test]
    fn masked_argmax_correct(q in prop::collection::vec(-10.0f32..10.0, 1..31), mask_bits in 1u64..u64::MAX) {
        let mask = mask_bits & ((1u64 << q.len()) - 1);
        prop_assume!(mask != 0);
        let a = masked_argmax(&q, mask);
        prop_assert!(mask >> a & 1 == 1);
        for (i, &v) in q.iter().enumerate() {
            if mask >> i & 1 == 1 {
                prop_assert!(q[a] >= v, "q[{}]={} beats q[{}]={}", i, v, a, q[a]);
            }
        }
    }
}
