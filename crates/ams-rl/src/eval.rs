//! Q-value-greedy rollouts and the §VI-B evaluation metrics.
//!
//! The §VI-B protocol: greedily execute the unexecuted model with maximal
//! predicted Q until the *true* recalled value reaches a target recall rate
//! (the stop condition is oracle-determined, footnote 1 of the paper). The
//! metrics are the average number of executed models and the average
//! execution time per item. The END action is masked out — it exists only
//! for training (§IV-B).

use crate::trainer::TrainedAgent;
use ams_data::ItemTruth;
use ams_models::{LabelSet, ModelId, ModelZoo};

/// One greedy rollout's outcome.
#[derive(Debug, Clone)]
pub struct Rollout {
    /// Models in execution order.
    pub executed: Vec<ModelId>,
    /// Total execution time of the models run, ms.
    pub time_ms: u64,
    /// Final recall rate of the true output value.
    pub recall: f64,
}

/// Run the Q-greedy policy on one item until `recall_target` is reached
/// (or every model has been executed).
pub fn q_greedy_rollout(
    agent: &TrainedAgent,
    zoo: &ModelZoo,
    item: &ItemTruth,
    recall_target: f64,
    value_threshold: f32,
) -> Rollout {
    let num_models = agent.num_models;
    let mut state = LabelSet::new(item.universe());
    let mut executed: Vec<ModelId> = Vec::new();
    let mut executed_mask = 0u64;
    let mut time_ms = 0u64;
    let mut recalled = 0.0f64;
    let total = item.total_value;
    let mut sparse: Vec<u32> = Vec::new();
    let mut cache = ams_nn::FwdCache::default();

    while executed.len() < num_models {
        if total > 0.0 && recalled / total >= recall_target - 1e-12 {
            break;
        }
        if total <= 0.0 {
            break; // nothing valuable on this item
        }
        state.write_sparse(&mut sparse);
        let q = agent.q_values_cached(&sparse, &mut cache);
        // argmax over unexecuted models (END, when present, sits past them)
        let mut best = usize::MAX;
        let mut best_q = f32::NEG_INFINITY;
        for (a, &v) in q[..num_models].iter().enumerate() {
            if executed_mask >> a & 1 == 0 && v > best_q {
                best_q = v;
                best = a;
            }
        }
        let m = ModelId(best as u8);
        executed_mask |= 1 << best;
        executed.push(m);
        time_ms += u64::from(zoo.spec(m).time_ms);
        recalled += item.apply(&mut state, m, value_threshold);
    }

    let recall = if total > 0.0 { recalled / total } else { 1.0 };
    Rollout {
        executed,
        time_ms,
        recall,
    }
}

/// Aggregate §VI-B metrics across a test set.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvalSummary {
    /// Average number of executed models per item.
    pub avg_models: f64,
    /// Average execution time per item, seconds.
    pub avg_time_s: f64,
    /// Average achieved recall.
    pub avg_recall: f64,
}

/// Evaluate the Q-greedy policy across `items` at one recall target.
/// Items are processed in parallel with scoped threads.
pub fn evaluate_q_greedy(
    agent: &TrainedAgent,
    zoo: &ModelZoo,
    items: &[ItemTruth],
    recall_target: f64,
    value_threshold: f32,
) -> EvalSummary {
    if items.is_empty() {
        return EvalSummary::default();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let chunk = items.len().div_ceil(threads);
    let partials: Vec<(f64, f64, f64)> = std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || {
                    let mut models = 0.0;
                    let mut time = 0.0;
                    let mut recall = 0.0;
                    for item in part {
                        let r = q_greedy_rollout(agent, zoo, item, recall_target, value_threshold);
                        models += r.executed.len() as f64;
                        time += r.time_ms as f64 / 1000.0;
                        recall += r.recall;
                    }
                    (models, time, recall)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("eval worker"))
            .collect()
    });

    let n = items.len() as f64;
    let (m, t, r) = partials.into_iter().fold((0.0, 0.0, 0.0), |acc, p| {
        (acc.0 + p.0, acc.1 + p.1, acc.2 + p.2)
    });
    EvalSummary {
        avg_models: m / n,
        avg_time_s: t / n,
        avg_recall: r / n,
    }
}

/// Position (1-based) of `model` in the Q-greedy execution sequence run to
/// full recall; `num_models + 1` if never executed. Used by the §VI-E
/// priority experiment.
pub fn execution_position(
    agent: &TrainedAgent,
    zoo: &ModelZoo,
    item: &ItemTruth,
    model: ModelId,
    value_threshold: f32,
) -> usize {
    let r = q_greedy_rollout(agent, zoo, item, 1.0, value_threshold);
    r.executed
        .iter()
        .position(|&m| m == model)
        .map(|p| p + 1)
        .unwrap_or(agent.num_models + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::Algo;
    use crate::trainer::{train, TrainConfig};
    use ams_data::{Dataset, DatasetProfile, TruthTable};

    fn fixture() -> (ModelZoo, TruthTable, TrainedAgent) {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 24, 33);
        let table = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        let cfg = TrainConfig {
            episodes: 30,
            ..TrainConfig::fast_test(Algo::Dqn)
        };
        let (agent, _) = train(table.items(), 30, &cfg);
        (zoo, table, agent)
    }

    #[test]
    fn rollout_reaches_target() {
        let (zoo, table, agent) = fixture();
        for item in table.items().iter().take(8) {
            let r = q_greedy_rollout(&agent, &zoo, item, 0.8, 0.5);
            assert!(
                r.recall >= 0.8 || r.executed.len() == 30,
                "recall {}",
                r.recall
            );
            // no duplicates
            let mut seen = std::collections::HashSet::new();
            for m in &r.executed {
                assert!(seen.insert(*m), "duplicate model {m}");
            }
            // time is the sum of spec times
            let t: u64 = r
                .executed
                .iter()
                .map(|&m| u64::from(zoo.spec(m).time_ms))
                .sum();
            assert_eq!(t, r.time_ms);
        }
    }

    #[test]
    fn higher_recall_needs_no_fewer_models() {
        let (zoo, table, agent) = fixture();
        for item in table.items().iter().take(8) {
            let lo = q_greedy_rollout(&agent, &zoo, item, 0.4, 0.5);
            let hi = q_greedy_rollout(&agent, &zoo, item, 1.0, 0.5);
            assert!(lo.executed.len() <= hi.executed.len());
        }
    }

    #[test]
    fn summary_aggregates() {
        let (zoo, table, agent) = fixture();
        let s = evaluate_q_greedy(&agent, &zoo, table.items(), 1.0, 0.5);
        assert!(s.avg_models > 0.0 && s.avg_models <= 30.0);
        assert!(s.avg_time_s > 0.0 && s.avg_time_s <= 5.5);
        assert!(
            s.avg_recall > 0.99,
            "full-recall eval must recall everything"
        );
    }

    #[test]
    fn parallel_eval_matches_serial() {
        let (zoo, table, agent) = fixture();
        let par = evaluate_q_greedy(&agent, &zoo, table.items(), 0.8, 0.5);
        // serial re-computation
        let mut models = 0.0;
        let mut time = 0.0;
        for item in table.items() {
            let r = q_greedy_rollout(&agent, &zoo, item, 0.8, 0.5);
            models += r.executed.len() as f64;
            time += r.time_ms as f64 / 1000.0;
        }
        let n = table.len() as f64;
        assert!((par.avg_models - models / n).abs() < 1e-9);
        assert!((par.avg_time_s - time / n).abs() < 1e-9);
    }

    #[test]
    fn empty_items_summary_is_default() {
        let (zoo, _, agent) = fixture();
        let s = evaluate_q_greedy(&agent, &zoo, &[], 1.0, 0.5);
        assert_eq!(s, EvalSummary::default());
    }

    #[test]
    fn execution_position_in_range() {
        let (zoo, table, agent) = fixture();
        let pos = execution_position(&agent, &zoo, table.item(0), ModelId(6), 0.5);
        assert!((1..=31).contains(&pos));
    }
}
