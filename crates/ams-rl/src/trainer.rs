//! The DRL training loop (§IV-B): experience replay, target network,
//! Adam on a Huber TD loss, ε-greedy behaviour policy with the END action.

use crate::algo::Algo;
use crate::env::{LabelingEnv, RewardConfig};
use crate::policy::{epsilon_greedy, masked_argmax, EpsilonSchedule};
use crate::replay::{ReplayBuffer, Transition};
use ams_data::ItemTruth;
use ams_nn::{Adam, FwdCache, Huber, Input, Optimizer, QNet, QNetConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Training schema.
    pub algo: Algo,
    /// Number of episodes (items are drawn uniformly from the train set).
    pub episodes: usize,
    /// Discount factor.
    pub gamma: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Minibatch size.
    pub batch: usize,
    /// Replay capacity.
    pub replay_cap: usize,
    /// Environment steps before learning starts.
    pub warmup: usize,
    /// Hard target-network sync period (in learning steps).
    pub target_sync: usize,
    /// Run a gradient step every `learn_every` environment steps
    /// (2 halves training cost with negligible quality loss).
    pub learn_every: usize,
    /// ε-greedy schedule.
    pub epsilon: EpsilonSchedule,
    /// Hidden layer widths (paper: `[256]`).
    pub hidden: Vec<usize>,
    /// Dimension of the observation (1104 for the standard catalog).
    pub input_dim: usize,
    /// RNG seed.
    pub seed: u64,
    /// Whether the END action is available (the paper's §IV-B addition;
    /// disable for the convergence ablation).
    pub use_end_action: bool,
    /// Reward function.
    pub reward: RewardConfig,
}

impl TrainConfig {
    /// Sensible defaults for the standard 30-model zoo.
    ///
    /// γ defaults to 0.1: the framework's prediction component estimates
    /// the *value of executing a model now* (§IV), which Algorithms 1–2
    /// divide by cost. A near-myopic discount makes `Q(s,m) ≈ E[r(m)|s]` —
    /// the marginal-value estimate those ratios need — while γ near 1 buries
    /// it under a shared return-to-go term and `Q/time` degenerates to
    /// cheapest-first (measured in EXPERIMENTS.md's γ calibration).
    pub fn new(algo: Algo) -> Self {
        Self {
            algo,
            episodes: 1500,
            gamma: 0.1,
            lr: 1e-3,
            batch: 32,
            replay_cap: 50_000,
            warmup: 200,
            target_sync: 250,
            learn_every: 2,
            epsilon: EpsilonSchedule { start: 1.0, end: 0.05, decay_episodes: 800 },
            hidden: vec![256],
            input_dim: 1104,
            seed: 0,
            use_end_action: true,
            reward: RewardConfig::default(),
        }
    }

    /// Quick configuration for unit tests (tiny network, few episodes).
    pub fn fast_test(algo: Algo) -> Self {
        Self {
            episodes: 60,
            warmup: 32,
            target_sync: 50,
            hidden: vec![32],
            epsilon: EpsilonSchedule { start: 1.0, end: 0.1, decay_episodes: 40 },
            ..Self::new(algo)
        }
    }
}

/// Per-episode training statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainStats {
    /// Total reward per episode.
    pub episode_rewards: Vec<f32>,
    /// Episode lengths (number of actions taken).
    pub episode_lengths: Vec<usize>,
    /// Mean Huber loss per episode (0 until learning starts).
    pub episode_losses: Vec<f32>,
    /// Total environment steps.
    pub steps: usize,
    /// Total learning (gradient) steps.
    pub learn_steps: usize,
}

impl TrainStats {
    /// Mean total reward over the trailing `n` episodes.
    pub fn trailing_reward(&self, n: usize) -> f32 {
        let k = self.episode_rewards.len().min(n);
        if k == 0 {
            return 0.0;
        }
        let tail = &self.episode_rewards[self.episode_rewards.len() - k..];
        tail.iter().sum::<f32>() / k as f32
    }
}

/// A trained value-prediction agent: the Q network plus its metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedAgent {
    /// The learned Q network.
    pub net: QNet,
    /// Schema it was trained with.
    pub algo: Algo,
    /// Number of models (actions excluding END).
    pub num_models: usize,
    /// Reward config used in training (θ, thresholds).
    pub reward: RewardConfig,
}

impl TrainedAgent {
    /// Serialize the agent (weights + metadata) to a JSON string.
    ///
    /// The format is stable across runs of the same crate version; it is
    /// how experiments persist agents so training is not repeated.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("agent serializes")
    }

    /// Deserialize an agent from [`TrainedAgent::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Persist the agent to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load an agent persisted by [`TrainedAgent::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Q values for a sparse labeling state; returns one value per action
    /// (END last when present).
    pub fn q_values(&self, state_sparse: &[u32]) -> Vec<f32> {
        self.net.q_values(Input::Sparse(state_sparse))
    }

    /// Q values over *models only* (END dropped), for schedulers.
    pub fn model_q_values(&self, state_sparse: &[u32]) -> Vec<f32> {
        let mut q = self.q_values(state_sparse);
        q.truncate(self.num_models);
        q
    }
}

/// Train an agent on a slice of ground-truth items (the train split).
pub fn train(items: &[ItemTruth], num_models: usize, cfg: &TrainConfig) -> (TrainedAgent, TrainStats) {
    assert!(!items.is_empty(), "empty training set");
    let actions = num_models + usize::from(cfg.use_end_action);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut net = QNet::new(
        QNetConfig {
            input_dim: cfg.input_dim,
            hidden: cfg.hidden.clone(),
            actions,
            dueling: cfg.algo.dueling_head(),
        },
        cfg.seed ^ 0x51ED_CAFE,
    );
    let mut target = net.clone();
    let mut opt = Adam::new(cfg.lr);
    let mut replay = ReplayBuffer::new(cfg.replay_cap);
    let huber = Huber::default();
    let mut stats = TrainStats::default();
    let mut grads = net.zero_grads();
    let mut cache = FwdCache::default();
    let mut act_cache = FwdCache::default();
    let mut tgt_cache = FwdCache::default();

    for ep in 0..cfg.episodes {
        let eps = cfg.epsilon.at(ep);
        let item = &items[rng.gen_range(0..items.len())];
        let mut env = LabelingEnv::new(item, &cfg.reward, num_models, cfg.use_end_action);

        let mut state = env.state_sparse();
        let mut avail = env.available_mask();
        let q = net.forward(Input::Sparse(&state), &mut act_cache);
        let mut action = epsilon_greedy(q, avail, eps, &mut rng);

        let mut ep_reward = 0.0f32;
        let mut ep_len = 0usize;
        let mut ep_loss = 0.0f32;
        let mut ep_loss_n = 0usize;

        loop {
            let step = env.step(action);
            ep_reward += step.reward;
            ep_len += 1;
            stats.steps += 1;

            let next_state = env.state_sparse();
            let next_avail = env.available_mask();
            let next_action = if step.done {
                0
            } else {
                let qn = net.forward(Input::Sparse(&next_state), &mut act_cache);
                epsilon_greedy(qn, next_avail, eps, &mut rng)
            };

            replay.push(Transition {
                state: state.into_boxed_slice(),
                action: action as u8,
                reward: step.reward,
                next_state: next_state.clone().into_boxed_slice(),
                next_avail,
                next_action: next_action as u8,
                done: step.done,
            });

            if replay.len() >= cfg.warmup.max(cfg.batch)
                && stats.steps.is_multiple_of(cfg.learn_every.max(1))
            {
                let loss = learn_step(
                    &mut net,
                    &target,
                    &mut opt,
                    &replay,
                    cfg,
                    &huber,
                    &mut rng,
                    &mut grads,
                    &mut cache,
                    &mut act_cache,
                    &mut tgt_cache,
                );
                ep_loss += loss;
                ep_loss_n += 1;
                stats.learn_steps += 1;
                if stats.learn_steps % cfg.target_sync == 0 {
                    target.copy_from(&net);
                }
            }

            if step.done {
                break;
            }
            state = next_state;
            avail = next_avail;
            debug_assert!(avail != 0);
            action = next_action;
        }

        stats.episode_rewards.push(ep_reward);
        stats.episode_lengths.push(ep_len);
        stats.episode_losses.push(if ep_loss_n > 0 { ep_loss / ep_loss_n as f32 } else { 0.0 });
    }

    (
        TrainedAgent { net, algo: cfg.algo, num_models, reward: cfg.reward.clone() },
        stats,
    )
}

/// One minibatch gradient step; returns the mean Huber loss.
#[allow(clippy::too_many_arguments)]
fn learn_step(
    net: &mut QNet,
    target: &QNet,
    opt: &mut Adam,
    replay: &ReplayBuffer,
    cfg: &TrainConfig,
    huber: &Huber,
    rng: &mut StdRng,
    grads: &mut ams_nn::QNetGrads,
    cache: &mut FwdCache,
    act_cache: &mut FwdCache,
    tgt_cache: &mut FwdCache,
) -> f32 {
    let idx = replay.sample_indices(cfg.batch, rng);
    grads.zero();
    let mut total_loss = 0.0f32;
    let actions = net.actions();
    let mut gq = vec![0.0f32; actions];

    for &i in &idx {
        let tr = replay.get(i);
        // TD target.
        let y = if tr.done {
            tr.reward
        } else {
            let bootstrap = match cfg.algo {
                Algo::Dqn | Algo::DuelingDqn => {
                    let qt = target.forward(Input::Sparse(&tr.next_state), tgt_cache);
                    qt[masked_argmax(qt, tr.next_avail)]
                }
                Algo::DoubleDqn => {
                    let qo = net.forward(Input::Sparse(&tr.next_state), act_cache);
                    let a_star = masked_argmax(qo, tr.next_avail);
                    let qt = target.forward(Input::Sparse(&tr.next_state), tgt_cache);
                    qt[a_star]
                }
                Algo::DeepSarsa => {
                    let qt = target.forward(Input::Sparse(&tr.next_state), tgt_cache);
                    qt[tr.next_action as usize]
                }
            };
            tr.reward + cfg.gamma * bootstrap
        };

        let qs = net.forward(Input::Sparse(&tr.state), cache);
        let residual = qs[tr.action as usize] - y;
        total_loss += huber.loss(residual);
        gq.fill(0.0);
        gq[tr.action as usize] = huber.dloss(residual);
        net.backward(Input::Sparse(&tr.state), cache, &gq, grads);
    }

    grads.scale(1.0 / cfg.batch as f32);
    let g = grads.tensors();
    let mut p = net.tensors_mut();
    opt.step(&mut p, &g);
    total_loss / cfg.batch as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_data::{Dataset, DatasetProfile, TruthTable};
    use ams_models::ModelZoo;

    fn fixture() -> TruthTable {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 30, 21);
        TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5)
    }

    #[test]
    fn training_runs_and_improves_reward() {
        let table = fixture();
        let cfg = TrainConfig { episodes: 150, ..TrainConfig::fast_test(Algo::Dqn) };
        let (agent, stats) = train(table.items(), 30, &cfg);
        assert_eq!(stats.episode_rewards.len(), 150);
        assert_eq!(agent.num_models, 30);
        // With the END action the agent should learn to stop instead of
        // accumulating -1s: late episodes must beat the random-exploration
        // start on average.
        let early: f32 = stats.episode_rewards[..30].iter().sum::<f32>() / 30.0;
        let late = stats.trailing_reward(30);
        assert!(
            late > early,
            "training should improve reward: early {early:.2} late {late:.2}"
        );
    }

    #[test]
    fn all_four_algos_train() {
        let table = fixture();
        for algo in Algo::ALL {
            let cfg = TrainConfig { episodes: 20, ..TrainConfig::fast_test(algo) };
            let (agent, stats) = train(table.items(), 30, &cfg);
            assert_eq!(stats.episode_rewards.len(), 20);
            assert!(stats.learn_steps > 0, "{algo}: learning must start");
            let q = agent.q_values(&[]);
            assert_eq!(q.len(), 31);
            assert!(q.iter().all(|v| v.is_finite()), "{algo}: finite Qs");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let table = fixture();
        let cfg = TrainConfig { episodes: 15, ..TrainConfig::fast_test(Algo::DoubleDqn) };
        let (a1, s1) = train(table.items(), 30, &cfg);
        let (a2, s2) = train(table.items(), 30, &cfg);
        assert_eq!(s1.episode_rewards, s2.episode_rewards);
        let q1 = a1.q_values(&[3, 100, 500]);
        let q2 = a2.q_values(&[3, 100, 500]);
        for (x, y) in q1.iter().zip(&q2) {
            assert!((x - y).abs() < 1e-7);
        }
    }

    #[test]
    fn model_q_values_drop_end() {
        let table = fixture();
        let cfg = TrainConfig { episodes: 5, ..TrainConfig::fast_test(Algo::Dqn) };
        let (agent, _) = train(table.items(), 30, &cfg);
        assert_eq!(agent.q_values(&[]).len(), 31);
        assert_eq!(agent.model_q_values(&[]).len(), 30);
    }

    #[test]
    fn no_end_action_mode_trains() {
        let table = fixture();
        let cfg = TrainConfig {
            episodes: 10,
            use_end_action: false,
            ..TrainConfig::fast_test(Algo::Dqn)
        };
        let (agent, stats) = train(table.items(), 30, &cfg);
        assert_eq!(agent.q_values(&[]).len(), 30);
        // every episode must run all 30 models (no early stop available)
        assert!(stats.episode_lengths.iter().all(|&l| l == 30));
    }

    #[test]
    fn episode_lengths_bounded_by_actions() {
        let table = fixture();
        let cfg = TrainConfig { episodes: 25, ..TrainConfig::fast_test(Algo::DeepSarsa) };
        let (_, stats) = train(table.items(), 30, &cfg);
        assert!(stats.episode_lengths.iter().all(|&l| (1..=31).contains(&l)));
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use ams_data::{Dataset, DatasetProfile, TruthTable};
    use ams_models::ModelZoo;

    #[test]
    fn agent_round_trips_through_json() {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 20, 77);
        let table = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        let cfg = TrainConfig { episodes: 10, ..TrainConfig::fast_test(Algo::DuelingDqn) };
        let (agent, _) = train(table.items(), 30, &cfg);
        let json = agent.to_json();
        let restored = TrainedAgent::from_json(&json).expect("valid json");
        assert_eq!(restored.algo, agent.algo);
        assert_eq!(restored.num_models, agent.num_models);
        let state = [5u32, 100, 800];
        let qa = agent.q_values(&state);
        let qb = restored.q_values(&state);
        for (a, b) in qa.iter().zip(&qb) {
            assert!((a - b).abs() < 1e-7, "weights must round-trip exactly");
        }
    }

    #[test]
    fn agent_saves_and_loads_from_disk() {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 20, 78);
        let table = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        let cfg = TrainConfig { episodes: 5, ..TrainConfig::fast_test(Algo::Dqn) };
        let (agent, _) = train(table.items(), 30, &cfg);
        let path = std::env::temp_dir().join("ams_agent_roundtrip_test.json");
        agent.save(&path).expect("save");
        let restored = TrainedAgent::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(restored.q_values(&[]).len(), 31);
    }

    #[test]
    fn corrupt_file_is_an_error() {
        let path = std::env::temp_dir().join("ams_agent_corrupt_test.json");
        std::fs::write(&path, "{not json").expect("write");
        let err = TrainedAgent::load(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
