//! The DRL training loop (§IV-B): experience replay, target network,
//! Adam on a Huber TD loss, ε-greedy behaviour policy with the END action.

use crate::algo::Algo;
use crate::env::{LabelingEnv, RewardConfig};
use crate::policy::{epsilon_greedy, masked_argmax, EpsilonSchedule};
use crate::replay::{ReplayBuffer, Transition};
use ams_data::ItemTruth;
use ams_nn::{
    Adam, BatchBwdCache, BatchFwdCache, BatchInput, BwdCache, FwdCache, Huber, Input, Mat,
    Optimizer, QNet, QNetConfig, QNetGrads,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Training schema.
    pub algo: Algo,
    /// Number of episodes (items are drawn uniformly from the train set).
    pub episodes: usize,
    /// Discount factor.
    pub gamma: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Minibatch size.
    pub batch: usize,
    /// Replay capacity.
    pub replay_cap: usize,
    /// Environment steps before learning starts.
    pub warmup: usize,
    /// Hard target-network sync period (in learning steps).
    pub target_sync: usize,
    /// Run a gradient step every `learn_every` environment steps
    /// (2 halves training cost with negligible quality loss).
    pub learn_every: usize,
    /// ε-greedy schedule.
    pub epsilon: EpsilonSchedule,
    /// Hidden layer widths (paper: `[256]`).
    pub hidden: Vec<usize>,
    /// Dimension of the observation (1104 for the standard catalog).
    pub input_dim: usize,
    /// RNG seed.
    pub seed: u64,
    /// Whether the END action is available (the paper's §IV-B addition;
    /// disable for the convergence ablation).
    pub use_end_action: bool,
    /// Reward function.
    pub reward: RewardConfig,
}

impl TrainConfig {
    /// Sensible defaults for the standard 30-model zoo.
    ///
    /// γ defaults to 0.1: the framework's prediction component estimates
    /// the *value of executing a model now* (§IV), which Algorithms 1–2
    /// divide by cost. A near-myopic discount makes `Q(s,m) ≈ E[r(m)|s]` —
    /// the marginal-value estimate those ratios need — while γ near 1 buries
    /// it under a shared return-to-go term and `Q/time` degenerates to
    /// cheapest-first (measured in EXPERIMENTS.md's γ calibration).
    pub fn new(algo: Algo) -> Self {
        Self {
            algo,
            episodes: 1500,
            gamma: 0.1,
            lr: 1e-3,
            batch: 32,
            replay_cap: 50_000,
            warmup: 200,
            target_sync: 250,
            learn_every: 2,
            epsilon: EpsilonSchedule {
                start: 1.0,
                end: 0.05,
                decay_episodes: 800,
            },
            hidden: vec![256],
            input_dim: 1104,
            seed: 0,
            use_end_action: true,
            reward: RewardConfig::default(),
        }
    }

    /// Quick configuration for unit tests (tiny network, few episodes).
    pub fn fast_test(algo: Algo) -> Self {
        Self {
            episodes: 60,
            warmup: 32,
            target_sync: 50,
            hidden: vec![32],
            epsilon: EpsilonSchedule {
                start: 1.0,
                end: 0.1,
                decay_episodes: 40,
            },
            ..Self::new(algo)
        }
    }
}

/// Per-episode training statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainStats {
    /// Total reward per episode.
    pub episode_rewards: Vec<f32>,
    /// Episode lengths (number of actions taken).
    pub episode_lengths: Vec<usize>,
    /// Mean Huber loss per episode (0 until learning starts).
    pub episode_losses: Vec<f32>,
    /// Total environment steps.
    pub steps: usize,
    /// Total learning (gradient) steps.
    pub learn_steps: usize,
}

impl TrainStats {
    /// Mean total reward over the trailing `n` episodes.
    pub fn trailing_reward(&self, n: usize) -> f32 {
        let k = self.episode_rewards.len().min(n);
        if k == 0 {
            return 0.0;
        }
        let tail = &self.episode_rewards[self.episode_rewards.len() - k..];
        tail.iter().sum::<f32>() / k as f32
    }
}

/// A trained value-prediction agent: the Q network plus its metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainedAgent {
    /// The learned Q network.
    pub net: QNet,
    /// Schema it was trained with.
    pub algo: Algo,
    /// Number of models (actions excluding END).
    pub num_models: usize,
    /// Reward config used in training (θ, thresholds).
    pub reward: RewardConfig,
}

impl TrainedAgent {
    /// Serialize the agent (weights + metadata) to a JSON string.
    ///
    /// The format is stable across runs of the same crate version; it is
    /// how experiments persist agents so training is not repeated.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("agent serializes")
    }

    /// Deserialize an agent from [`TrainedAgent::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Persist the agent to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Load an agent persisted by [`TrainedAgent::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Q values for a sparse labeling state; returns one value per action
    /// (END last when present).
    pub fn q_values(&self, state_sparse: &[u32]) -> Vec<f32> {
        self.net.q_values(Input::Sparse(state_sparse))
    }

    /// Q values through a caller-provided forward cache — the
    /// allocation-free variant of [`TrainedAgent::q_values`] for rollout
    /// and scheduling hot loops.
    pub fn q_values_cached<'c>(&self, state_sparse: &[u32], cache: &'c mut FwdCache) -> &'c [f32] {
        self.net.forward(Input::Sparse(state_sparse), cache)
    }

    /// Q values over *models only* (END dropped), for schedulers.
    pub fn model_q_values(&self, state_sparse: &[u32]) -> Vec<f32> {
        let mut q = self.q_values(state_sparse);
        q.truncate(self.num_models);
        q
    }
}

/// Train an agent on a slice of ground-truth items (the train split).
pub fn train(
    items: &[ItemTruth],
    num_models: usize,
    cfg: &TrainConfig,
) -> (TrainedAgent, TrainStats) {
    assert!(!items.is_empty(), "empty training set");
    let actions = num_models + usize::from(cfg.use_end_action);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut net = QNet::new(
        QNetConfig {
            input_dim: cfg.input_dim,
            hidden: cfg.hidden.clone(),
            actions,
            dueling: cfg.algo.dueling_head(),
        },
        cfg.seed ^ 0x51ED_CAFE,
    );
    let mut target = net.clone();
    let mut opt = Adam::new(cfg.lr);
    let mut replay = ReplayBuffer::new(cfg.replay_cap);
    let huber = Huber::default();
    let mut stats = TrainStats::default();
    let mut scratch = BatchScratch::new(&net);
    let mut act_cache = FwdCache::default();
    let mut sparse_scratch: Vec<u32> = Vec::new();

    for ep in 0..cfg.episodes {
        let eps = cfg.epsilon.at(ep);
        let item = &items[rng.gen_range(0..items.len())];
        let mut env = LabelingEnv::new(item, &cfg.reward, num_models, cfg.use_end_action);

        let mut state: Arc<[u32]> = {
            env.state().write_sparse(&mut sparse_scratch);
            Arc::from(&sparse_scratch[..])
        };
        let mut avail = env.available_mask();
        let q = net.forward(Input::Sparse(&state), &mut act_cache);
        let mut action = epsilon_greedy(q, avail, eps, &mut rng);

        let mut ep_reward = 0.0f32;
        let mut ep_len = 0usize;
        let mut ep_loss = 0.0f32;
        let mut ep_loss_n = 0usize;

        loop {
            let step = env.step(action);
            ep_reward += step.reward;
            ep_len += 1;
            stats.steps += 1;

            let next_state: Arc<[u32]> = {
                env.state().write_sparse(&mut sparse_scratch);
                Arc::from(&sparse_scratch[..])
            };
            let next_avail = env.available_mask();
            let next_action = if step.done {
                0
            } else {
                let qn = net.forward(Input::Sparse(&next_state), &mut act_cache);
                epsilon_greedy(qn, next_avail, eps, &mut rng)
            };

            replay.push(Transition {
                state,
                action: action as u8,
                reward: step.reward,
                next_state: Arc::clone(&next_state),
                next_avail,
                next_action: next_action as u8,
                done: step.done,
            });

            if replay.len() >= cfg.warmup.max(cfg.batch)
                && stats.steps.is_multiple_of(cfg.learn_every.max(1))
            {
                let loss = learn_step_batched(
                    &mut net,
                    &target,
                    &mut opt,
                    &replay,
                    cfg,
                    &huber,
                    &mut rng,
                    &mut scratch,
                );
                ep_loss += loss;
                ep_loss_n += 1;
                stats.learn_steps += 1;
                if stats.learn_steps % cfg.target_sync == 0 {
                    target.copy_from(&net);
                }
            }

            if step.done {
                break;
            }
            state = next_state;
            avail = next_avail;
            debug_assert!(avail != 0);
            action = next_action;
        }

        stats.episode_rewards.push(ep_reward);
        stats.episode_lengths.push(ep_len);
        stats.episode_losses.push(if ep_loss_n > 0 {
            ep_loss / ep_loss_n as f32
        } else {
            0.0
        });
    }

    (
        TrainedAgent {
            net,
            algo: cfg.algo,
            num_models,
            reward: cfg.reward.clone(),
        },
        stats,
    )
}

/// Reusable buffers for [`learn_step_scalar`]: gradient accumulators and
/// forward/backward caches, so a gradient step performs no heap allocation
/// beyond the sampled index vector.
pub struct ScalarScratch {
    grads: QNetGrads,
    cache: FwdCache,
    act_cache: FwdCache,
    tgt_cache: FwdCache,
    bwd: BwdCache,
    gq: Vec<f32>,
}

impl ScalarScratch {
    /// Scratch shaped for `net`.
    pub fn new(net: &QNet) -> Self {
        Self {
            grads: net.zero_grads(),
            cache: FwdCache::default(),
            act_cache: FwdCache::default(),
            tgt_cache: FwdCache::default(),
            bwd: BwdCache::default(),
            gq: vec![0.0; net.actions()],
        }
    }
}

/// One minibatch gradient step via per-sample scalar passes; returns the
/// mean Huber loss.
///
/// This is the pre-batching reference implementation: ~`2 x batch` scalar
/// network passes per step. [`learn_step_batched`] computes the same update
/// with one batched pass per network; this version is kept as the baseline
/// the `ams-bench` hot-path benchmark compares against.
#[allow(clippy::too_many_arguments)] // mirrors learn_step_batched's signature
pub fn learn_step_scalar(
    net: &mut QNet,
    target: &QNet,
    opt: &mut Adam,
    replay: &ReplayBuffer,
    cfg: &TrainConfig,
    huber: &Huber,
    rng: &mut StdRng,
    scratch: &mut ScalarScratch,
) -> f32 {
    let idx = replay.sample_indices(cfg.batch, rng);
    let grads = &mut scratch.grads;
    grads.zero();
    let mut total_loss = 0.0f32;
    let gq = &mut scratch.gq;
    debug_assert_eq!(gq.len(), net.actions());

    for &i in &idx {
        let tr = replay.get(i);
        // TD target.
        let y = if tr.done {
            tr.reward
        } else {
            let bootstrap = match cfg.algo {
                Algo::Dqn | Algo::DuelingDqn => {
                    let qt = target.forward(Input::Sparse(&tr.next_state), &mut scratch.tgt_cache);
                    qt[masked_argmax(qt, tr.next_avail)]
                }
                Algo::DoubleDqn => {
                    let qo = net.forward(Input::Sparse(&tr.next_state), &mut scratch.act_cache);
                    let a_star = masked_argmax(qo, tr.next_avail);
                    let qt = target.forward(Input::Sparse(&tr.next_state), &mut scratch.tgt_cache);
                    qt[a_star]
                }
                Algo::DeepSarsa => {
                    let qt = target.forward(Input::Sparse(&tr.next_state), &mut scratch.tgt_cache);
                    qt[tr.next_action as usize]
                }
            };
            tr.reward + cfg.gamma * bootstrap
        };

        let qs = net.forward(Input::Sparse(&tr.state), &mut scratch.cache);
        let residual = qs[tr.action as usize] - y;
        total_loss += huber.loss(residual);
        // gq is one-hot: write the single live entry, clear it after the
        // backward pass instead of re-zeroing the whole vector per sample.
        let a = tr.action as usize;
        gq[a] = huber.dloss(residual);
        net.backward(
            Input::Sparse(&tr.state),
            &scratch.cache,
            gq,
            grads,
            &mut scratch.bwd,
        );
        gq[a] = 0.0;
    }

    grads.scale(1.0 / cfg.batch as f32);
    let g = grads.tensors();
    let mut p = net.tensors_mut();
    opt.step(&mut p, &g);
    total_loss / cfg.batch as f32
}

/// Reusable buffers for [`learn_step_batched`].
pub struct BatchScratch {
    grads: QNetGrads,
    q_cache: BatchFwdCache,
    next_act_cache: BatchFwdCache,
    tgt_cache: BatchFwdCache,
    bwd: BatchBwdCache,
    gq: Mat,
    y: Vec<f32>,
    a_star: Vec<usize>,
}

impl BatchScratch {
    /// Scratch shaped for `net`.
    pub fn new(net: &QNet) -> Self {
        Self {
            grads: net.zero_grads(),
            q_cache: BatchFwdCache::default(),
            next_act_cache: BatchFwdCache::default(),
            tgt_cache: BatchFwdCache::default(),
            bwd: BatchBwdCache::default(),
            gq: Mat::zeros(0, 0),
            y: Vec::new(),
            a_star: Vec::new(),
        }
    }
}

/// One minibatch gradient step via batched passes; returns the mean Huber
/// loss.
///
/// The sampled transitions are gathered into batch matrices and each
/// network runs exactly once per role — one batched forward of the target
/// net (plus one of the online net for DoubleDQN's argmax), one batched
/// forward of the online net on the current states, and one batched
/// backward — instead of the ~`2 x batch` scalar passes of
/// [`learn_step_scalar`]. Sampling consumes the same RNG stream and the
/// batched kernels agree with the scalar ones to float rounding (the head
/// kernels reassociate their reductions, and `1/batch` is folded into the
/// output gradient instead of a post-hoc rescale), so training
/// trajectories match the scalar implementation up to last-ULP noise —
/// asserted by the equivalence test over identical RNG streams.
#[allow(clippy::too_many_arguments)] // net/target/opt/replay are distinct roles
pub fn learn_step_batched(
    net: &mut QNet,
    target: &QNet,
    opt: &mut Adam,
    replay: &ReplayBuffer,
    cfg: &TrainConfig,
    huber: &Huber,
    rng: &mut StdRng,
    scratch: &mut BatchScratch,
) -> f32 {
    let idx = replay.sample_indices(cfg.batch, rng);
    let batch = idx.len();
    let actions = net.actions();

    // Gather the minibatch as per-sample sparse rows (no copies).
    let states: Vec<&[u32]> = idx.iter().map(|&i| &*replay.get(i).state).collect();
    let next_states: Vec<&[u32]> = idx.iter().map(|&i| &*replay.get(i).next_state).collect();

    // TD targets from one batched pass over the next states.
    scratch.y.resize(batch, 0.0);
    if cfg.algo == Algo::DoubleDqn {
        scratch.a_star.resize(batch, 0);
        let qo = net.forward_batch(
            BatchInput::Sparse(&next_states),
            &mut scratch.next_act_cache,
        );
        for (s, &i) in idx.iter().enumerate() {
            let tr = replay.get(i);
            if !tr.done {
                scratch.a_star[s] = masked_argmax(qo.row(s), tr.next_avail);
            }
        }
    }
    let qt = target.forward_batch(BatchInput::Sparse(&next_states), &mut scratch.tgt_cache);
    for (s, &i) in idx.iter().enumerate() {
        let tr = replay.get(i);
        scratch.y[s] = if tr.done {
            tr.reward
        } else {
            let row = qt.row(s);
            let bootstrap = match cfg.algo {
                Algo::Dqn | Algo::DuelingDqn => row[masked_argmax(row, tr.next_avail)],
                Algo::DoubleDqn => row[scratch.a_star[s]],
                Algo::DeepSarsa => row[tr.next_action as usize],
            };
            tr.reward + cfg.gamma * bootstrap
        };
    }

    // One batched forward over the current states, then the loss gradient.
    let q = net.forward_batch(BatchInput::Sparse(&states), &mut scratch.q_cache);
    let mut total_loss = 0.0f32;
    let inv_batch = 1.0 / cfg.batch as f32;
    scratch.gq.resize_zeroed(batch, actions);
    for (s, &i) in idx.iter().enumerate() {
        let tr = replay.get(i);
        let a = tr.action as usize;
        let residual = q.get(s, a) - scratch.y[s];
        total_loss += huber.loss(residual);
        // 1/batch is folded in here, replacing the full-gradient rescale
        // sweep of the scalar path.
        *scratch.gq.get_mut(s, a) = huber.dloss(residual) * inv_batch;
    }

    // One batched backward, then the optimizer step.
    scratch.grads.zero();
    net.backward_batch(
        BatchInput::Sparse(&states),
        &scratch.q_cache,
        &scratch.gq,
        &mut scratch.grads,
        &mut scratch.bwd,
    );
    let g = scratch.grads.tensors();
    let mut p = net.tensors_mut();
    opt.step(&mut p, &g);
    total_loss / cfg.batch as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_data::{Dataset, DatasetProfile, TruthTable};
    use ams_models::ModelZoo;

    fn fixture() -> TruthTable {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 30, 21);
        TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5)
    }

    #[test]
    fn training_runs_and_improves_reward() {
        let table = fixture();
        let cfg = TrainConfig {
            episodes: 150,
            ..TrainConfig::fast_test(Algo::Dqn)
        };
        let (agent, stats) = train(table.items(), 30, &cfg);
        assert_eq!(stats.episode_rewards.len(), 150);
        assert_eq!(agent.num_models, 30);
        // With the END action the agent should learn to stop instead of
        // accumulating -1s: late episodes must beat the random-exploration
        // start on average.
        let early: f32 = stats.episode_rewards[..30].iter().sum::<f32>() / 30.0;
        let late = stats.trailing_reward(30);
        assert!(
            late > early,
            "training should improve reward: early {early:.2} late {late:.2}"
        );
    }

    #[test]
    fn all_four_algos_train() {
        let table = fixture();
        for algo in Algo::ALL {
            let cfg = TrainConfig {
                episodes: 20,
                ..TrainConfig::fast_test(algo)
            };
            let (agent, stats) = train(table.items(), 30, &cfg);
            assert_eq!(stats.episode_rewards.len(), 20);
            assert!(stats.learn_steps > 0, "{algo}: learning must start");
            let q = agent.q_values(&[]);
            assert_eq!(q.len(), 31);
            assert!(q.iter().all(|v| v.is_finite()), "{algo}: finite Qs");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let table = fixture();
        let cfg = TrainConfig {
            episodes: 15,
            ..TrainConfig::fast_test(Algo::DoubleDqn)
        };
        let (a1, s1) = train(table.items(), 30, &cfg);
        let (a2, s2) = train(table.items(), 30, &cfg);
        assert_eq!(s1.episode_rewards, s2.episode_rewards);
        let q1 = a1.q_values(&[3, 100, 500]);
        let q2 = a2.q_values(&[3, 100, 500]);
        for (x, y) in q1.iter().zip(&q2) {
            assert!((x - y).abs() < 1e-7);
        }
    }

    #[test]
    fn model_q_values_drop_end() {
        let table = fixture();
        let cfg = TrainConfig {
            episodes: 5,
            ..TrainConfig::fast_test(Algo::Dqn)
        };
        let (agent, _) = train(table.items(), 30, &cfg);
        assert_eq!(agent.q_values(&[]).len(), 31);
        assert_eq!(agent.model_q_values(&[]).len(), 30);
    }

    #[test]
    fn no_end_action_mode_trains() {
        let table = fixture();
        let cfg = TrainConfig {
            episodes: 10,
            use_end_action: false,
            ..TrainConfig::fast_test(Algo::Dqn)
        };
        let (agent, stats) = train(table.items(), 30, &cfg);
        assert_eq!(agent.q_values(&[]).len(), 30);
        // every episode must run all 30 models (no early stop available)
        assert!(stats.episode_lengths.iter().all(|&l| l == 30));
    }

    /// The batched learn step computes the same update as the scalar
    /// reference: starting from identical nets, replays and RNG streams,
    /// the learned Q values stay within float-rounding distance.
    #[test]
    fn batched_learn_step_matches_scalar() {
        let table = fixture();
        for algo in Algo::ALL {
            let cfg = TrainConfig {
                batch: 16,
                ..TrainConfig::fast_test(algo)
            };
            let actions = 30 + usize::from(cfg.use_end_action);
            let arch = QNetConfig {
                input_dim: cfg.input_dim,
                hidden: cfg.hidden.clone(),
                actions,
                dueling: algo.dueling_head(),
            };
            let mut net_s = QNet::new(arch.clone(), 99);
            let mut net_b = net_s.clone();
            let target = net_s.clone();
            let huber = Huber::default();

            // Shared replay filled from a few random episodes.
            let mut replay = ReplayBuffer::new(1024);
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..4 {
                let item = &table.items()[rng.gen_range(0..table.len())];
                let mut env = LabelingEnv::new(item, &cfg.reward, 30, cfg.use_end_action);
                let mut state: Arc<[u32]> = env.state_sparse().into();
                let zeros = vec![0.0f32; actions];
                loop {
                    let avail = env.available_mask();
                    let action = epsilon_greedy(&zeros, avail, 1.0, &mut rng);
                    let step = env.step(action);
                    let next_state: Arc<[u32]> = env.state_sparse().into();
                    replay.push(Transition {
                        state: Arc::clone(&state),
                        action: action as u8,
                        reward: step.reward,
                        next_state: Arc::clone(&next_state),
                        next_avail: env.available_mask(),
                        next_action: 0,
                        done: step.done,
                    });
                    if step.done {
                        break;
                    }
                    state = next_state;
                }
            }

            let mut opt_s = Adam::new(cfg.lr);
            let mut opt_b = Adam::new(cfg.lr);
            let mut rng_s = StdRng::seed_from_u64(17);
            let mut rng_b = StdRng::seed_from_u64(17);
            let mut scratch_s = ScalarScratch::new(&net_s);
            let mut scratch_b = BatchScratch::new(&net_b);
            for _ in 0..5 {
                let ls = learn_step_scalar(
                    &mut net_s,
                    &target,
                    &mut opt_s,
                    &replay,
                    &cfg,
                    &huber,
                    &mut rng_s,
                    &mut scratch_s,
                );
                let lb = learn_step_batched(
                    &mut net_b,
                    &target,
                    &mut opt_b,
                    &replay,
                    &cfg,
                    &huber,
                    &mut rng_b,
                    &mut scratch_b,
                );
                assert!((ls - lb).abs() < 1e-4, "{algo}: loss {ls} vs {lb}");
            }
            let probe = [2u32, 40, 700];
            let qs = net_s.q_values(Input::Sparse(&probe));
            let qb = net_b.q_values(Input::Sparse(&probe));
            for (a, b) in qs.iter().zip(&qb) {
                assert!((a - b).abs() < 1e-3, "{algo}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn episode_lengths_bounded_by_actions() {
        let table = fixture();
        let cfg = TrainConfig {
            episodes: 25,
            ..TrainConfig::fast_test(Algo::DeepSarsa)
        };
        let (_, stats) = train(table.items(), 30, &cfg);
        assert!(stats.episode_lengths.iter().all(|&l| (1..=31).contains(&l)));
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use ams_data::{Dataset, DatasetProfile, TruthTable};
    use ams_models::ModelZoo;

    #[test]
    fn agent_round_trips_through_json() {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 20, 77);
        let table = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        let cfg = TrainConfig {
            episodes: 10,
            ..TrainConfig::fast_test(Algo::DuelingDqn)
        };
        let (agent, _) = train(table.items(), 30, &cfg);
        let json = agent.to_json();
        let restored = TrainedAgent::from_json(&json).expect("valid json");
        assert_eq!(restored.algo, agent.algo);
        assert_eq!(restored.num_models, agent.num_models);
        let state = [5u32, 100, 800];
        let qa = agent.q_values(&state);
        let qb = restored.q_values(&state);
        for (a, b) in qa.iter().zip(&qb) {
            assert!((a - b).abs() < 1e-7, "weights must round-trip exactly");
        }
    }

    #[test]
    fn agent_saves_and_loads_from_disk() {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 20, 78);
        let table = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        let cfg = TrainConfig {
            episodes: 5,
            ..TrainConfig::fast_test(Algo::Dqn)
        };
        let (agent, _) = train(table.items(), 30, &cfg);
        let path = std::env::temp_dir().join("ams_agent_roundtrip_test.json");
        agent.save(&path).expect("save");
        let restored = TrainedAgent::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(restored.q_values(&[]).len(), 31);
    }

    #[test]
    fn corrupt_file_is_an_error() {
        let path = std::env::temp_dir().join("ams_agent_corrupt_test.json");
        std::fs::write(&path, "{not json").expect("write");
        let err = TrainedAgent::load(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
