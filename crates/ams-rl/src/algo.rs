//! The four DRL training schemas compared in §VI-B.

use serde::{Deserialize, Serialize};

/// Training schema for the Q-value network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algo {
    /// Original DQN (Mnih et al.): off-policy, max-target on a target net.
    Dqn,
    /// Double DQN (van Hasselt et al.): online net selects the argmax,
    /// target net evaluates it — reduces overestimation.
    DoubleDqn,
    /// Dueling DQN (Wang et al.): value/advantage head, DQN-style target.
    DuelingDqn,
    /// Deep SARSA: on-policy — the target bootstraps on the action the
    /// behaviour policy actually took next.
    DeepSarsa,
}

impl Algo {
    /// All four schemas in the paper's presentation order.
    pub const ALL: [Algo; 4] = [
        Algo::Dqn,
        Algo::DoubleDqn,
        Algo::DuelingDqn,
        Algo::DeepSarsa,
    ];

    /// Whether this schema uses the dueling network head.
    pub fn dueling_head(self) -> bool {
        matches!(self, Algo::DuelingDqn)
    }

    /// Display name as used in the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Algo::Dqn => "DQN",
            Algo::DoubleDqn => "DoubleDQN",
            Algo::DuelingDqn => "DuelingDQN",
            Algo::DeepSarsa => "DeepSARSA",
        }
    }
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_dueling_uses_dueling_head() {
        assert!(Algo::DuelingDqn.dueling_head());
        assert!(!Algo::Dqn.dueling_head());
        assert!(!Algo::DoubleDqn.dueling_head());
        assert!(!Algo::DeepSarsa.dueling_head());
    }

    #[test]
    fn names_match_paper_legends() {
        let names: Vec<&str> = Algo::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["DQN", "DoubleDQN", "DuelingDQN", "DeepSARSA"]);
    }
}
