//! Experience replay over sparse-state transitions.

use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// One stored transition `(s, a, r, s', …)`.
///
/// States are stored sparsely (active label indices); `next_avail` records
/// which actions were available at `s'` so the TD target can mask executed
/// models; `next_action` records the action actually taken at `s'` (used by
/// the on-policy DeepSARSA target). States are shared `Arc` slices: one
/// step's `next_state` *is* the following step's `state`, so sharing the
/// buffer halves the per-step copies the trainer makes.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Sparse active-label indices of the state.
    pub state: Arc<[u32]>,
    /// Action taken.
    pub action: u8,
    /// Reward received.
    pub reward: f32,
    /// Sparse active-label indices of the next state.
    pub next_state: Arc<[u32]>,
    /// Availability mask at the next state.
    pub next_avail: u64,
    /// Action taken at the next state (meaningless when `done`).
    pub next_action: u8,
    /// Whether the episode terminated at `s'`.
    pub done: bool,
}

/// Fixed-capacity ring-buffer replay memory with uniform sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    buf: Vec<Transition>,
    cap: usize,
    pos: usize,
    pushed: u64,
}

impl ReplayBuffer {
    /// Buffer holding at most `cap` transitions.
    ///
    /// # Panics
    /// Panics when `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "replay capacity must be positive");
        Self {
            buf: Vec::with_capacity(cap.min(4096)),
            cap,
            pos: 0,
            pushed: 0,
        }
    }

    /// Insert a transition, evicting the oldest when full.
    pub fn push(&mut self, t: Transition) {
        if self.buf.len() < self.cap {
            self.buf.push(t);
        } else {
            self.buf[self.pos] = t;
        }
        self.pos = (self.pos + 1) % self.cap;
        self.pushed += 1;
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total number of pushes ever (≥ `len`).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// A stored transition.
    pub fn get(&self, i: usize) -> &Transition {
        &self.buf[i]
    }

    /// Uniformly sample `batch` indices (with replacement).
    pub fn sample_indices(&self, batch: usize, rng: &mut StdRng) -> Vec<usize> {
        assert!(!self.buf.is_empty(), "cannot sample an empty buffer");
        (0..batch)
            .map(|_| rng.gen_range(0..self.buf.len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn t(a: u8) -> Transition {
        Transition {
            state: Arc::new([1, 2]),
            action: a,
            reward: 0.5,
            next_state: Arc::new([1, 2, 3]),
            next_avail: 0b111,
            next_action: 0,
            done: false,
        }
    }

    #[test]
    fn fills_then_wraps() {
        let mut rb = ReplayBuffer::new(3);
        for a in 0..5u8 {
            rb.push(t(a));
        }
        assert_eq!(rb.len(), 3);
        assert_eq!(rb.pushed(), 5);
        // oldest entries (0, 1) evicted; 2, 3, 4 remain
        let actions: Vec<u8> = (0..3).map(|i| rb.get(i).action).collect();
        let mut sorted = actions.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2, 3, 4]);
    }

    #[test]
    fn sampling_is_in_bounds_and_deterministic() {
        let mut rb = ReplayBuffer::new(10);
        for a in 0..7u8 {
            rb.push(t(a));
        }
        let mut rng1 = StdRng::seed_from_u64(9);
        let mut rng2 = StdRng::seed_from_u64(9);
        let s1 = rb.sample_indices(32, &mut rng1);
        let s2 = rb.sample_indices(32, &mut rng2);
        assert_eq!(s1, s2);
        assert!(s1.iter().all(|&i| i < 7));
        assert_eq!(s1.len(), 32);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sampling_empty_panics() {
        let rb = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rb.sample_indices(1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = ReplayBuffer::new(0);
    }
}
