//! The labeling MDP (§IV of the paper).
//!
//! * **Observation**: the labeling state — a binary vector over the 1104
//!   labels, bit `i` set when label `i` has been output (at or above the
//!   value threshold) by an executed model. Encoded sparsely.
//! * **Actions**: one per model, plus an **END** action (index
//!   `num_models`) whose reward is 0 and which terminates the episode. END
//!   exists only for training (§IV-B); schedulers stop on resource
//!   exhaustion instead.
//! * **Reward** (Eq. 3): for a model whose execution yields new valuable
//!   labels `O'`, `r = ln(θ_m · Σ_{l∈O'} conf_l + 1)` under the default
//!   [`Smoothing::Log`]; a model yielding nothing new is punished with −1.

use ams_data::ItemTruth;
use ams_models::{LabelSet, ModelId};
use serde::{Deserialize, Serialize};

/// Reward smoothing applied to the new-label confidence mass (§IV-A
/// discusses log vs other smoothings; kept configurable for the ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Smoothing {
    /// `ln(θ · Σconf + 1)` — the paper's choice.
    Log,
    /// Mean confidence of new labels, scaled by θ.
    Mean,
    /// Raw sum `θ · Σconf` (exhibits the label-count bias the paper warns
    /// about — a face-landmark model outputs up to 70 labels at once).
    Sum,
}

/// Reward-function configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Confidence threshold for a label to count as valuable.
    pub value_threshold: f32,
    /// Per-model priority θ_m (§IV-A / §VI-E). Empty means all-ones.
    pub theta: Vec<f32>,
    /// Smoothing of the new-label confidence mass.
    pub smoothing: Smoothing,
    /// Reward when a model outputs nothing new (the paper uses −1).
    pub punishment: f32,
    /// Reward of the END action (the paper uses 0).
    pub end_reward: f32,
}

impl Default for RewardConfig {
    fn default() -> Self {
        Self {
            value_threshold: ams_data::truth::DEFAULT_VALUE_THRESHOLD,
            theta: Vec::new(),
            smoothing: Smoothing::Log,
            punishment: -1.0,
            end_reward: 0.0,
        }
    }
}

impl RewardConfig {
    /// θ for model `m` (1.0 when unset).
    pub fn theta_of(&self, m: ModelId) -> f32 {
        self.theta.get(m.index()).copied().unwrap_or(1.0)
    }

    /// A config with one model's θ raised (the §VI-E experiment).
    pub fn with_theta(mut self, m: ModelId, theta: f32, num_models: usize) -> Self {
        if self.theta.len() < num_models {
            self.theta.resize(num_models, 1.0);
        }
        self.theta[m.index()] = theta;
        self
    }
}

/// Result of one environment step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepResult {
    /// Reward of the action just taken.
    pub reward: f32,
    /// Whether the episode terminated (END taken, or all models executed).
    pub done: bool,
}

/// One episode of the labeling MDP over a single data item.
#[derive(Debug, Clone)]
pub struct LabelingEnv<'a> {
    item: &'a ItemTruth,
    cfg: &'a RewardConfig,
    num_models: usize,
    use_end_action: bool,
    state: LabelSet,
    executed: u64,
    steps: usize,
    finished: bool,
}

impl<'a> LabelingEnv<'a> {
    /// Fresh episode on `item`.
    pub fn new(
        item: &'a ItemTruth,
        cfg: &'a RewardConfig,
        num_models: usize,
        use_end_action: bool,
    ) -> Self {
        assert!(num_models <= 63, "availability mask is u64");
        Self {
            item,
            cfg,
            num_models,
            use_end_action,
            state: LabelSet::new(item.universe()),
            executed: 0,
            steps: 0,
            finished: false,
        }
    }

    /// Number of actions (models + END when enabled).
    pub fn num_actions(&self) -> usize {
        self.num_models + usize::from(self.use_end_action)
    }

    /// Index of the END action.
    pub fn end_action(&self) -> usize {
        self.num_models
    }

    /// The current labeling state as sparse active-label indices.
    pub fn state_sparse(&self) -> Vec<u32> {
        self.state.to_sparse()
    }

    /// The current labeling state set.
    pub fn state(&self) -> &LabelSet {
        &self.state
    }

    /// Bitmask of available actions: unexecuted models, plus END if enabled.
    pub fn available_mask(&self) -> u64 {
        if self.finished {
            return 0;
        }
        let models = !self.executed & ((1u64 << self.num_models) - 1);
        if self.use_end_action {
            models | (1u64 << self.num_models)
        } else {
            models
        }
    }

    /// Whether model `m` has been executed this episode.
    pub fn is_executed(&self, m: ModelId) -> bool {
        self.executed >> m.index() & 1 == 1
    }

    /// Number of steps taken.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Whether the episode has terminated.
    pub fn is_done(&self) -> bool {
        self.finished
    }

    /// Recall rate of the value recovered so far.
    pub fn recall(&self) -> f64 {
        if self.item.total_value <= 0.0 {
            return 1.0;
        }
        let recovered: f64 = self
            .item
            .valuable
            .iter()
            .filter(|&&(l, _)| self.state.contains(l))
            .map(|&(_, p)| f64::from(p))
            .sum();
        recovered / self.item.total_value
    }

    /// Take `action`; returns the reward and termination flag.
    ///
    /// # Panics
    /// Panics on unavailable actions (executed models, out-of-range ids,
    /// or any action after termination).
    pub fn step(&mut self, action: usize) -> StepResult {
        assert!(!self.finished, "episode already finished");
        assert!(
            self.available_mask() >> action & 1 == 1,
            "action {action} unavailable (mask {:b})",
            self.available_mask()
        );
        self.steps += 1;
        if self.use_end_action && action == self.end_action() {
            self.finished = true;
            return StepResult {
                reward: self.cfg.end_reward,
                done: true,
            };
        }

        let m = ModelId(action as u8);
        self.executed |= 1 << action;

        // O'(m, d): this model's valuable detections not yet in the state.
        let t = self.cfg.value_threshold;
        let mut new_conf_sum = 0.0f64;
        let mut new_count = 0usize;
        for d in self.item.output(m).valuable(t) {
            if !self.state.contains(d.label) {
                new_conf_sum += f64::from(d.confidence);
                new_count += 1;
            }
        }
        self.item.apply(&mut self.state, m, t);

        let reward = if new_count == 0 {
            self.cfg.punishment
        } else {
            let theta = f64::from(self.cfg.theta_of(m));
            match self.cfg.smoothing {
                Smoothing::Log => ((theta * new_conf_sum) + 1.0).ln() as f32,
                Smoothing::Mean => (theta * new_conf_sum / new_count as f64) as f32,
                Smoothing::Sum => (theta * new_conf_sum) as f32,
            }
        };

        let all_done = self.executed == (1u64 << self.num_models) - 1;
        if all_done {
            self.finished = true;
        }
        StepResult {
            reward,
            done: self.finished,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_data::{Dataset, DatasetProfile, TruthTable};
    use ams_models::ModelZoo;

    fn table() -> TruthTable {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 12, 5);
        TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5)
    }

    #[test]
    fn fresh_env_has_empty_state_and_full_mask() {
        let t = table();
        let cfg = RewardConfig::default();
        let env = LabelingEnv::new(t.item(0), &cfg, 30, true);
        assert!(env.state_sparse().is_empty());
        assert_eq!(env.available_mask().count_ones(), 31);
        assert_eq!(env.num_actions(), 31);
        assert!(!env.is_done());
    }

    #[test]
    fn end_action_terminates_with_zero_reward() {
        let t = table();
        let cfg = RewardConfig::default();
        let mut env = LabelingEnv::new(t.item(0), &cfg, 30, true);
        let r = env.step(30);
        assert_eq!(
            r,
            StepResult {
                reward: 0.0,
                done: true
            }
        );
        assert_eq!(env.available_mask(), 0);
    }

    #[test]
    fn duplicate_model_unavailable() {
        let t = table();
        let cfg = RewardConfig::default();
        let mut env = LabelingEnv::new(t.item(0), &cfg, 30, true);
        env.step(3);
        assert!(env.is_executed(ModelId(3)));
        assert_eq!(env.available_mask() >> 3 & 1, 0);
    }

    #[test]
    #[should_panic(expected = "unavailable")]
    fn stepping_executed_model_panics() {
        let t = table();
        let cfg = RewardConfig::default();
        let mut env = LabelingEnv::new(t.item(0), &cfg, 30, true);
        env.step(3);
        env.step(3);
    }

    #[test]
    fn rewards_match_eq3() {
        let t = table();
        let cfg = RewardConfig::default();
        for idx in 0..t.len() {
            let item = t.item(idx);
            let mut env = LabelingEnv::new(item, &cfg, 30, true);
            for a in 0..30usize {
                let m = ModelId(a as u8);
                let expected_new = item.new_label_confidence(env.state(), m, 0.5);
                let r = env.step(a);
                if expected_new > 0.0 {
                    let want = (expected_new + 1.0).ln() as f32;
                    assert!((r.reward - want).abs() < 1e-5, "item {idx} model {a}");
                    assert!(r.reward > 0.0);
                } else {
                    assert_eq!(r.reward, -1.0, "item {idx} model {a}");
                }
            }
            assert!(env.is_done(), "all models executed terminates");
            assert!((env.recall() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn second_same_task_model_usually_punished() {
        // Running both flagship and compact place classifiers back to back:
        // the second usually adds nothing valuable that is new.
        let t = table();
        let cfg = RewardConfig::default();
        let mut punished = 0;
        let mut n = 0;
        for idx in 0..t.len() {
            let mut env = LabelingEnv::new(t.item(idx), &cfg, 30, true);
            env.step(3); // place-cls-flagship
            let r = env.step(5); // place-cls-compact
            n += 1;
            if r.reward < 0.0 {
                punished += 1;
            }
        }
        assert!(
            punished * 2 > n,
            "redundant model should usually be punished ({punished}/{n})"
        );
    }

    #[test]
    fn theta_scales_reward() {
        let t = table();
        let base = RewardConfig::default();
        let boosted = RewardConfig::default().with_theta(ModelId(6), 10.0, 30);
        // find an item where face detection (model 6) produces value
        for idx in 0..t.len() {
            let item = t.item(idx);
            if item.model_value[6] > 0.0 {
                let mut e1 = LabelingEnv::new(item, &base, 30, true);
                let mut e2 = LabelingEnv::new(item, &boosted, 30, true);
                let r1 = e1.step(6).reward;
                let r2 = e2.step(6).reward;
                assert!(r2 > r1, "θ=10 must increase reward ({r2} vs {r1})");
                return;
            }
        }
        panic!("no item with face-detection value in fixture");
    }

    #[test]
    fn smoothing_orderings() {
        let t = table();
        // Find an item/model pair with several new labels; Sum ≥ Log and
        // Sum ≥ Mean there.
        for idx in 0..t.len() {
            let item = t.item(idx);
            for a in 0..30usize {
                let out = item.output(ModelId(a as u8));
                if out.valuable(0.5).count() >= 3 {
                    let mk = |s: Smoothing| RewardConfig {
                        smoothing: s,
                        ..Default::default()
                    };
                    let cfgs = (mk(Smoothing::Sum), mk(Smoothing::Log), mk(Smoothing::Mean));
                    let mut e_sum = LabelingEnv::new(item, &cfgs.0, 30, true);
                    let mut e_log = LabelingEnv::new(item, &cfgs.1, 30, true);
                    let mut e_mean = LabelingEnv::new(item, &cfgs.2, 30, true);
                    let rs = e_sum.step(a).reward;
                    let rl = e_log.step(a).reward;
                    let rm = e_mean.step(a).reward;
                    assert!(rs >= rl && rs >= rm, "sum dominates: {rs} {rl} {rm}");
                    assert!(rm <= 1.0, "mean of confidences bounded by 1");
                    return;
                }
            }
        }
        panic!("no multi-label output in fixture");
    }

    #[test]
    fn no_end_action_mode() {
        let t = table();
        let cfg = RewardConfig::default();
        let env = LabelingEnv::new(t.item(0), &cfg, 30, false);
        assert_eq!(env.num_actions(), 30);
        assert_eq!(env.available_mask().count_ones(), 30);
    }
}
