//! # ams-rl — reinforcement-learning substrate
//!
//! Implements §IV of the paper: the labeling MDP and the deep-RL machinery
//! that learns to predict model values from the labeling state.
//!
//! * [`env`] — the MDP: observation = binary labeling state (1104 bits),
//!   actions = 30 models + the END action, reward per Eq. (3)
//!   (`ln(θ_m Σ conf + 1)` for new valuable labels, `−1` otherwise, `0`
//!   for END).
//! * [`replay`] — experience replay over sparse-state transitions.
//! * [`policy`] — ε-greedy action selection with availability masking
//!   (already-executed models cannot be selected again).
//! * [`algo`] — the four training schemas compared in §VI-B: DQN,
//!   DoubleDQN, DuelingDQN and DeepSARSA.
//! * [`trainer`] — the training loop (target network, Adam, Huber TD loss).
//! * [`online`] — online adaptation: generation-stamped weight snapshots,
//!   the outcome→transition builder, and a trainer-step API over an
//!   externally fed replay (the serving hot-swap's learning half).
//! * [`eval`] — Q-value-greedy rollouts and the §VI-B metrics (average
//!   executed models / execution time vs required recall rate).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod algo;
pub mod env;
pub mod eval;
pub mod online;
pub mod policy;
pub mod replay;
pub mod trainer;

pub use algo::Algo;
pub use env::{LabelingEnv, RewardConfig, Smoothing, StepResult};
pub use eval::{evaluate_q_greedy, q_greedy_rollout, EvalSummary, Rollout};
pub use online::{outcome_transitions, AgentSnapshot, OnlineConfig, OnlineTrainer};
pub use policy::{epsilon_greedy, masked_argmax, EpsilonSchedule};
pub use replay::{ReplayBuffer, Transition};
pub use trainer::{
    learn_step_batched, learn_step_scalar, train, BatchScratch, ScalarScratch, TrainConfig,
    TrainStats, TrainedAgent,
};
