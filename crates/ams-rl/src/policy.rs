//! Action selection: ε-greedy over masked Q values.

use rand::rngs::StdRng;
use rand::Rng;

/// Index of the maximum Q value among available actions.
///
/// # Panics
/// Panics when no action is available.
pub fn masked_argmax(q: &[f32], avail: u64) -> usize {
    let mut best: Option<(usize, f32)> = None;
    for (a, &v) in q.iter().enumerate() {
        if avail >> a & 1 == 1 {
            match best {
                Some((_, bv)) if bv >= v => {}
                _ => best = Some((a, v)),
            }
        }
    }
    best.expect("no available action").0
}

/// ε-greedy: with probability `eps` a uniformly random available action,
/// otherwise the masked argmax.
pub fn epsilon_greedy(q: &[f32], avail: u64, eps: f32, rng: &mut StdRng) -> usize {
    debug_assert!(avail != 0, "no available action");
    if rng.gen::<f32>() < eps {
        let n = avail.count_ones();
        let mut k = rng.gen_range(0..n);
        for a in 0..q.len() {
            if avail >> a & 1 == 1 {
                if k == 0 {
                    return a;
                }
                k -= 1;
            }
        }
        unreachable!("mask exhausted");
    } else {
        masked_argmax(q, avail)
    }
}

/// Linear ε decay from `start` to `end` over `decay_episodes` episodes.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct EpsilonSchedule {
    /// Initial exploration rate.
    pub start: f32,
    /// Final exploration rate.
    pub end: f32,
    /// Episodes over which ε decays linearly.
    pub decay_episodes: usize,
}

impl EpsilonSchedule {
    /// ε at `episode`.
    pub fn at(&self, episode: usize) -> f32 {
        if self.decay_episodes == 0 || episode >= self.decay_episodes {
            return self.end;
        }
        let f = episode as f32 / self.decay_episodes as f32;
        self.start + (self.end - self.start) * f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn argmax_respects_mask() {
        let q = [9.0, 1.0, 5.0];
        assert_eq!(masked_argmax(&q, 0b111), 0);
        assert_eq!(masked_argmax(&q, 0b110), 2);
        assert_eq!(masked_argmax(&q, 0b010), 1);
    }

    #[test]
    #[should_panic(expected = "no available action")]
    fn argmax_empty_mask_panics() {
        masked_argmax(&[1.0], 0);
    }

    #[test]
    fn greedy_at_eps_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = [0.1, 0.9, 0.5];
        for _ in 0..20 {
            assert_eq!(epsilon_greedy(&q, 0b111, 0.0, &mut rng), 1);
        }
    }

    #[test]
    fn uniform_at_eps_one_and_masked() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = [0.1, 0.9, 0.5, 0.0];
        let mask = 0b1011u64; // action 2 unavailable
        let mut counts = [0usize; 4];
        for _ in 0..3000 {
            counts[epsilon_greedy(&q, mask, 1.0, &mut rng)] += 1;
        }
        assert_eq!(counts[2], 0, "masked action must never be chosen");
        for (a, &c) in counts.iter().enumerate() {
            if a != 2 {
                assert!((800..1200).contains(&c), "action {a}: {c}");
            }
        }
    }

    #[test]
    fn epsilon_schedule_decays_linearly() {
        let s = EpsilonSchedule {
            start: 1.0,
            end: 0.1,
            decay_episodes: 100,
        };
        assert_eq!(s.at(0), 1.0);
        assert!((s.at(50) - 0.55).abs() < 1e-6);
        assert_eq!(s.at(100), 0.1);
        assert_eq!(s.at(1000), 0.1);
    }

    #[test]
    fn zero_decay_schedule_is_constant_end() {
        let s = EpsilonSchedule {
            start: 1.0,
            end: 0.05,
            decay_episodes: 0,
        };
        assert_eq!(s.at(0), 0.05);
    }
}
