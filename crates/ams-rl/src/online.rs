//! Online adaptation: the training-loop half of a *serving* system.
//!
//! The batch trainer ([`crate::trainer::train`]) owns its environment and
//! rolls episodes itself. A serving front-end cannot: episodes happen on
//! worker threads (each labeled request is one episode prefix), and the
//! learner only sees their *outcomes* after the fact. This module closes
//! that loop with three pieces:
//!
//! * [`AgentSnapshot`] — an immutable, generation-stamped export of agent
//!   weights. Snapshots are what a hot-swap publishes: predict paths pin
//!   one `Arc<AgentSnapshot>` per batch, so a concurrent re-publish can
//!   never tear a forward pass.
//! * [`outcome_transitions`] — the outcome→transition builder: replays the
//!   labeling MDP over the model sequence a scheduler actually executed,
//!   reconstructing the Eq. (3) rewards and sparse states the batch
//!   trainer would have seen, terminated by the END action (the scheduler
//!   stopping *is* the END decision).
//! * [`OnlineTrainer`] — a trainer-step API over an externally fed replay:
//!   absorb outcomes, run [`learn_step_batched`] minibatches on a cloned
//!   network, export snapshots. All randomness flows from the configured
//!   seed — no ambient RNG state — so an adaptation run is reproducible
//!   given the same outcome sequence.

use crate::env::LabelingEnv;
use crate::replay::{ReplayBuffer, Transition};
use crate::trainer::{learn_step_batched, BatchScratch, TrainConfig, TrainedAgent};
use ams_data::ItemTruth;
use ams_models::ModelId;
use ams_nn::{Adam, Huber, QNet};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// An immutable, generation-stamped export of a trained agent.
///
/// Generations are assigned by the publisher (monotonically increasing;
/// the pre-adaptation weights are generation 0). The snapshot is plain
/// data: cloning the `Arc` that wraps it is the only synchronization a
/// reader needs, and the weights inside never mutate.
#[derive(Debug, Clone)]
pub struct AgentSnapshot {
    /// The exported agent (weights + metadata).
    pub agent: TrainedAgent,
    /// Publisher-assigned generation counter.
    pub generation: u64,
}

impl AgentSnapshot {
    /// The initial (generation 0) snapshot of an agent.
    pub fn initial(agent: TrainedAgent) -> Self {
        Self {
            agent,
            generation: 0,
        }
    }
}

/// Replay the labeling MDP over the model sequence a scheduler executed
/// on `item`, reconstructing the transitions a behaviour policy that chose
/// exactly those models would have generated.
///
/// `next_action` is filled with the action actually taken next (the
/// on-policy trace DeepSARSA needs). When `use_end_action` is set and the
/// episode did not already terminate by exhausting every model, a final
/// END transition is appended: a scheduler stopping early (deadline hit,
/// no positive predicted value left) is precisely the END decision of
/// §IV-B, so served outcomes teach the stop action too.
///
/// Models outside the zoo range or repeated in `executed` are skipped
/// defensively (schedulers never produce them; a corrupted tap must not
/// poison the learner).
pub fn outcome_transitions(
    item: &ItemTruth,
    executed: &[ModelId],
    cfg: &crate::env::RewardConfig,
    num_models: usize,
    use_end_action: bool,
    out: &mut Vec<Transition>,
) -> usize {
    let mut env = LabelingEnv::new(item, cfg, num_models, use_end_action);
    let mut sparse: Vec<u32> = Vec::new();
    env.state().write_sparse(&mut sparse);
    let mut state: Arc<[u32]> = Arc::from(&sparse[..]);
    let mut pushed = 0usize;

    // The action sequence actually taken: the executed models (filtered to
    // the available set), then END when the episode stopped early.
    let actions: Vec<usize> = executed
        .iter()
        .map(|m| m.index())
        .filter(|&a| a < num_models)
        .collect();
    for (k, &action) in actions.iter().enumerate() {
        if env.available_mask() >> action & 1 == 0 {
            continue; // duplicate in a corrupted tap; skip defensively
        }
        let step = env.step(action);
        env.state().write_sparse(&mut sparse);
        let next_state: Arc<[u32]> = Arc::from(&sparse[..]);
        let next_avail = env.available_mask();
        // The action taken at next_state is the following executed model,
        // or END when the scheduler stopped after this one.
        let next_action = if step.done {
            0
        } else {
            actions
                .get(k + 1)
                .copied()
                .filter(|&a| a < num_models)
                .unwrap_or(env.end_action())
        };
        out.push(Transition {
            state,
            action: action as u8,
            reward: step.reward,
            next_state: Arc::clone(&next_state),
            next_avail,
            next_action: next_action as u8,
            done: step.done,
        });
        pushed += 1;
        state = next_state;
        if step.done {
            return pushed;
        }
    }

    if use_end_action && !env.is_done() {
        let step = env.step(env.end_action());
        env.state().write_sparse(&mut sparse);
        let next_state: Arc<[u32]> = Arc::from(&sparse[..]);
        out.push(Transition {
            state,
            action: env.end_action() as u8,
            reward: step.reward,
            next_state,
            next_avail: env.available_mask(),
            next_action: 0,
            done: true,
        });
        pushed += 1;
    }
    pushed
}

/// Knobs of an [`OnlineTrainer`]. The action space, algorithm, and reward
/// function are inherited from the seed agent, not configured here — an
/// online learner must match the network it continues from.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Minibatch size per learn step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Discount factor (see [`TrainConfig::new`] for why it is near 0).
    pub gamma: f32,
    /// Replay capacity (transitions; old experience ages out).
    pub replay_cap: usize,
    /// Transitions required before the first learn step.
    pub warmup: usize,
    /// Hard target-network sync period, in learn steps.
    pub target_sync: usize,
    /// Seed for minibatch sampling — the only randomness in the loop.
    pub seed: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            batch: 32,
            lr: 1e-3,
            gamma: 0.1,
            replay_cap: 8192,
            warmup: 64,
            target_sync: 100,
            seed: 0,
        }
    }
}

/// A trainer-step API over an externally fed replay buffer.
///
/// Owns a clone of the seed agent's network (the serving snapshot is
/// never trained in place), a target network, the optimizer, the replay
/// buffer, and a seeded RNG. The caller decides *when* to absorb
/// outcomes, step, and export — this type only guarantees that given the
/// same call sequence it produces the same weights.
pub struct OnlineTrainer {
    net: QNet,
    target: QNet,
    opt: Adam,
    replay: ReplayBuffer,
    scratch: BatchScratch,
    rng: StdRng,
    cfg: TrainConfig,
    num_models: usize,
    use_end_action: bool,
    steps: u64,
    transitions: u64,
}

impl OnlineTrainer {
    /// A trainer continuing from `agent` under `cfg`.
    pub fn new(agent: &TrainedAgent, cfg: &OnlineConfig) -> Self {
        let use_end_action = agent.net.actions() > agent.num_models;
        // learn_step_batched reads algo/gamma/batch from a TrainConfig;
        // build one around the online knobs (episode/ε fields are unused
        // by the step API but kept coherent).
        let train_cfg = TrainConfig {
            gamma: cfg.gamma,
            lr: cfg.lr,
            batch: cfg.batch.max(1),
            replay_cap: cfg.replay_cap.max(1),
            warmup: cfg.warmup,
            target_sync: cfg.target_sync.max(1),
            seed: cfg.seed,
            use_end_action,
            reward: agent.reward.clone(),
            ..TrainConfig::new(agent.algo)
        };
        Self {
            net: agent.net.clone(),
            target: agent.net.clone(),
            opt: Adam::new(cfg.lr),
            replay: ReplayBuffer::new(cfg.replay_cap.max(1)),
            scratch: BatchScratch::new(&agent.net),
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg: train_cfg,
            num_models: agent.num_models,
            use_end_action,
            steps: 0,
            transitions: 0,
        }
    }

    /// Convert one served outcome into transitions and feed the replay.
    /// Returns the number of transitions absorbed.
    pub fn absorb(&mut self, item: &ItemTruth, executed: &[ModelId]) -> usize {
        let mut buf = Vec::new();
        let n = outcome_transitions(
            item,
            executed,
            &self.cfg.reward,
            self.num_models,
            self.use_end_action,
            &mut buf,
        );
        for t in buf {
            self.replay.push(t);
        }
        self.transitions += n as u64;
        n
    }

    /// Whether enough experience has accumulated to learn.
    pub fn ready(&self) -> bool {
        self.replay.len() >= self.cfg.warmup.max(self.cfg.batch)
    }

    /// One minibatch gradient step; `None` before warmup. Syncs the
    /// target network every `target_sync` steps.
    pub fn learn_step(&mut self) -> Option<f32> {
        if !self.ready() {
            return None;
        }
        let loss = learn_step_batched(
            &mut self.net,
            &self.target,
            &mut self.opt,
            &self.replay,
            &self.cfg,
            &Huber::default(),
            &mut self.rng,
            &mut self.scratch,
        );
        self.steps += 1;
        if self.steps.is_multiple_of(self.cfg.target_sync as u64) {
            self.target.copy_from(&self.net);
        }
        Some(loss)
    }

    /// Learn steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Transitions absorbed so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Transitions currently resident in the replay buffer.
    pub fn replay_len(&self) -> usize {
        self.replay.len()
    }

    /// Export the current weights as a snapshot stamped `generation`.
    pub fn export(&self, generation: u64) -> AgentSnapshot {
        AgentSnapshot {
            agent: TrainedAgent {
                net: self.net.clone(),
                algo: self.cfg.algo,
                num_models: self.num_models,
                reward: self.cfg.reward.clone(),
            },
            generation,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::Algo;
    use crate::env::RewardConfig;
    use crate::trainer::train;
    use ams_data::{Dataset, DatasetProfile, TruthTable};
    use ams_models::ModelZoo;

    fn fixture() -> TruthTable {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 24, 11);
        TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5)
    }

    fn seed_agent(table: &TruthTable) -> TrainedAgent {
        let cfg = TrainConfig {
            episodes: 12,
            ..TrainConfig::fast_test(Algo::Dqn)
        };
        train(table.items(), 30, &cfg).0
    }

    #[test]
    fn outcome_transitions_match_env_replay() {
        let table = fixture();
        let item = table.item(0);
        let cfg = RewardConfig::default();
        let executed = [ModelId(3), ModelId(7), ModelId(0)];
        let mut out = Vec::new();
        let n = outcome_transitions(item, &executed, &cfg, 30, true, &mut out);
        // 3 model steps + the appended END transition.
        assert_eq!(n, 4);
        assert_eq!(out.len(), 4);
        // Rewards agree with a manual env replay.
        let mut env = LabelingEnv::new(item, &cfg, 30, true);
        for (k, &m) in executed.iter().enumerate() {
            let step = env.step(m.index());
            assert_eq!(out[k].reward, step.reward, "step {k}");
            assert_eq!(out[k].action, m.index() as u8);
            assert!(!out[k].done);
        }
        // On-policy chaining: each next_action is the following action.
        assert_eq!(out[0].next_action, 7);
        assert_eq!(out[1].next_action, 0);
        assert_eq!(out[2].next_action, 30, "stop is the END action");
        let end = &out[3];
        assert_eq!(end.action, 30);
        assert_eq!(end.reward, cfg.end_reward);
        assert!(end.done);
        // States chain: one step's next_state is the next step's state.
        for w in out.windows(2) {
            assert_eq!(&*w[0].next_state, &*w[1].state);
        }
    }

    #[test]
    fn outcome_transitions_skip_corrupt_sequences() {
        let table = fixture();
        let item = table.item(1);
        let cfg = RewardConfig::default();
        // Duplicate and out-of-range entries are dropped, not fatal.
        let executed = [ModelId(2), ModelId(2), ModelId(63)];
        let mut out = Vec::new();
        let n = outcome_transitions(item, &executed, &cfg, 30, true, &mut out);
        assert_eq!(n, 2); // model 2 once + END
        assert_eq!(out[0].action, 2);
        assert_eq!(out[1].action, 30);
    }

    #[test]
    fn empty_outcome_yields_lone_end_transition() {
        let table = fixture();
        let cfg = RewardConfig::default();
        let mut out = Vec::new();
        let n = outcome_transitions(table.item(2), &[], &cfg, 30, true, &mut out);
        assert_eq!(n, 1);
        assert!(out[0].done);
        assert_eq!(out[0].action, 30);
        // Without the END action an empty outcome carries no experience.
        out.clear();
        let n = outcome_transitions(table.item(2), &[], &cfg, 30, false, &mut out);
        assert_eq!(n, 0);
    }

    #[test]
    fn trainer_warms_up_then_steps_and_syncs() {
        let table = fixture();
        let agent = seed_agent(&table);
        let cfg = OnlineConfig {
            warmup: 16,
            batch: 8,
            target_sync: 2,
            ..OnlineConfig::default()
        };
        let mut tr = OnlineTrainer::new(&agent, &cfg);
        assert!(tr.learn_step().is_none(), "no step before warmup");
        let executed: Vec<ModelId> = (0..6).map(ModelId).collect();
        let mut absorbed = 0;
        for i in 0..4 {
            absorbed += tr.absorb(table.item(i), &executed);
        }
        assert_eq!(absorbed as u64, tr.transitions());
        assert!(tr.ready());
        for _ in 0..5 {
            let loss = tr.learn_step().expect("past warmup");
            assert!(loss.is_finite());
        }
        assert_eq!(tr.steps(), 5);
    }

    #[test]
    fn export_preserves_weights_and_metadata() {
        let table = fixture();
        let agent = seed_agent(&table);
        let tr = OnlineTrainer::new(&agent, &OnlineConfig::default());
        let snap = tr.export(7);
        assert_eq!(snap.generation, 7);
        assert_eq!(snap.agent.num_models, agent.num_models);
        assert_eq!(snap.agent.algo, agent.algo);
        // Before any learn step the export equals the seed agent.
        let probe = [4u32, 90, 700];
        let a = agent.q_values(&probe);
        let b = snap.agent.q_values(&probe);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-7);
        }
        let init = AgentSnapshot::initial(agent);
        assert_eq!(init.generation, 0);
    }

    #[test]
    fn training_moves_weights_and_is_deterministic_under_seed() {
        let table = fixture();
        let agent = seed_agent(&table);
        let cfg = OnlineConfig {
            warmup: 32,
            seed: 99,
            ..OnlineConfig::default()
        };
        let run = || {
            let mut tr = OnlineTrainer::new(&agent, &cfg);
            let executed: Vec<ModelId> = (0..8).map(ModelId).collect();
            let mut losses = Vec::new();
            for i in 0..table.len() {
                tr.absorb(table.item(i), &executed);
                if let Some(l) = tr.learn_step() {
                    losses.push(l);
                }
            }
            (tr.export(1), losses)
        };
        let (s1, l1) = run();
        let (s2, l2) = run();
        assert!(!l1.is_empty(), "learning must have started");
        assert_eq!(l1, l2, "seeded runs produce identical loss trajectories");
        let probe = [1u32, 50, 300];
        let q1 = s1.agent.q_values(&probe);
        let q2 = s2.agent.q_values(&probe);
        assert_eq!(q1, q2, "seeded runs produce identical weights");
        // And the weights actually moved off the seed agent.
        let q0 = agent.q_values(&probe);
        assert!(
            q1.iter().zip(&q0).any(|(a, b)| (a - b).abs() > 1e-9),
            "learn steps must change the network"
        );
    }
}
