//! Micro-bench: the two training/serving hot paths this workspace
//! optimizes — one DQN gradient step (scalar reference vs batched kernels)
//! and one stream-labeled item (serial engine vs 4-thread parallel engine).
//! `cargo run --release -p ams-bench --bin bench_hotpath` produces the
//! recorded `BENCH_hotpath.json` from the same fixtures.

use ams::prelude::*;
use ams::rl::{learn_step_batched, learn_step_scalar, BatchScratch, ScalarScratch};
use ams_bench::hotpath::LearnSetup;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_learn_step(c: &mut Criterion) {
    let LearnSetup {
        cfg,
        mut net,
        target,
        replay,
    } = LearnSetup::paper(Algo::Dqn, 32);
    let huber = ams::nn::Huber::default();

    let mut opt = ams::nn::Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(3);
    let mut scratch = ScalarScratch::new(&net);
    c.bench_function("learn_step_scalar_b32", |b| {
        b.iter(|| {
            black_box(learn_step_scalar(
                &mut net,
                &target,
                &mut opt,
                &replay,
                &cfg,
                &huber,
                &mut rng,
                &mut scratch,
            ))
        })
    });

    let mut opt = ams::nn::Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(3);
    let mut scratch = BatchScratch::new(&net);
    c.bench_function("learn_step_batched_b32", |b| {
        b.iter(|| {
            black_box(learn_step_batched(
                &mut net,
                &target,
                &mut opt,
                &replay,
                &cfg,
                &huber,
                &mut rng,
                &mut scratch,
            ))
        })
    });
}

fn bench_stream(c: &mut Criterion) {
    let zoo = ModelZoo::standard();
    let ds = Dataset::generate(DatasetProfile::Coco2017, 60, 7);
    let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
    let tcfg = TrainConfig {
        episodes: 60,
        ..TrainConfig::fast_test(Algo::Dqn)
    };
    let (agent, _) = train(truth.items(), zoo.len(), &tcfg);
    let budget = Budget::Deadline { ms: 1000 };
    let make = |agent: TrainedAgent| {
        AdaptiveModelScheduler::new(
            ModelZoo::standard(),
            Box::new(AgentPredictor::new(agent)),
            0.5,
            ds.world_seed,
        )
    };

    let mut serial = StreamProcessor::new(make(agent.clone()), budget);
    c.bench_function("stream_serial_60_items", |b| {
        b.iter(|| {
            serial.reset_stats();
            serial.process_all(truth.items());
            black_box(serial.stats().items)
        })
    });

    let mut par = ParallelStreamProcessor::new(make(agent), budget, 4);
    c.bench_function("stream_parallel_t4_60_items", |b| {
        b.iter(|| {
            par.reset_stats();
            par.process_all(truth.items());
            black_box(par.stats().items)
        })
    });
}

criterion_group!(benches, bench_learn_step, bench_stream);
criterion_main!(benches);
