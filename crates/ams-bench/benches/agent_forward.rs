//! Micro-bench: one Q-network forward pass (the per-decision cost of
//! Table III), sparse vs dense input, linear vs dueling head.

use ams::nn::{FwdCache, Input, QNet, QNetConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_forward(c: &mut Criterion) {
    let linear = QNet::new(QNetConfig::paper(1104, 31), 7);
    let dueling = QNet::new(QNetConfig::paper_dueling(1104, 31), 7);
    // a typical mid-episode labeling state: ~40 active labels
    let sparse: Vec<u32> = (0..40u32).map(|i| i * 27 % 1104).collect();
    let mut dense = vec![0.0f32; 1104];
    for &i in &sparse {
        dense[i as usize] = 1.0;
    }
    let mut cache = FwdCache::default();

    c.bench_function("forward_sparse_linear", |b| {
        b.iter(|| {
            let q = linear.forward(Input::Sparse(black_box(&sparse)), &mut cache);
            black_box(q[0])
        })
    });
    c.bench_function("forward_sparse_dueling", |b| {
        b.iter(|| {
            let q = dueling.forward(Input::Sparse(black_box(&sparse)), &mut cache);
            black_box(q[0])
        })
    });
    c.bench_function("forward_dense_linear", |b| {
        b.iter(|| {
            let q = linear.forward(Input::Dense(black_box(&dense)), &mut cache);
            black_box(q[0])
        })
    });
}

criterion_group!(benches, bench_forward);
criterion_main!(benches);
