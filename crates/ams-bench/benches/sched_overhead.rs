//! Micro-bench for Table III: the full per-iteration scheduling overhead —
//! one value prediction plus one greedy selection — for Algorithm 1 and
//! Algorithm 2 style scoring.

use ams::core::predictor::{OraclePredictor, ValuePredictor};
use ams::prelude::*;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn fixture() -> (ModelZoo, TruthTable) {
    let zoo = ModelZoo::standard();
    let ds = Dataset::generate(DatasetProfile::Coco2017, 8, 7);
    let table = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
    (zoo, table)
}

fn bench_sched(c: &mut Criterion) {
    let (zoo, table) = fixture();
    let oracle = OraclePredictor::new(zoo.len(), 0.5);
    let item = table.item(0).clone();

    c.bench_function("algorithm1_full_item_1s_budget", |b| {
        b.iter(|| {
            let r = schedule_deadline(&oracle, &zoo, black_box(&item), 1000, 0.5);
            black_box(r.value)
        })
    });

    c.bench_function("algorithm2_full_item_1s_16gb", |b| {
        b.iter(|| {
            let r = schedule_deadline_memory(&oracle, &zoo, black_box(&item), 1000, 16384, 0.5);
            black_box(r.value)
        })
    });

    c.bench_function("optimal_star_deadline", |b| {
        b.iter(|| {
            black_box(ams::core::scheduler::optimal_star::optimal_star_deadline(
                &zoo,
                black_box(&item),
                1000,
                0.5,
            ))
        })
    });

    // a single prediction+selection step (the 3-6 ms of the paper's agent)
    let state = LabelSet::new(1104);
    c.bench_function("single_greedy_decision", |b| {
        b.iter(|| {
            let q = oracle.predict(black_box(&state), &item);
            let best = q
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i);
            black_box(best)
        })
    });
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
