//! Micro-bench: scene generation and ground-truth construction (the data
//! substrate's throughput — the paper's equivalent step took 6 GPU-days).

use ams::prelude::*;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_generator(c: &mut Criterion) {
    let zoo = ModelZoo::standard();
    let catalog = zoo.catalog();
    let generator = DatasetProfile::Coco2017.generator(7);

    c.bench_function("generate_one_scene", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(generator.scene(black_box(i)))
        })
    });

    c.bench_function("infer_full_zoo_on_scene", |b| {
        let scene = generator.scene(3);
        b.iter(|| black_box(infer_all(black_box(&scene), &zoo, &catalog, 7)))
    });

    c.bench_function("truth_table_100_items", |b| {
        b.iter(|| {
            let ds = Dataset::generate(DatasetProfile::Coco2017, 100, 7);
            black_box(TruthTable::build(&zoo, &catalog, &ds, 0.5))
        })
    });
}

criterion_group!(benches, bench_generator);
criterion_main!(benches);
