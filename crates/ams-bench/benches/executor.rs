//! Micro-bench: virtual-time executors (the substrate cost of simulating
//! one item's schedule).

use ams::sim::{Job, ParallelExecutor, SerialExecutor};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn jobs() -> Vec<Job> {
    (0..30)
        .map(|i| Job {
            id: i,
            time_ms: 60 + (i as u32 * 13) % 390,
            mem_mb: 500 + (i as u32 * 251) % 7500,
        })
        .collect()
}

fn bench_executors(c: &mut Criterion) {
    let js = jobs();
    c.bench_function("serial_executor_30_jobs", |b| {
        b.iter(|| {
            let mut ex = SerialExecutor::new(10_000);
            for j in &js {
                ex.run(black_box(*j));
            }
            black_box(ex.elapsed_ms())
        })
    });

    c.bench_function("parallel_executor_30_jobs_16gb", |b| {
        b.iter(|| {
            let mut ex = ParallelExecutor::new(16_384);
            let mut pending: Vec<Job> = js.clone();
            while !pending.is_empty() || ex.running_count() > 0 {
                let mut i = 0;
                while i < pending.len() {
                    if ex.fits(pending[i].mem_mb) {
                        let j = pending.remove(i);
                        ex.admit(j).expect("fits");
                    } else {
                        i += 1;
                    }
                }
                if ex.wait_next().is_none() {
                    break;
                }
            }
            black_box(ex.now_ms())
        })
    });
}

criterion_group!(benches, bench_executors);
criterion_main!(benches);
