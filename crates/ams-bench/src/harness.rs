//! Shared harness: worlds (zoo + dataset + ground truth), agent training
//! with caching, and result output.

use ams::prelude::*;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;

/// Global knobs for every experiment. Defaults are sized for a
/// single-core CI-class machine; scale `items`/`episodes` up for
/// higher-fidelity runs.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Items generated per dataset profile.
    pub items: usize,
    /// Training episodes for primary agents.
    pub episodes: usize,
    /// Training episodes for secondary sweeps (θ grid, ablations).
    pub episodes_small: usize,
    /// Test items evaluated per measurement.
    pub eval_items: usize,
    /// Valuable-label confidence threshold.
    pub threshold: f32,
    /// World seed.
    pub seed: u64,
    /// Output directory for JSON/text results.
    pub out_dir: PathBuf,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            items: 600,
            episodes: 1200,
            episodes_small: 700,
            eval_items: 300,
            threshold: 0.5,
            seed: 20200208, // the paper's arXiv date
            out_dir: PathBuf::from("results"),
        }
    }
}

impl ExperimentConfig {
    /// A tiny configuration for smoke tests of the harness itself.
    pub fn smoke() -> Self {
        Self {
            items: 60,
            episodes: 40,
            episodes_small: 30,
            eval_items: 30,
            out_dir: PathBuf::from("results-smoke"),
            ..Self::default()
        }
    }
}

/// A dataset world: scenes plus full-execution ground truth, split 1:4.
pub struct World {
    /// The dataset profile.
    pub profile: DatasetProfile,
    /// Materialized scenes.
    pub dataset: Dataset,
    /// Ground truth (every model executed on every item).
    pub truth: TruthTable,
    /// 1:4 train/test split.
    pub split: ams::data::dataset::Split,
}

impl World {
    /// Training items.
    pub fn train_items(&self) -> &[ItemTruth] {
        self.truth.split(self.split).0
    }

    /// Test items.
    pub fn test_items(&self) -> &[ItemTruth] {
        self.truth.split(self.split).1
    }
}

/// Cache key for trained agents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AgentKey {
    profile: DatasetProfile,
    algo: Algo,
    theta_model: Option<(u8, u32)>, // (model, theta*1000)
    episodes: usize,
}

/// The experiment harness: shared zoo/catalog, lazily built worlds, and a
/// cache of trained agents so `run_all` never trains the same agent twice.
pub struct Harness {
    /// Global configuration.
    pub cfg: ExperimentConfig,
    /// The 30-model zoo.
    pub zoo: ModelZoo,
    /// The 1104-label catalog.
    pub catalog: LabelCatalog,
    worlds: HashMap<DatasetProfile, World>,
    agents: HashMap<AgentKey, TrainedAgent>,
}

impl Harness {
    /// Build a harness.
    pub fn new(cfg: ExperimentConfig) -> Self {
        let zoo = ModelZoo::standard();
        let catalog = zoo.catalog();
        Self {
            cfg,
            zoo,
            catalog,
            worlds: HashMap::new(),
            agents: HashMap::new(),
        }
    }

    /// Get (building on first use) the world for a profile.
    pub fn world(&mut self, profile: DatasetProfile) -> &World {
        if !self.worlds.contains_key(&profile) {
            let t0 = std::time::Instant::now();
            let dataset = Dataset::generate(profile, self.cfg.items, self.cfg.seed);
            let truth = TruthTable::build(&self.zoo, &self.catalog, &dataset, self.cfg.threshold);
            let split = dataset.split_1_to_4();
            eprintln!(
                "[harness] built world {} ({} items) in {:.1?}",
                profile.name(),
                dataset.len(),
                t0.elapsed()
            );
            self.worlds.insert(
                profile,
                World {
                    profile,
                    dataset,
                    truth,
                    split,
                },
            );
        }
        &self.worlds[&profile]
    }

    /// Train (or fetch) an agent for `(profile, algo)` with default θ.
    pub fn agent(&mut self, profile: DatasetProfile, algo: Algo) -> TrainedAgent {
        let episodes = self.cfg.episodes;
        self.agent_with(profile, algo, None, episodes)
    }

    /// Train (or fetch) an agent with an optional θ override on one model.
    pub fn agent_with(
        &mut self,
        profile: DatasetProfile,
        algo: Algo,
        theta: Option<(ModelId, f32)>,
        episodes: usize,
    ) -> TrainedAgent {
        let key = AgentKey {
            profile,
            algo,
            theta_model: theta.map(|(m, t)| (m.0, (t * 1000.0) as u32)),
            episodes,
        };
        if let Some(a) = self.agents.get(&key) {
            return a.clone();
        }
        let threshold = self.cfg.threshold;
        let seed = self.cfg.seed;
        let num_models = self.zoo.len();
        self.world(profile); // ensure built
        let world = &self.worlds[&profile];
        let mut reward = RewardConfig {
            value_threshold: threshold,
            ..Default::default()
        };
        if let Some((m, t)) = theta {
            reward = reward.with_theta(m, t, num_models);
        }
        let cfg = TrainConfig {
            episodes,
            seed: seed
                ^ (key
                    .theta_model
                    .map(|(m, t)| u64::from(m) * 31 + u64::from(t))
                    .unwrap_or(0)),
            reward,
            ..TrainConfig::new(algo)
        };
        let t0 = std::time::Instant::now();
        let (agent, stats) = train(world.train_items(), num_models, &cfg);
        eprintln!(
            "[harness] trained {algo} on {} ({episodes} eps, θ={:?}) in {:.1?}, trailing reward {:.2}",
            profile.name(),
            theta,
            t0.elapsed(),
            stats.trailing_reward(100)
        );
        self.agents.insert(key, agent.clone());
        agent
    }

    /// Test items of a world, truncated to the eval budget.
    pub fn eval_items(&mut self, profile: DatasetProfile) -> Vec<ItemTruth> {
        let n = self.cfg.eval_items;
        let world = self.world(profile);
        world.test_items().iter().take(n).cloned().collect()
    }

    /// Training items of a world (owned copy for ad-hoc training runs).
    pub fn train_items(&mut self, profile: DatasetProfile) -> Vec<ItemTruth> {
        self.world(profile).train_items().to_vec()
    }

    /// Write a figure both as pretty text and JSON under `out_dir`.
    pub fn emit(&self, fig: &Figure) {
        println!("{}", fig.to_table());
        if let Err(e) = std::fs::create_dir_all(&self.cfg.out_dir) {
            eprintln!(
                "[harness] cannot create {}: {e}",
                self.cfg.out_dir.display()
            );
            return;
        }
        let json_path = self.cfg.out_dir.join(format!("{}.json", fig.id));
        match serde_json::to_string_pretty(fig) {
            Ok(js) => {
                if let Ok(mut f) = std::fs::File::create(&json_path) {
                    let _ = f.write_all(js.as_bytes());
                }
            }
            Err(e) => eprintln!("[harness] serialize {}: {e}", fig.id),
        }
        let txt_path = self.cfg.out_dir.join(format!("{}.txt", fig.id));
        if let Ok(mut f) = std::fs::File::create(&txt_path) {
            let _ = f.write_all(fig.to_table().as_bytes());
        }
    }

    /// Write free-form text output (tables, sequences) under `out_dir`.
    pub fn emit_text(&self, id: &str, text: &str) {
        println!("{text}");
        if std::fs::create_dir_all(&self.cfg.out_dir).is_ok() {
            let _ = std::fs::write(self.cfg.out_dir.join(format!("{id}.txt")), text);
        }
    }
}

/// The recall-rate grid used by Figs. 4–6 (the paper plots 0..1).
pub fn recall_grid() -> Vec<f64> {
    (1..=10).map(|i| i as f64 / 10.0).collect()
}

/// The deadline grid (seconds) of Fig. 10/12.
pub fn deadline_grid_s() -> Vec<f64> {
    vec![0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0]
}

/// The deadline grid (seconds) of Fig. 11.
pub fn memory_deadline_grid_s() -> Vec<f64> {
    vec![0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0]
}
