//! # ams-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§II and
//! §VI) on the simulation substrate. Each experiment is a library function
//! so the per-figure binaries and the `run_all` binary share one
//! implementation; results are printed as aligned tables (the same
//! rows/series the paper plots) and written as JSON under `results/`.
//!
//! Absolute numbers differ from the paper (its testbed was a Tesla P100
//! running real DNNs); the claims being reproduced are the *shapes*: who
//! wins, by roughly what factor, and where crossovers fall. EXPERIMENTS.md
//! records paper-vs-measured for every experiment.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod gate;
pub mod harness;
pub mod hotpath;

pub use harness::{ExperimentConfig, Harness};
