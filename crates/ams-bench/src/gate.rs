//! The bench regression gate: compare a freshly measured smoke record
//! against the committed baseline and fail loudly when a tracked metric
//! regresses beyond its tolerance.
//!
//! Perf claims in this repo are *enforced*, not just recorded: CI and
//! `scripts/check.sh` rerun the smoke sweeps and pipe the fresh records
//! through [`run_gate`]. Tolerances are deliberately asymmetric —
//! deterministic quantities (recall, equivalence flags, routing wins) are
//! gated tightly, wall-clock throughput loosely (machines differ; the gate
//! exists to catch *catastrophic* slowdowns like an accidentally
//! serialized worker pool, not 10% scheduler noise).

use serde::Value;
use std::fmt::Write as _;

/// Which record schema a comparison uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateKind {
    /// `BENCH_serve.json` — serving sweep.
    Serve,
    /// `BENCH_hotpath.json` — learn-step and stream throughput.
    Hotpath,
}

/// Outcome of one gate run: every check, pass or fail, with its numbers.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Human-readable lines for checks that passed.
    pub passed: Vec<String>,
    /// Human-readable lines for checks that failed.
    pub failed: Vec<String>,
}

impl GateOutcome {
    /// Whether every check passed.
    pub fn ok(&self) -> bool {
        self.failed.is_empty()
    }

    /// Render the outcome as one report string.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for line in &self.passed {
            let _ = writeln!(s, "  ok   {line}");
        }
        for line in &self.failed {
            let _ = writeln!(s, "  FAIL {line}");
        }
        s
    }
}

/// Throughput floor: a candidate may be slower than baseline by at most
/// this factor before the gate trips (CI machines vary; a healthy run sits
/// near 1.0, an accidentally serialized hot path falls well under 0.5).
const THROUGHPUT_FLOOR: f64 = 0.5;
/// Mean recall is deterministic for the lossless closed-loop fixture; two
/// points of slack absorb float-sum ordering only.
const RECALL_SLACK: f64 = 0.02;
/// Batching-saving slack: batch composition is timing-dependent at the
/// margins, the headline saving is not.
const SAVING_SLACK: f64 = 0.10;
/// Speedup ratios are scale-free; half the baseline ratio means the
/// optimization substantially regressed.
const SPEEDUP_FLOOR: f64 = 0.5;
/// The live observability layer may cost at most this fraction of the
/// closed-loop capacity. Absolute (not baseline-relative): the budget is
/// a design contract — one timestamp plus a lock-free ring push per
/// event — so a machine where it blows past 2% has a hot-path problem,
/// not noise.
const OBS_OVERHEAD_CEILING: f64 = 0.02;

/// Numeric view of a [`Value`].
fn value_f64(v: &Value) -> Option<f64> {
    match *v {
        Value::U64(n) => Some(n as f64),
        Value::I64(n) => Some(n as f64),
        Value::F64(f) => Some(f),
        _ => None,
    }
}

/// Walk a `/`-separated path of object fields and array indices.
fn get<'v>(v: &'v Value, path: &str) -> Option<&'v Value> {
    let mut cur = v;
    for part in path.split('/') {
        cur = match part.parse::<usize>() {
            Ok(i) => match cur {
                Value::Array(items) => items.get(i)?,
                _ => return None,
            },
            Err(_) => cur.field(part)?,
        };
    }
    Some(cur)
}

fn num(v: &Value, path: &str) -> Result<f64, String> {
    get(v, path)
        .and_then(value_f64)
        .ok_or_else(|| format!("missing numeric field `{path}`"))
}

fn boolean(v: &Value, path: &str) -> Result<bool, String> {
    match get(v, path) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(format!("missing bool field `{path}`")),
    }
}

/// `candidate >= floor_factor * baseline` (ratio check for throughputs).
fn check_ratio(
    out: &mut GateOutcome,
    name: &str,
    baseline: f64,
    candidate: f64,
    floor_factor: f64,
) {
    let line = format!(
        "{name}: candidate {candidate:.3} vs baseline {baseline:.3} (floor {:.3})",
        baseline * floor_factor
    );
    if candidate >= baseline * floor_factor {
        out.passed.push(line);
    } else {
        out.failed.push(line);
    }
}

/// `candidate >= baseline - slack` (absolute check for fractions).
fn check_slack(out: &mut GateOutcome, name: &str, baseline: f64, candidate: f64, slack: f64) {
    let line =
        format!("{name}: candidate {candidate:.4} vs baseline {baseline:.4} (slack {slack:.3})");
    if candidate >= baseline - slack {
        out.passed.push(line);
    } else {
        out.failed.push(line);
    }
}

fn check_flag(out: &mut GateOutcome, name: &str, value: Result<bool, String>) {
    match value {
        Ok(true) => out.passed.push(format!("{name}: true")),
        Ok(false) => out.failed.push(format!("{name}: false")),
        Err(e) => out.failed.push(format!("{name}: {e}")),
    }
}

/// Closed-loop `mean_recall` of the first sweep point whose mode matches.
fn sweep_recall(v: &Value) -> Result<f64, String> {
    let Some(Value::Array(points)) = get(v, "sweep") else {
        return Err("missing `sweep` array".into());
    };
    points
        .iter()
        .find(|p| matches!(p.field("mode"), Some(Value::Str(m)) if m == "closed"))
        .and_then(|p| p.field("mean_recall").and_then(value_f64))
        .ok_or_else(|| "no closed-loop sweep point with mean_recall".into())
}

/// Gate a serving record against its baseline.
pub fn gate_serve(baseline: &Value, candidate: &Value) -> GateOutcome {
    let mut out = GateOutcome::default();
    check_flag(
        &mut out,
        "stats_match_serial",
        boolean(candidate, "stats_match_serial"),
    );
    check_flag(
        &mut out,
        "adaptive.all_within_target",
        boolean(candidate, "adaptive/all_within_target"),
    );
    // Exactly-once ticketing: the candidate record was produced through
    // the request/response client API with tickets == delivered events
    // asserted at every sweep point; the flag records that those asserts
    // ran (the bench aborts before writing a record if any failed).
    check_flag(
        &mut out,
        "exactly_once_ticketing",
        boolean(candidate, "exactly_once_ticketing"),
    );
    // The wire-protocol sweep's guarantees travel with the record: at
    // every forked-client point the socket transport must have reproduced
    // the serial stats, delivered exactly one terminal completion per
    // wire request, returned labels byte-identical to the in-process
    // reference digest, and kept the ledger and event stream reconciled.
    check_flag(
        &mut out,
        "net_sweep.stats_match_serial",
        boolean(candidate, "net_sweep/stats_match_serial"),
    );
    check_flag(
        &mut out,
        "net_sweep.exactly_once_ticketing",
        boolean(candidate, "net_sweep/exactly_once_ticketing"),
    );
    match get(candidate, "net_sweep/points") {
        Some(Value::Array(points)) if !points.is_empty() => {
            for p in points.iter() {
                let procs = p.field("procs").and_then(value_f64).unwrap_or(f64::NAN);
                for flag in ["labels_match", "conserved", "events_reconciled"] {
                    match p.field(flag) {
                        Some(Value::Bool(true)) => {
                            out.passed.push(format!("net @{procs} proc(s): {flag}"));
                        }
                        _ => out
                            .failed
                            .push(format!("net @{procs} proc(s): {flag} is not true")),
                    }
                }
            }
        }
        _ => out.failed.push("missing `net_sweep/points` array".into()),
    }
    match (
        num(baseline, "closed_loop_capacity_per_s"),
        num(candidate, "closed_loop_capacity_per_s"),
    ) {
        (Ok(b), Ok(c)) => check_ratio(
            &mut out,
            "closed_loop_capacity_per_s",
            b,
            c,
            THROUGHPUT_FLOOR,
        ),
        (b, c) => out
            .failed
            .push(format!("closed_loop_capacity_per_s: {b:?} vs {c:?}")),
    }
    // The observability layer's capacity tax, measured obs-off vs obs-on
    // on the candidate's own closed-loop fixture (best-of-trials), must
    // stay within the absolute ceiling.
    match num(candidate, "obs_overhead_fraction") {
        Ok(f) if f <= OBS_OVERHEAD_CEILING => out.passed.push(format!(
            "obs_overhead_fraction: {f:.4} <= {OBS_OVERHEAD_CEILING:.2}"
        )),
        Ok(f) => out.failed.push(format!(
            "obs_overhead_fraction: {f:.4} > {OBS_OVERHEAD_CEILING:.2}"
        )),
        Err(e) => out.failed.push(e),
    }
    match (sweep_recall(baseline), sweep_recall(candidate)) {
        (Ok(b), Ok(c)) => check_slack(&mut out, "closed-loop mean_recall", b, c, RECALL_SLACK),
        (b, c) => out
            .failed
            .push(format!("closed-loop mean_recall: {b:?} vs {c:?}")),
    }
    match (
        num(baseline, "batching_saving_fraction"),
        num(candidate, "batching_saving_fraction"),
    ) {
        (Ok(b), Ok(c)) => check_slack(&mut out, "batching_saving_fraction", b, c, SAVING_SLACK),
        (b, c) => out
            .failed
            .push(format!("batching_saving_fraction: {b:?} vs {c:?}")),
    }
    // The SLO-aware shedding win is re-verified from the candidate record
    // itself: on the same overloaded stream, aware mode must strictly
    // reduce the value-weighted shed loss and must not worsen the
    // deadline-met rate, and both modes must conserve every request.
    for mode in ["blind", "aware"] {
        check_flag(
            &mut out,
            &format!("slo_sweep.{mode}.conserved"),
            boolean(candidate, &format!("slo_sweep/{mode}/conserved")),
        );
    }
    match (
        num(candidate, "slo_sweep/aware/value_shed_loss"),
        num(candidate, "slo_sweep/blind/value_shed_loss"),
    ) {
        (Ok(aware), Ok(blind)) => {
            let line = format!("slo aware reduces value shed loss: {aware:.1} vs blind {blind:.1}");
            if aware < blind {
                out.passed.push(line);
            } else {
                out.failed.push(line);
            }
        }
        (a, b) => out
            .failed
            .push(format!("slo value_shed_loss incomplete: {a:?} vs {b:?}")),
    }
    match (
        num(candidate, "slo_sweep/aware/deadline_met_rate"),
        num(candidate, "slo_sweep/blind/deadline_met_rate"),
    ) {
        (Ok(aware), Ok(blind)) => {
            let line = format!("slo aware deadline-met no worse: {aware:.4} vs blind {blind:.4}");
            if aware >= blind {
                out.passed.push(line);
            } else {
                out.failed.push(line);
            }
        }
        (a, b) => out
            .failed
            .push(format!("slo deadline_met_rate incomplete: {a:?} vs {b:?}")),
    }
    // The label-cache economics are re-verified from the candidate record
    // itself: the bill saving must strictly increase with the repeat
    // rate, cache-on must strictly undercut cache-off's bill at repeat
    // >= 0.6, every point must conserve (cache_hit/coalesced included in
    // its ledger), and repeat 0 must be a perfect cache no-op.
    match get(candidate, "zipf_sweep") {
        Some(Value::Array(points)) if !points.is_empty() => {
            let mut prev: Option<(f64, f64)> = None;
            for p in points.iter() {
                let rate = p
                    .field("repeat_rate")
                    .and_then(value_f64)
                    .unwrap_or(f64::NAN);
                match p.field("conserved") {
                    Some(Value::Bool(true)) => out.passed.push(format!("zipf @{rate}: conserved")),
                    _ => out.failed.push(format!("zipf @{rate}: not conserved")),
                }
                match p.field("bill_saving_fraction").and_then(value_f64) {
                    Some(s) => {
                        if let Some((prate, psave)) = prev {
                            let line = format!(
                                "zipf bill saving increases with repeat rate: \
                                 {s:.4} @{rate} vs {psave:.4} @{prate}"
                            );
                            if s > psave {
                                out.passed.push(line);
                            } else {
                                out.failed.push(line);
                            }
                        }
                        prev = Some((rate, s));
                    }
                    None => out
                        .failed
                        .push(format!("zipf @{rate}: missing bill_saving_fraction")),
                }
                if rate >= 0.6 {
                    match (
                        p.field("bill_on_ms").and_then(value_f64),
                        p.field("bill_off_ms").and_then(value_f64),
                    ) {
                        (Some(on), Some(off)) => {
                            let line =
                                format!("zipf @{rate}: cache-on bill {on:.0} < cache-off {off:.0}");
                            if on < off {
                                out.passed.push(line);
                            } else {
                                out.failed.push(line);
                            }
                        }
                        _ => out
                            .failed
                            .push(format!("zipf @{rate}: missing bill fields")),
                    }
                }
                if rate == 0.0 {
                    let hits = p.field("cache_hit").and_then(value_f64).unwrap_or(f64::NAN)
                        + p.field("coalesced").and_then(value_f64).unwrap_or(f64::NAN);
                    let line = format!("zipf @0: cache is a no-op ({hits:.0} cached answers)");
                    if hits == 0.0 {
                        out.passed.push(line);
                    } else {
                        out.failed.push(line);
                    }
                }
            }
        }
        _ => out.failed.push("missing `zipf_sweep` array".into()),
    }
    // The online-adaptation win is re-verified from the candidate record
    // itself: with adaptation off the serving path must have reproduced
    // the serial engine byte-for-byte over the same drifted stream, and
    // with it on the trainer must have actually hot-swapped generations
    // and banked strictly more post-shift value than the frozen path,
    // with ledgers and event streams intact in both modes.
    check_flag(
        &mut out,
        "drift_sweep.frozen_matches_serial",
        boolean(candidate, "drift_sweep/frozen_matches_serial"),
    );
    for mode in ["frozen", "adaptive"] {
        check_flag(
            &mut out,
            &format!("drift_sweep.{mode}.conserved"),
            boolean(candidate, &format!("drift_sweep/{mode}/conserved")),
        );
        check_flag(
            &mut out,
            &format!("drift_sweep.{mode}.events_reconciled"),
            boolean(candidate, &format!("drift_sweep/{mode}/events_reconciled")),
        );
    }
    match (
        num(candidate, "drift_sweep/adaptive/phase2_value"),
        num(candidate, "drift_sweep/frozen/phase2_value"),
    ) {
        (Ok(adaptive), Ok(frozen)) => {
            let line = format!(
                "drift adaptive banks more post-shift value: {adaptive:.1} vs frozen {frozen:.1}"
            );
            if adaptive > frozen {
                out.passed.push(line);
            } else {
                out.failed.push(line);
            }
        }
        (a, f) => out
            .failed
            .push(format!("drift phase2_value incomplete: {a:?} vs {f:?}")),
    }
    match num(candidate, "drift_sweep/adaptive/swaps") {
        Ok(s) if s > 0.0 => out
            .passed
            .push(format!("drift adaptive swapped generations: {s:.0}")),
        Ok(_) => out
            .failed
            .push("drift adaptive never swapped a generation".into()),
        Err(e) => out.failed.push(e),
    }
    // The routing win is re-verified from the candidate record itself:
    // affinity must out-coalesce hash at every measured load factor.
    match get(candidate, "routing_sweep") {
        Some(Value::Array(points)) => {
            let coal = |mode: &str, lf: f64| -> Option<f64> {
                points
                    .iter()
                    .find(|p| {
                        matches!(p.field("mode"), Some(Value::Str(m)) if m == mode)
                            && p.field("load_factor").and_then(value_f64) == Some(lf)
                    })
                    .and_then(|p| p.field("mean_coalesced").and_then(value_f64))
            };
            let factors: Vec<f64> = points
                .iter()
                .filter_map(|p| p.field("load_factor").and_then(value_f64))
                .fold(Vec::new(), |mut acc, lf| {
                    if !acc.contains(&lf) {
                        acc.push(lf);
                    }
                    acc
                });
            if factors.is_empty() {
                out.failed.push("empty `routing_sweep`".into());
            }
            for lf in factors {
                match (coal("hash", lf), coal("affinity", lf)) {
                    (Some(h), Some(a)) => {
                        let line = format!("affinity out-coalesces hash @{lf}x: {a:.3} vs {h:.3}");
                        if a > h {
                            out.passed.push(line);
                        } else {
                            out.failed.push(line);
                        }
                    }
                    (h, a) => out
                        .failed
                        .push(format!("routing point @{lf}x incomplete: {h:?} vs {a:?}")),
                }
            }
        }
        _ => out.failed.push("missing `routing_sweep` array".into()),
    }
    out
}

/// Gate a hot-path record against its baseline.
pub fn gate_hotpath(baseline: &Value, candidate: &Value) -> GateOutcome {
    let mut out = GateOutcome::default();
    for field in [
        "learn_speedup",
        "stream_speedup",
        "compute_stream_speedup_auto",
    ] {
        match (num(baseline, field), num(candidate, field)) {
            (Ok(b), Ok(c)) => check_ratio(&mut out, field, b, c, SPEEDUP_FLOOR),
            (b, c) => out.failed.push(format!("{field}: {b:?} vs {c:?}")),
        }
    }
    match num(candidate, "q_equivalence_max_abs_diff") {
        Ok(d) if d < 1e-5 => out
            .passed
            .push(format!("q_equivalence_max_abs_diff: {d:.2e} < 1e-5")),
        Ok(d) => out
            .failed
            .push(format!("q_equivalence_max_abs_diff: {d:.2e} >= 1e-5")),
        Err(e) => out.failed.push(e),
    }
    out
}

/// Run the gate of `kind` over two parsed records.
pub fn run_gate(kind: GateKind, baseline: &Value, candidate: &Value) -> GateOutcome {
    match kind {
        GateKind::Serve => gate_serve(baseline, candidate),
        GateKind::Hotpath => gate_hotpath(baseline, candidate),
    }
}

/// Mutable lookup of an object field (for the self-test's injections).
fn field_mut<'v>(v: &'v mut Value, name: &str) -> Option<&'v mut Value> {
    match v {
        Value::Object(fields) => fields
            .iter_mut()
            .find(|(k, _)| k == name)
            .map(|(_, val)| val),
        _ => None,
    }
}

/// Walk a `/`-separated path mutably.
fn get_mut<'v>(v: &'v mut Value, path: &str) -> Option<&'v mut Value> {
    let mut cur = v;
    for part in path.split('/') {
        cur = match part.parse::<usize>() {
            Ok(i) => match cur {
                Value::Array(items) => items.get_mut(i)?,
                _ => return None,
            },
            Err(_) => field_mut(cur, part)?,
        };
    }
    Some(cur)
}

/// Overwrite the value at `path` (self-test injections only; missing paths
/// are a self-test bug and panic).
fn inject_at(v: &mut Value, path: &str, new: Value) {
    *get_mut(v, path).unwrap_or_else(|| panic!("self-test path `{path}` missing")) = new;
}

/// Scale the number at `path` by `factor`.
fn scale_at(v: &mut Value, path: &str, factor: f64) {
    let cur = get(v, path).and_then(value_f64).unwrap_or(0.0);
    inject_at(v, path, Value::F64(cur * factor));
}

/// Subtract `delta` from the number at `path`.
fn sub_at(v: &mut Value, path: &str, delta: f64) {
    let cur = get(v, path).and_then(value_f64).unwrap_or(0.0);
    inject_at(v, path, Value::F64(cur - delta));
}

/// Index of the first sweep point with the given mode (self-test helper).
fn sweep_index(v: &Value, mode: &str) -> Option<usize> {
    match get(v, "sweep") {
        Some(Value::Array(points)) => points
            .iter()
            .position(|p| matches!(p.field("mode"), Some(Value::Str(m)) if m == mode)),
        _ => None,
    }
}

/// Prove the gate *can* fail: inject synthetic regressions into a copy of
/// each baseline and require every injection to trip its check, while the
/// untouched baseline passes against itself. Returns the injections that
/// were exercised.
pub fn self_test(serve_baseline: &Value, hotpath_baseline: &Value) -> Result<Vec<String>, String> {
    let mut exercised = Vec::new();

    let self_check = gate_serve(serve_baseline, serve_baseline);
    if !self_check.ok() {
        return Err(format!(
            "serve baseline must pass against itself:\n{}",
            self_check.render()
        ));
    }
    let self_check = gate_hotpath(hotpath_baseline, hotpath_baseline);
    if !self_check.ok() {
        return Err(format!(
            "hotpath baseline must pass against itself:\n{}",
            self_check.render()
        ));
    }

    let mut inject = |name: &str,
                      kind: GateKind,
                      baseline: &Value,
                      mutate: &dyn Fn(&mut Value)|
     -> Result<(), String> {
        let mut bad = baseline.clone();
        mutate(&mut bad);
        if run_gate(kind, baseline, &bad).ok() {
            return Err(format!("injected regression `{name}` was NOT caught"));
        }
        exercised.push(name.to_string());
        Ok(())
    };

    let closed = sweep_index(serve_baseline, "closed")
        .ok_or("serve baseline has no closed-loop sweep point")?;
    inject(
        "capacity collapse (x0.3)",
        GateKind::Serve,
        serve_baseline,
        &|v| scale_at(v, "closed_loop_capacity_per_s", 0.3),
    )?;
    inject(
        "recall regression (-0.1)",
        GateKind::Serve,
        serve_baseline,
        &|v| sub_at(v, &format!("sweep/{closed}/mean_recall"), 0.1),
    )?;
    inject(
        "batching saving collapse (-0.3)",
        GateKind::Serve,
        serve_baseline,
        &|v| sub_at(v, "batching_saving_fraction", 0.3),
    )?;
    inject(
        "adaptive target missed",
        GateKind::Serve,
        serve_baseline,
        &|v| inject_at(v, "adaptive/all_within_target", Value::Bool(false)),
    )?;
    inject(
        "affinity coalescing win lost",
        GateKind::Serve,
        serve_baseline,
        &|v| {
            if let Some(Value::Array(points)) = get_mut(v, "routing_sweep") {
                for p in points {
                    if matches!(p.field("mode"), Some(Value::Str(m)) if m == "affinity") {
                        if let Some(c) = field_mut(p, "mean_coalesced") {
                            *c = Value::F64(1.0);
                        }
                    }
                }
            }
        },
    )?;
    inject(
        "SLO shedding win lost",
        GateKind::Serve,
        serve_baseline,
        &|v| {
            let blind = get(v, "slo_sweep/blind/value_shed_loss")
                .and_then(value_f64)
                .unwrap_or(0.0);
            inject_at(
                v,
                "slo_sweep/aware/value_shed_loss",
                Value::F64(blind + 1.0),
            );
        },
    )?;
    inject(
        "SLO deadline-met regression",
        GateKind::Serve,
        serve_baseline,
        &|v| sub_at(v, "slo_sweep/aware/deadline_met_rate", 0.5),
    )?;
    inject(
        "SLO conservation broken",
        GateKind::Serve,
        serve_baseline,
        &|v| inject_at(v, "slo_sweep/aware/conserved", Value::Bool(false)),
    )?;
    inject(
        "label-cache dedup win lost",
        GateKind::Serve,
        serve_baseline,
        &|v| {
            if let Some(Value::Array(points)) = get_mut(v, "zipf_sweep") {
                if let Some(last) = points.last_mut() {
                    if let Some(s) = field_mut(last, "bill_saving_fraction") {
                        *s = Value::F64(0.0);
                    }
                }
            }
        },
    )?;
    inject(
        "exactly-once ticketing lost",
        GateKind::Serve,
        serve_baseline,
        &|v| inject_at(v, "exactly_once_ticketing", Value::Bool(false)),
    )?;
    inject(
        "wire labels diverged",
        GateKind::Serve,
        serve_baseline,
        &|v| inject_at(v, "net_sweep/points/0/labels_match", Value::Bool(false)),
    )?;
    inject(
        "wire exactly-once lost",
        GateKind::Serve,
        serve_baseline,
        &|v| inject_at(v, "net_sweep/exactly_once_ticketing", Value::Bool(false)),
    )?;
    inject(
        "wire conservation broken",
        GateKind::Serve,
        serve_baseline,
        &|v| inject_at(v, "net_sweep/points/1/conserved", Value::Bool(false)),
    )?;
    inject(
        "drift adaptation win lost",
        GateKind::Serve,
        serve_baseline,
        &|v| {
            let frozen = get(v, "drift_sweep/frozen/phase2_value")
                .and_then(value_f64)
                .unwrap_or(0.0);
            inject_at(v, "drift_sweep/adaptive/phase2_value", Value::F64(frozen));
        },
    )?;
    inject(
        "drift frozen-path identity broken",
        GateKind::Serve,
        serve_baseline,
        &|v| inject_at(v, "drift_sweep/frozen_matches_serial", Value::Bool(false)),
    )?;
    inject(
        "observability overhead blowout (10%)",
        GateKind::Serve,
        serve_baseline,
        &|v| inject_at(v, "obs_overhead_fraction", Value::F64(0.10)),
    )?;
    inject(
        "learn speedup collapse (x0.3)",
        GateKind::Hotpath,
        hotpath_baseline,
        &|v| scale_at(v, "learn_speedup", 0.3),
    )?;
    inject(
        "batched-Q divergence",
        GateKind::Hotpath,
        hotpath_baseline,
        &|v| inject_at(v, "q_equivalence_max_abs_diff", Value::F64(0.5)),
    )?;

    Ok(exercised)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serve_record() -> Value {
        serde_json::parse_value(
            r#"{
                "stats_match_serial": true,
                "exactly_once_ticketing": true,
                "closed_loop_capacity_per_s": 1800.0,
                "batching_saving_fraction": 0.8,
                "obs_overhead_fraction": 0.004,
                "adaptive": { "all_within_target": true },
                "routing_sweep": [
                    { "mode": "hash", "load_factor": 0.8, "mean_coalesced": 2.5 },
                    { "mode": "affinity", "load_factor": 0.8, "mean_coalesced": 2.9 },
                    { "mode": "hash", "load_factor": 1.6, "mean_coalesced": 3.5 },
                    { "mode": "affinity", "load_factor": 1.6, "mean_coalesced": 3.6 }
                ],
                "slo_sweep": {
                    "blind": { "value_shed_loss": 8400.0, "deadline_met_rate": 0.75, "conserved": true },
                    "aware": { "value_shed_loss": 5800.0, "deadline_met_rate": 0.78, "conserved": true }
                },
                "zipf_sweep": [
                    { "repeat_rate": 0.0, "cache_hit": 0, "coalesced": 0,
                      "bill_on_ms": 48600, "bill_off_ms": 48900, "bill_saving_fraction": 0.006,
                      "conserved": true },
                    { "repeat_rate": 0.3, "cache_hit": 22, "coalesced": 6,
                      "bill_on_ms": 37100, "bill_off_ms": 52000, "bill_saving_fraction": 0.29,
                      "conserved": true },
                    { "repeat_rate": 0.6, "cache_hit": 46, "coalesced": 12,
                      "bill_on_ms": 22300, "bill_off_ms": 53500, "bill_saving_fraction": 0.58,
                      "conserved": true },
                    { "repeat_rate": 0.9, "cache_hit": 66, "coalesced": 14,
                      "bill_on_ms": 8800, "bill_off_ms": 51400, "bill_saving_fraction": 0.83,
                      "conserved": true }
                ],
                "drift_sweep": {
                    "phase1_profile": "Coco2017",
                    "phase2_profile": "Places365",
                    "frozen_matches_serial": true,
                    "phase2_value_gain": 1.18,
                    "frozen": { "phase2_value": 512.0, "swaps": 0,
                      "conserved": true, "events_reconciled": true },
                    "adaptive": { "phase2_value": 604.0, "swaps": 12,
                      "conserved": true, "events_reconciled": true }
                },
                "net_sweep": {
                    "window": 32,
                    "stats_match_serial": true,
                    "exactly_once_ticketing": true,
                    "reference_digest": "9f1c2b3a4d5e6f70",
                    "points": [
                        { "procs": 1, "offered": 96, "completed": 96,
                          "achieved_per_s": 4500.0, "labels_match": true,
                          "stats_match_serial": true, "exactly_once": true,
                          "conserved": true, "events_reconciled": true },
                        { "procs": 2, "offered": 96, "completed": 96,
                          "achieved_per_s": 2900.0, "labels_match": true,
                          "stats_match_serial": true, "exactly_once": true,
                          "conserved": true, "events_reconciled": true },
                        { "procs": 4, "offered": 96, "completed": 96,
                          "achieved_per_s": 1700.0, "labels_match": true,
                          "stats_match_serial": true, "exactly_once": true,
                          "conserved": true, "events_reconciled": true }
                    ]
                },
                "sweep": [
                    { "mode": "closed", "mean_recall": 0.72 },
                    { "mode": "open", "mean_recall": 0.70 }
                ]
            }"#,
        )
        .expect("fixture parses")
    }

    fn hotpath_record() -> Value {
        serde_json::parse_value(
            r#"{
                "learn_speedup": 4.0,
                "stream_speedup": 4.0,
                "compute_stream_speedup_auto": 1.0,
                "q_equivalence_max_abs_diff": 1e-7
            }"#,
        )
        .expect("fixture parses")
    }

    #[test]
    fn identical_records_pass() {
        let s = serve_record();
        let h = hotpath_record();
        assert!(gate_serve(&s, &s).ok(), "{}", gate_serve(&s, &s).render());
        assert!(gate_hotpath(&h, &h).ok());
    }

    #[test]
    fn modest_noise_passes_but_collapse_fails() {
        let base = serve_record();
        let mut noisy = base.clone();
        inject_at(&mut noisy, "closed_loop_capacity_per_s", Value::F64(1500.0));
        assert!(gate_serve(&base, &noisy).ok(), "-17% is machine noise");
        inject_at(&mut noisy, "closed_loop_capacity_per_s", Value::F64(700.0));
        assert!(!gate_serve(&base, &noisy).ok(), "-61% is a collapse");
    }

    #[test]
    fn recall_is_gated_tightly() {
        let base = serve_record();
        let mut bad = base.clone();
        inject_at(&mut bad, "sweep/0/mean_recall", Value::F64(0.67));
        assert!(!gate_serve(&base, &bad).ok());
        inject_at(&mut bad, "sweep/0/mean_recall", Value::F64(0.71));
        assert!(gate_serve(&base, &bad).ok(), "1 point is within slack");
    }

    #[test]
    fn lost_routing_win_fails() {
        let base = serve_record();
        let mut bad = base.clone();
        inject_at(&mut bad, "routing_sweep/1/mean_coalesced", Value::F64(2.4));
        assert!(!gate_serve(&base, &bad).ok());
    }

    #[test]
    fn missing_fields_fail_loudly() {
        let base = serve_record();
        let empty = Value::Object(Vec::new());
        let out = gate_serve(&base, &empty);
        assert!(!out.ok());
        assert!(out.render().contains("FAIL"));
    }

    #[test]
    fn hotpath_equivalence_is_absolute() {
        let base = hotpath_record();
        let mut bad = base.clone();
        inject_at(&mut bad, "q_equivalence_max_abs_diff", Value::F64(0.1));
        assert!(!gate_hotpath(&base, &bad).ok());
    }

    #[test]
    fn self_test_exercises_every_injection() {
        let injected = self_test(&serve_record(), &hotpath_record()).expect("self test passes");
        assert_eq!(injected.len(), 18, "{injected:?}");
    }

    #[test]
    fn obs_overhead_is_gated_absolutely() {
        let base = serve_record();
        // Right at the ceiling passes; just over it fails, even though the
        // baseline itself carried a far smaller fraction (absolute check).
        let mut cand = base.clone();
        inject_at(&mut cand, "obs_overhead_fraction", Value::F64(0.02));
        assert!(
            gate_serve(&base, &cand).ok(),
            "{}",
            gate_serve(&base, &cand).render()
        );
        inject_at(&mut cand, "obs_overhead_fraction", Value::F64(0.021));
        assert!(!gate_serve(&base, &cand).ok());
        // A record that drops the field fails loudly.
        let mut cand = base.clone();
        if let Value::Object(fields) = &mut cand {
            fields.retain(|(k, _)| k != "obs_overhead_fraction");
        }
        assert!(!gate_serve(&base, &cand).ok());
    }

    #[test]
    fn zipf_cache_economics_are_gated() {
        let base = serve_record();
        // A flat (non-increasing) bill saving fails.
        let mut bad = base.clone();
        inject_at(
            &mut bad,
            "zipf_sweep/2/bill_saving_fraction",
            Value::F64(0.29),
        );
        assert!(!gate_serve(&base, &bad).ok());
        // Cache-on no longer undercutting cache-off at repeat >= 0.6 fails.
        let mut bad = base.clone();
        inject_at(&mut bad, "zipf_sweep/3/bill_on_ms", Value::U64(60_000));
        assert!(!gate_serve(&base, &bad).ok());
        // A unique stream with cache hits (broken no-op) fails.
        let mut bad = base.clone();
        inject_at(&mut bad, "zipf_sweep/0/cache_hit", Value::U64(3));
        assert!(!gate_serve(&base, &bad).ok());
        // A broken ledger at any point fails.
        let mut bad = base.clone();
        inject_at(&mut bad, "zipf_sweep/1/conserved", Value::Bool(false));
        assert!(!gate_serve(&base, &bad).ok());
    }

    #[test]
    fn wire_transparency_is_gated() {
        let base = serve_record();
        // Labels diverging from the in-process reference at any point
        // fails.
        let mut bad = base.clone();
        inject_at(
            &mut bad,
            "net_sweep/points/2/labels_match",
            Value::Bool(false),
        );
        assert!(!gate_serve(&base, &bad).ok());
        // A dropped event stream through the transport fails.
        let mut bad = base.clone();
        inject_at(
            &mut bad,
            "net_sweep/points/0/events_reconciled",
            Value::Bool(false),
        );
        assert!(!gate_serve(&base, &bad).ok());
        // Serial-stats divergence through the socket fails.
        let mut bad = base.clone();
        inject_at(&mut bad, "net_sweep/stats_match_serial", Value::Bool(false));
        assert!(!gate_serve(&base, &bad).ok());
        // A record missing the sweep entirely fails loudly.
        let mut bad = base.clone();
        if let Value::Object(fields) = &mut bad {
            fields.retain(|(k, _)| k != "net_sweep");
        }
        assert!(!gate_serve(&base, &bad).ok());
    }

    #[test]
    fn drift_adaptation_is_gated() {
        let base = serve_record();
        // Adaptive merely tying frozen on post-shift value fails (the win
        // must be strict).
        let mut bad = base.clone();
        inject_at(
            &mut bad,
            "drift_sweep/adaptive/phase2_value",
            Value::F64(512.0),
        );
        assert!(!gate_serve(&base, &bad).ok());
        // A trainer that never published a generation fails.
        let mut bad = base.clone();
        inject_at(&mut bad, "drift_sweep/adaptive/swaps", Value::U64(0));
        assert!(!gate_serve(&base, &bad).ok());
        // The off-switch losing byte-identity fails.
        let mut bad = base.clone();
        inject_at(
            &mut bad,
            "drift_sweep/frozen_matches_serial",
            Value::Bool(false),
        );
        assert!(!gate_serve(&base, &bad).ok());
        // A dropped event stream in either mode fails.
        let mut bad = base.clone();
        inject_at(
            &mut bad,
            "drift_sweep/adaptive/events_reconciled",
            Value::Bool(false),
        );
        assert!(!gate_serve(&base, &bad).ok());
        // A record missing the sweep entirely fails loudly.
        let mut bad = base.clone();
        if let Value::Object(fields) = &mut bad {
            fields.retain(|(k, _)| k != "drift_sweep");
        }
        assert!(!gate_serve(&base, &bad).ok());
    }

    #[test]
    fn slo_win_and_conservation_are_gated() {
        let base = serve_record();
        let mut bad = base.clone();
        // Aware no longer beating blind on value loss fails.
        inject_at(
            &mut bad,
            "slo_sweep/aware/value_shed_loss",
            Value::F64(8400.0),
        );
        assert!(!gate_serve(&base, &bad).ok());
        // A worse deadline-met rate fails.
        let mut bad = base.clone();
        inject_at(
            &mut bad,
            "slo_sweep/aware/deadline_met_rate",
            Value::F64(0.70),
        );
        assert!(!gate_serve(&base, &bad).ok());
        // A broken ledger fails even with the wins intact.
        let mut bad = base.clone();
        inject_at(&mut bad, "slo_sweep/blind/conserved", Value::Bool(false));
        assert!(!gate_serve(&base, &bad).ok());
    }
}
