//! Shared fixtures for the hot-path benchmarks (`bench_hotpath` binary and
//! the `hotpath` criterion bench): a paper-architecture Q-net pair plus a
//! replay buffer filled from real random-policy episodes, so the measured
//! minibatches have realistic sparse-state density (~tens of active labels).

use ams::nn::{QNet, QNetConfig};
use ams::prelude::*;
use ams::rl::{ReplayBuffer, Transition};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Fill a replay buffer with `min_transitions`+ transitions from uniform
/// random-policy episodes over `items`.
pub fn fill_replay(
    items: &[ItemTruth],
    num_models: usize,
    reward: &RewardConfig,
    min_transitions: usize,
    seed: u64,
) -> ReplayBuffer {
    let mut replay = ReplayBuffer::new(min_transitions.next_power_of_two().max(1024));
    let mut rng = StdRng::seed_from_u64(seed);
    while replay.len() < min_transitions {
        let item = &items[rng.gen_range(0..items.len())];
        let mut env = LabelingEnv::new(item, reward, num_models, true);
        let mut state: Arc<[u32]> = env.state_sparse().into();
        loop {
            let avail = env.available_mask();
            let n_avail = avail.count_ones();
            let mut k = rng.gen_range(0..n_avail);
            let mut action = 0usize;
            for a in 0..=num_models {
                if avail >> a & 1 == 1 {
                    if k == 0 {
                        action = a;
                        break;
                    }
                    k -= 1;
                }
            }
            let step = env.step(action);
            let next_state: Arc<[u32]> = env.state_sparse().into();
            replay.push(Transition {
                state: Arc::clone(&state),
                action: action as u8,
                reward: step.reward,
                next_state: Arc::clone(&next_state),
                next_avail: env.available_mask(),
                next_action: 0,
                done: step.done,
            });
            if step.done {
                break;
            }
            state = next_state;
        }
    }
    replay
}

/// The seed repository's Adam update loop, frozen for benchmarking: the
/// indexed, division-heavy form whose sequential bias-corrected math the
/// compiler cannot vectorize. `ams_nn::Adam` has since been rewritten as a
/// vectorizable sweep; this replica keeps the pre-optimization baseline
/// measurable.
pub struct SeedAdam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl SeedAdam {
    /// Seed defaults with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// One update step (the seed's loop, verbatim).
    pub fn step(&mut self, params: &mut [&mut [f32]], grads: &[&[f32]]) {
        assert_eq!(params.len(), grads.len());
        if self.m.is_empty() {
            self.m = grads.iter().map(|g| vec![0.0; g.len()]).collect();
            self.v = grads.iter().map(|g| vec![0.0; g.len()]).collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!(p.len(), g.len());
            for i in 0..p.len() {
                let gi = g[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * gi;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * gi * gi;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Buffers the seed's `train()` allocated once and reused across gradient
/// steps, mirrored here so the frozen baseline keeps the seed's exact call
/// structure (the per-call allocations it *did* make were the backward
/// pass's internal `gfeat`/`gin` buffers, reproduced in
/// [`learn_step_seed`] with a fresh `BwdCache` per pass).
pub struct SeedScratch {
    grads: ams::nn::QNetGrads,
    cache: ams::nn::FwdCache,
    act_cache: ams::nn::FwdCache,
    tgt_cache: ams::nn::FwdCache,
    gq: Vec<f32>,
}

impl SeedScratch {
    /// Scratch shaped for `net`.
    pub fn new(net: &ams::nn::QNet) -> Self {
        Self {
            grads: net.zero_grads(),
            cache: ams::nn::FwdCache::default(),
            act_cache: ams::nn::FwdCache::default(),
            tgt_cache: ams::nn::FwdCache::default(),
            gq: vec![0.0; net.actions()],
        }
    }
}

/// The seed repository's learn step, frozen for benchmarking: one scalar
/// forward/backward per sampled transition, a fresh backward-scratch
/// allocation per pass (the seed's `backward` allocated its `gfeat`/`gin`
/// buffers internally), full re-zeroing of the one-hot output gradient per
/// sample, a post-hoc `1/batch` gradient rescale sweep, and [`SeedAdam`].
/// This is the baseline `learn_speedup` in `BENCH_hotpath.json` is
/// measured against.
#[allow(clippy::too_many_arguments)] // mirrors the seed learn step's signature
pub fn learn_step_seed(
    net: &mut ams::nn::QNet,
    target: &ams::nn::QNet,
    opt: &mut SeedAdam,
    replay: &ReplayBuffer,
    cfg: &TrainConfig,
    huber: &ams::nn::Huber,
    rng: &mut StdRng,
    scratch: &mut SeedScratch,
) -> f32 {
    use ams::nn::{BwdCache, Input};
    use ams::rl::masked_argmax;
    let idx = replay.sample_indices(cfg.batch, rng);
    let SeedScratch {
        grads,
        cache,
        act_cache,
        tgt_cache,
        gq,
    } = scratch;
    grads.zero();
    let mut total_loss = 0.0f32;

    for &i in &idx {
        let tr = replay.get(i);
        let y = if tr.done {
            tr.reward
        } else {
            let bootstrap = match cfg.algo {
                Algo::Dqn | Algo::DuelingDqn => {
                    let qt = target.forward(Input::Sparse(&tr.next_state), tgt_cache);
                    qt[masked_argmax(qt, tr.next_avail)]
                }
                Algo::DoubleDqn => {
                    let qo = net.forward(Input::Sparse(&tr.next_state), act_cache);
                    let a_star = masked_argmax(qo, tr.next_avail);
                    let qt = target.forward(Input::Sparse(&tr.next_state), tgt_cache);
                    qt[a_star]
                }
                Algo::DeepSarsa => {
                    let qt = target.forward(Input::Sparse(&tr.next_state), tgt_cache);
                    qt[tr.next_action as usize]
                }
            };
            tr.reward + cfg.gamma * bootstrap
        };

        let qs = net.forward(Input::Sparse(&tr.state), cache);
        let residual = qs[tr.action as usize] - y;
        total_loss += huber.loss(residual);
        gq.fill(0.0);
        gq[tr.action as usize] = huber.dloss(residual);
        // Fresh scratch per backward call = the seed's per-call
        // `gfeat`/`gin` allocations.
        let mut bwd = BwdCache::default();
        net.backward(Input::Sparse(&tr.state), cache, gq, grads, &mut bwd);
    }

    grads.scale(1.0 / cfg.batch as f32);
    let g = grads.tensors();
    let mut p = net.tensors_mut();
    opt.step(&mut p, &g);
    total_loss / cfg.batch as f32
}

/// The stream/serving fixture shared by `bench_hotpath` and `bench_serve`:
/// a COCO-like truth table (seed 7) plus a fast-test DQN agent, so both
/// records measure the same workload and stay comparable.
pub struct StreamSetup {
    /// Ground truth for the item stream.
    pub truth: TruthTable,
    /// The trained value-prediction agent.
    pub agent: TrainedAgent,
    /// World seed the scenes were generated with.
    pub world_seed: u64,
}

impl StreamSetup {
    /// `items` COCO-like scenes; agent trained for `episodes` episodes.
    pub fn paper(items: usize, episodes: usize) -> Self {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, items, 7);
        let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        let cfg = TrainConfig {
            episodes,
            ..TrainConfig::fast_test(Algo::Dqn)
        };
        let (agent, _) = train(truth.items(), zoo.len(), &cfg);
        Self {
            truth,
            agent,
            world_seed: ds.world_seed,
        }
    }

    /// A fresh scheduler over a clone of the trained agent.
    pub fn scheduler(&self) -> AdaptiveModelScheduler {
        AdaptiveModelScheduler::new(
            ModelZoo::standard(),
            Box::new(AgentPredictor::new(self.agent.clone())),
            0.5,
            self.world_seed,
        )
    }
}

/// Everything a learn-step benchmark needs, at the paper architecture.
pub struct LearnSetup {
    /// Training config (batch size, γ, lr, …).
    pub cfg: TrainConfig,
    /// Online network.
    pub net: QNet,
    /// Frozen target network.
    pub target: QNet,
    /// Replay filled with realistic sparse-state transitions.
    pub replay: ReplayBuffer,
}

impl LearnSetup {
    /// Paper architecture (1104 → 256 ReLU → 31) over a 60-item COCO-like
    /// world, replay pre-filled with 4096 random-policy transitions.
    pub fn paper(algo: Algo, batch: usize) -> Self {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 60, 2020);
        let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        let cfg = TrainConfig {
            batch,
            ..TrainConfig::new(algo)
        };
        let actions = zoo.len() + 1;
        let net = QNet::new(
            QNetConfig {
                input_dim: cfg.input_dim,
                hidden: cfg.hidden.clone(),
                actions,
                dueling: algo.dueling_head(),
            },
            42,
        );
        let target = net.clone();
        let replay = fill_replay(truth.items(), zoo.len(), &cfg.reward, 4096, 9);
        Self {
            cfg,
            net,
            target,
            replay,
        }
    }
}
