//! Internal calibration probe: choose the default discount factor γ by
//! measuring both the Q-greedy (Fig. 4/5) and Algorithm 1/2 (Figs. 10/11)
//! behaviour of agents trained at several γ values.
use ams::core::policies::{aggregate_rollouts, predictor_greedy_rollout, random_rollout};
use ams::core::scheduler::optimal_star;
use ams::prelude::*;

fn main() {
    let zoo = ModelZoo::standard();
    let catalog = zoo.catalog();
    let ds = Dataset::generate(DatasetProfile::Coco2017, 600, 20200208);
    let table = TruthTable::build(&zoo, &catalog, &ds, 0.5);
    let split = ds.split_1_to_4();
    let (train_items, test_items) = table.split(split);
    let items: Vec<ItemTruth> = test_items.iter().take(200).cloned().collect();

    let (rm, _) = aggregate_rollouts(items.iter(), |it| random_rollout(it, &zoo, 0.8, 0.5, 5));
    println!("random models@0.8 = {rm:.2}");

    for gamma in [0.9f32, 0.5, 0.3, 0.1] {
        let cfg = TrainConfig {
            episodes: 1200,
            gamma,
            ..TrainConfig::new(Algo::DuelingDqn)
        };
        let (agent, _) = train(train_items, zoo.len(), &cfg);
        let p = AgentPredictor::new(agent);
        let (m08, _) = aggregate_rollouts(items.iter(), |it| {
            predictor_greedy_rollout(it, &zoo, &p, 0.8, 0.5)
        });
        let (m10, _) = aggregate_rollouts(items.iter(), |it| {
            predictor_greedy_rollout(it, &zoo, &p, 1.0, 0.5)
        });
        // Alg1 at 0.5s and 1s
        let mut a05 = 0.0;
        let mut a10 = 0.0;
        let mut s05 = 0.0;
        let mut mem08 = 0.0;
        for it in &items {
            a05 += schedule_deadline(&p, &zoo, it, 500, 0.5).recall;
            a10 += schedule_deadline(&p, &zoo, it, 1000, 0.5).recall;
            s05 += optimal_star::recall::deadline(&zoo, it, 500, 0.5);
            mem08 += schedule_deadline_memory(&p, &zoo, it, 800, 8192, 0.5).recall;
        }
        let n = items.len() as f64;
        println!(
            "gamma {gamma}: qgreedy m@0.8={m08:.2} m@1.0={m10:.2} | alg1 r@0.5s={:.3} r@1s={:.3} (star@0.5s={:.3}) | alg2 r@0.8s/8GB={:.3}",
            a05 / n, a10 / n, s05 / n, mem08 / n
        );
    }
}
