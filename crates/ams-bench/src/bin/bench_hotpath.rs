//! Hot-path benchmark: scalar vs batched `learn_step`, serial vs parallel
//! stream processing. Writes the measured trajectory to
//! `BENCH_hotpath.json` (methodology in `PERF.md`).
//!
//! `--smoke` runs a shortened pass (fewer timed iterations, smaller stream
//! fixture) and writes `target/BENCH_hotpath.smoke.json` instead — the CI
//! bench gate compares it against the committed smoke baseline without
//! ever clobbering the full record.
//!
//! Run with: `cargo run --release -p ams-bench --bin bench_hotpath [-- --smoke]`

use ams::nn::{BatchFwdCache, BatchInput, FwdCache, Input, QNet, QNetConfig};
use ams::prelude::*;
use ams::rl::{BatchScratch, ScalarScratch};
use ams_bench::hotpath::{learn_step_seed, LearnSetup, SeedAdam, SeedScratch};
use serde::Serialize;
use std::time::Instant;

/// One measured configuration.
#[derive(Debug, Serialize)]
struct Measurement {
    name: String,
    iters: u64,
    ns_per_iter: f64,
}

/// The whole benchmark record.
#[derive(Debug, Serialize)]
struct Record {
    description: String,
    cores_available: usize,
    smoke: bool,
    batch: usize,
    /// The seed repository's learn step (scalar passes, per-call backward
    /// allocations, non-vectorized Adam) — the pre-PR baseline.
    learn_seed_ns: f64,
    /// The in-tree scalar reference after the allocation-hoisting fixes
    /// (shares the vectorized Adam with the batched path).
    learn_scalar_ns: f64,
    learn_batched_ns: f64,
    /// Seed scalar baseline / batched: the speedup this PR's batched +
    /// vectorized substrate delivers for one gradient step at `batch`.
    learn_speedup: f64,
    /// Hoisted in-tree scalar / batched: the share of the win owed to
    /// batching alone (both sides use the vectorized Adam, which Amdahl
    /// makes the common floor).
    learn_speedup_vs_hoisted_scalar: f64,
    /// Max |Q_batched − Q_scalar| over a replay minibatch (must be < 1e-5).
    q_equivalence_max_abs_diff: f64,
    stream_items: usize,
    /// Compute-only engine throughput (virtual execution elided). On a
    /// single-core host the parallel engine cannot beat serial here — the
    /// fixed-4-thread numbers record that own-goal honestly.
    compute_serial_items_per_s: f64,
    compute_parallel_items_per_s: f64,
    compute_stream_speedup: f64,
    /// Compute-only throughput of the auto-sized pool, which falls back to
    /// serial when the workload is compute-bound on few cores.
    compute_auto_threads: usize,
    compute_auto_items_per_s: f64,
    compute_stream_speedup_auto: f64,
    /// Deployment-shaped throughput: each item additionally waits
    /// `elapsed_ms x exec_emulation_scale` of wall-clock, emulating the
    /// real model executions the virtual clock elides. Workers overlap
    /// these waits — the latency-hiding the parallel engine exists for.
    exec_emulation_scale: f64,
    serial_items_per_s: f64,
    parallel_threads: usize,
    parallel_items_per_s: f64,
    /// Deployment-shaped parallel/serial throughput at 4 threads.
    stream_speedup: f64,
    trajectory: Vec<Measurement>,
}

/// Time `f` with warmup; returns (ns/iter, iters).
fn time_ns(mut f: impl FnMut(), warmup: u64, iters: u64) -> (f64, u64) {
    for _ in 0..warmup {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    (t0.elapsed().as_nanos() as f64 / iters as f64, iters)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Shortened smoke pass: enough iterations that the speedup ratios are
    // stable to well under the gate tolerances, small enough for CI.
    let (warmup, iters) = if smoke { (10u64, 80u64) } else { (30, 300) };
    let mut trajectory: Vec<Measurement> = Vec::new();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // ---- learn-step: seed baseline vs scalar vs batched -----------------
    let LearnSetup {
        cfg,
        mut net,
        target,
        replay,
    } = LearnSetup::paper(Algo::Dqn, 32);
    let huber = ams::nn::Huber::default();

    let mut opt_seed = SeedAdam::new(cfg.lr);
    let mut rng_seed = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(11)
    };
    let mut scratch_seed = SeedScratch::new(&net);
    let (seed_ns, seed_iters) = time_ns(
        || {
            learn_step_seed(
                &mut net,
                &target,
                &mut opt_seed,
                &replay,
                &cfg,
                &huber,
                &mut rng_seed,
                &mut scratch_seed,
            );
        },
        warmup,
        iters,
    );
    trajectory.push(Measurement {
        name: "learn_step_seed_baseline_b32".into(),
        iters: seed_iters,
        ns_per_iter: seed_ns,
    });

    let mut opt_s = ams::nn::Adam::new(cfg.lr);
    let mut rng_s = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(11)
    };
    let mut scratch_s = ScalarScratch::new(&net);
    let (scalar_ns, scalar_iters) = time_ns(
        || {
            ams::rl::learn_step_scalar(
                &mut net,
                &target,
                &mut opt_s,
                &replay,
                &cfg,
                &huber,
                &mut rng_s,
                &mut scratch_s,
            );
        },
        warmup,
        iters,
    );
    trajectory.push(Measurement {
        name: "learn_step_scalar_b32".into(),
        iters: scalar_iters,
        ns_per_iter: scalar_ns,
    });

    let mut net_b = QNet::new(
        QNetConfig {
            input_dim: cfg.input_dim,
            hidden: cfg.hidden.clone(),
            actions: net.actions(),
            dueling: cfg.algo.dueling_head(),
        },
        42,
    );
    let mut opt_b = ams::nn::Adam::new(cfg.lr);
    let mut rng_b = {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(11)
    };
    let mut scratch_b = BatchScratch::new(&net_b);
    let (batched_ns, batched_iters) = time_ns(
        || {
            ams::rl::learn_step_batched(
                &mut net_b,
                &target,
                &mut opt_b,
                &replay,
                &cfg,
                &huber,
                &mut rng_b,
                &mut scratch_b,
            );
        },
        warmup,
        iters,
    );
    trajectory.push(Measurement {
        name: "learn_step_batched_b32".into(),
        iters: batched_iters,
        ns_per_iter: batched_ns,
    });

    // ---- batched-Q equivalence over a replay minibatch ------------------
    let states: Vec<&[u32]> = (0..32).map(|i| &*replay.get(i).state).collect();
    let mut bcache = BatchFwdCache::default();
    let qb = net.forward_batch(BatchInput::Sparse(&states), &mut bcache);
    let mut cache = FwdCache::default();
    let mut max_diff = 0.0f64;
    for (s, st) in states.iter().enumerate() {
        let qs = net.forward(Input::Sparse(st), &mut cache);
        for (a, &v) in qs.iter().enumerate() {
            max_diff = max_diff.max(f64::from((qb.get(s, a) - v).abs()));
        }
    }
    assert!(
        max_diff < 1e-5,
        "batched Q diverged from scalar: {max_diff}"
    );

    // ---- stream engine: serial vs parallel ------------------------------
    let emu_scale = 1.0e-3; // 1 wall-clock us per virtual execution ms
    let setup = if smoke {
        ams_bench::hotpath::StreamSetup::paper(96, 24)
    } else {
        ams_bench::hotpath::StreamSetup::paper(240, 120)
    };
    let budget = Budget::Deadline { ms: 1000 };
    let items = setup.truth.items();

    let threads = 4usize;
    let mut serial = StreamProcessor::new(setup.scheduler(), budget);
    let mut par = ParallelStreamProcessor::new(setup.scheduler(), budget, threads);
    let mut auto = ParallelStreamProcessor::auto(setup.scheduler(), budget);

    // Compute-only (virtual execution elided): core-bound. Enough rounds
    // that each measurement spans tens of milliseconds — at ~5 µs/item the
    // old 3-round window was noise-dominated.
    let serial_rounds = if smoke { 8usize } else { 20 };
    serial.process_all(items.iter().take(24)); // warmup
    serial.reset_stats();
    let t0 = Instant::now();
    for _ in 0..serial_rounds {
        serial.process_all(items);
    }
    let compute_serial_ips = (items.len() * serial_rounds) as f64 / t0.elapsed().as_secs_f64();
    par.process_all(&items[..24]); // warmup
    par.reset_stats();
    let t0 = Instant::now();
    for _ in 0..serial_rounds {
        par.process_all(items);
    }
    let compute_par_ips = (items.len() * serial_rounds) as f64 / t0.elapsed().as_secs_f64();
    // Auto-sized pool on the same compute-bound workload: on a single-core
    // host this resolves to the serial fallback instead of losing to
    // spawn/merge overhead.
    let compute_auto_threads = auto.threads();
    auto.process_all(&items[..24]); // warmup
    auto.reset_stats();
    let t0 = Instant::now();
    for _ in 0..serial_rounds {
        auto.process_all(items);
    }
    let auto_elapsed = t0.elapsed();
    let compute_auto_ips = (items.len() * serial_rounds) as f64 / auto_elapsed.as_secs_f64();
    trajectory.push(Measurement {
        name: format!("stream_auto_t{compute_auto_threads}_compute"),
        iters: (items.len() * serial_rounds) as u64,
        ns_per_iter: auto_elapsed.as_nanos() as f64 / (items.len() * serial_rounds) as f64,
    });

    // Deployment-shaped: emulate waiting on the actual model executions.
    serial.exec_emulation_scale = emu_scale;
    par.exec_emulation_scale = emu_scale;
    let t0 = Instant::now();
    serial.process_all(items);
    let serial_s = t0.elapsed().as_secs_f64();
    let serial_ips = items.len() as f64 / serial_s;
    trajectory.push(Measurement {
        name: "stream_serial_deployment".into(),
        iters: items.len() as u64,
        ns_per_iter: serial_s * 1e9 / items.len() as f64,
    });
    let t0 = Instant::now();
    par.process_all(items);
    let par_s = t0.elapsed().as_secs_f64();
    let par_ips = items.len() as f64 / par_s;
    trajectory.push(Measurement {
        name: format!("stream_parallel_t{threads}_deployment"),
        iters: items.len() as u64,
        ns_per_iter: par_s * 1e9 / items.len() as f64,
    });

    let record = Record {
        description: "AMS hot-path benchmark: DQN learn_step (paper architecture 1104->256->31, \
                      batch 32) and stream-labeling throughput (240 items, 1s deadline, \
                      DRL-agent predictor). See PERF.md for methodology."
            .into(),
        cores_available: cores,
        smoke,
        batch: cfg.batch,
        learn_seed_ns: seed_ns,
        learn_scalar_ns: scalar_ns,
        learn_batched_ns: batched_ns,
        learn_speedup: seed_ns / batched_ns,
        learn_speedup_vs_hoisted_scalar: scalar_ns / batched_ns,
        q_equivalence_max_abs_diff: max_diff,
        stream_items: items.len(),
        compute_serial_items_per_s: compute_serial_ips,
        compute_parallel_items_per_s: compute_par_ips,
        compute_stream_speedup: compute_par_ips / compute_serial_ips,
        compute_auto_threads,
        compute_auto_items_per_s: compute_auto_ips,
        compute_stream_speedup_auto: compute_auto_ips / compute_serial_ips,
        exec_emulation_scale: emu_scale,
        serial_items_per_s: serial_ips,
        parallel_threads: threads,
        parallel_items_per_s: par_ips,
        stream_speedup: par_ips / serial_ips,
        trajectory,
    };

    let json = serde_json::to_string_pretty(&record).expect("record serializes");
    // Smoke runs are a CI gate, not a measurement: don't clobber the
    // committed full-run record.
    let path = if smoke {
        "target/BENCH_hotpath.smoke.json"
    } else {
        "BENCH_hotpath.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("{json}");
    eprintln!(
        "learn_step speedup: {:.2}x | stream speedup @{} threads on {} core(s): {:.2}x",
        record.learn_speedup, threads, cores, record.stream_speedup
    );
}
