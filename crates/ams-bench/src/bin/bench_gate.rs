//! CLI front-end of the bench regression gate (`ams_bench::gate`).
//!
//! ```text
//! bench_gate serve   <baseline.json> <candidate.json>
//! bench_gate hotpath <baseline.json> <candidate.json>
//! bench_gate self-test <serve_baseline.json> <hotpath_baseline.json>
//! ```
//!
//! `serve`/`hotpath` compare a fresh smoke record against the committed
//! baseline and exit non-zero on any regression beyond tolerance.
//! `self-test` proves the gate can fail: it injects synthetic regressions
//! into the baselines and requires each one to be caught (the CI dry-run
//! step).

use ams_bench::gate::{run_gate, self_test, GateKind};
use serde::Value;
use std::process::ExitCode;

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    serde_json::parse_value(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_gate serve <baseline> <candidate>\n\
         \x20      bench_gate hotpath <baseline> <candidate>\n\
         \x20      bench_gate self-test <serve_baseline> <hotpath_baseline>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [cmd, a, b] = args.as_slice() else {
        return usage();
    };
    let result = (|| -> Result<bool, String> {
        match cmd.as_str() {
            "serve" | "hotpath" => {
                let kind = if cmd == "serve" {
                    GateKind::Serve
                } else {
                    GateKind::Hotpath
                };
                let outcome = run_gate(kind, &load(a)?, &load(b)?);
                eprintln!("[bench_gate] {cmd}: {a} (baseline) vs {b} (candidate)");
                eprint!("{}", outcome.render());
                Ok(outcome.ok())
            }
            "self-test" => {
                let injected = self_test(&load(a)?, &load(b)?)?;
                eprintln!(
                    "[bench_gate] self-test: {} injected regressions all caught:",
                    injected.len()
                );
                for name in injected {
                    eprintln!("  caught {name}");
                }
                Ok(true)
            }
            _ => Err("unknown subcommand".into()),
        }
    })();
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("[bench_gate] FAILED — perf regressed beyond tolerance");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("[bench_gate] error: {e}");
            ExitCode::FAILURE
        }
    }
}
