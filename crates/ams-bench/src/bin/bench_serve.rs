//! Serving benchmark: drive the sharded front-end through an offered-load
//! sweep and record throughput, tail latency, shed rate, and recall at
//! each point; compare hash vs model-affinity routing; and close the loop
//! on the adaptive batch-limit controller. Writes `BENCH_serve.json`
//! (methodology in `PERF.md`).
//!
//! Two load modes:
//! * **closed loop** — submissions block on queue space, so the measured
//!   rate *is* the server's sustainable capacity (no coordinated-omission
//!   games: the producer can never outrun the system being measured).
//! * **open loop** — submissions arrive on a fixed schedule regardless of
//!   server progress (the real-traffic shape); overload shows up as queue
//!   growth, shed requests, and tail-latency blowup rather than as a
//!   silently slowed producer.
//!
//! Eight gates run *inside* the bench (the process aborts on violation,
//! so a green record is a green guarantee):
//! * serve-mode stats equal the serial engine's, under hash **and**
//!   affinity routing;
//! * **wire transparency** — a loopback [`NetServer`] driven by 1, 2, and
//!   4 forked client *processes* (each a [`NetClient`] submitting a
//!   strided partition of the same item set) must reproduce the serial
//!   stats through the socket, deliver exactly one terminal completion
//!   per wire request, conserve and reconcile at every point, and return
//!   labels **byte-identical** to the in-process client (an
//!   order-independent digest over each item's serialized labels must
//!   match the in-process reference exactly);
//! * affinity routing strictly raises the mean coalesced batch depth and
//!   the virtual-GPU saving over hash routing at 0.8x and 1.6x load;
//! * the adaptive controller's last window on every shard meets the
//!   configured p99 target in the closed-loop sweep;
//! * **exactly-once ticketing** — every sweep submits through the
//!   request/response [`Client`] API, and at every measured point the
//!   tickets issued equal the terminal completion events delivered
//!   (labeled + shed + cancelled), bucket-for-bucket against the report's
//!   conservation ledger;
//! * **label-cache economics** — a Zipf-repetition sweep (repeat rate 0 /
//!   0.3 / 0.6 / 0.9, same sequence cache-on and cache-off) where the
//!   bill saving and the effective capacity strictly increase with the
//!   repeat rate, cache-on strictly undercuts cache-off on the virtual
//!   GPU bill at repeat ≥ 0.6, conservation (including the `cache_hit`
//!   and `coalesced` buckets) holds at every point, and at repeat 0 the
//!   cache is a perfect no-op (zero hits, stats equal to the serial
//!   engine's — unique streams pay nothing for the cache);
//! * **online adaptation under drift** — a two-phase stream whose item
//!   mixture shifts mid-run is served frozen (`adapt: None`) and adaptive
//!   with identical configs otherwise: the frozen run must reproduce the
//!   serial engine byte-for-byte (the off-switch is a true no-op), and the
//!   adaptive run must hot-swap trainer generations into the predict path
//!   mid-stream and bank strictly more realized label value after the
//!   shift, with conservation and event reconciliation in both modes;
//! * **event/ledger reconciliation** — the closed-loop capacity fixture is
//!   re-run with the live observability layer on, and the lifecycle event
//!   totals must match the conservation ledger bucket-for-bucket
//!   (`events_reconcile()`); the measured capacity tax is recorded as
//!   `obs_overhead_fraction` and gated ≤ 2% by `gate.rs`.
//!
//! Run with: `cargo run --release -p ams-bench --bin bench_serve [-- --smoke]`

use ams::prelude::*;
use ams::serve::net::{decode_value, encode_value};
use ams_bench::hotpath::StreamSetup;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured load point.
#[derive(Debug, Serialize)]
struct LoadPoint {
    mode: String,
    /// Offered rate, items/s (for closed loop: the achieved rate).
    offered_per_s: f64,
    /// Completed items / wall-clock elapsed (includes the drain).
    achieved_per_s: f64,
    offered: u64,
    completed: u64,
    shed_rate: f64,
    mean_recall: f64,
    queue_wait_p50_us: u64,
    queue_wait_p99_us: u64,
    execute_p50_us: u64,
    execute_p99_us: u64,
    total_p50_us: u64,
    total_p95_us: u64,
    total_p99_us: u64,
    batches: u64,
    max_batch_observed: usize,
    /// Every offered request accounted for exactly once (asserted
    /// in-process at measurement time, recorded for traceability).
    conserved: bool,
}

/// One routing-mode measurement at a fixed offered load.
#[derive(Debug, Serialize)]
struct RoutingPoint {
    /// `"hash"` or `"affinity"`.
    mode: String,
    /// Offered load as a fraction of the measured closed-loop capacity.
    load_factor: f64,
    offered_per_s: f64,
    achieved_per_s: f64,
    completed: u64,
    batches: u64,
    /// Executed requests per batched round.
    mean_batch_size: f64,
    /// Model executions coalesced per batched GPU invocation — the
    /// quantity affinity routing exists to raise.
    mean_coalesced: f64,
    /// 1 − batched virtual *makespan* / serial virtual bill (wall-clock
    /// view; pool packing moves it).
    batching_saving_fraction: f64,
    /// 1 − batched GPU-time consumed / serial virtual bill (billing view;
    /// only coalescing moves it — the routing-quality metric).
    bill_saving_fraction: f64,
    /// Requests that landed on their affinity home shard (0 under hash).
    affinity_hit_rate: f64,
    affinity_spills: u64,
    total_p50_us: u64,
    total_p99_us: u64,
}

/// One shedding mode's measurement in the SLO sweep (same offered stream
/// for both modes).
#[derive(Debug, Serialize)]
struct SloPoint {
    /// `"blind"` (head-drop, FIFO, no admission control) or `"aware"`
    /// (value-weighted eviction + EDF + admission control).
    mode: String,
    completed: u64,
    rejected: u64,
    shed_admission: u64,
    shed_oldest: u64,
    shed_deadline: u64,
    /// Σ predicted value of offered requests.
    value_offered: f64,
    /// Σ value banked by completions.
    value_completed: f64,
    /// Σ value delivered past its deadline (capacity spent on labels the
    /// client had given up on; subset of `value_completed`).
    value_late: f64,
    /// Σ value not delivered within deadline (shed value + late value) —
    /// the loss the aware mode exists to shrink.
    value_shed_loss: f64,
    /// Completions within their class deadline / offered.
    deadline_met_rate: f64,
    /// Exactly-once ledger held globally and per class.
    conserved: bool,
    /// Per-class breakdowns (deadlines, weights, loss paths, latency).
    classes: Vec<ClassReport>,
}

/// The SLO sweep: blind vs value-aware shedding on the same overloaded
/// burst stream.
#[derive(Debug, Serialize)]
struct SloSweep {
    /// Offered load as a fraction of the SLO shape's closed-loop capacity.
    load_factor: f64,
    /// Submission burst size.
    burst: usize,
    /// Times the item stream was submitted back to back (sustained
    /// overload — a single short burst would fit in the queues and give
    /// the shedding policies nothing to decide).
    passes: usize,
    offered_per_s: f64,
    /// The request classes both modes served (alternating per request).
    classes: Vec<SloClass>,
    blind: SloPoint,
    aware: SloPoint,
}

/// One repeat-rate point of the label-cache Zipf sweep: the same
/// submission sequence served twice, cache-off then cache-on.
#[derive(Debug, Serialize)]
struct ZipfPoint {
    /// Probability that a submission repeats an already-seen content
    /// (repeats drawn with a Zipf-like skew toward the oldest contents).
    repeat_rate: f64,
    submissions: u64,
    /// Distinct contents in the sequence.
    distinct: u64,
    /// Exact hits answered before admission (cache-on run).
    cache_hit: u64,
    /// Duplicates that coalesced onto an in-flight leader (cache-on run).
    coalesced: u64,
    /// (cache_hit + coalesced) / offered.
    cache_hit_rate: f64,
    /// Virtual GPU time billed, cache on / off (the billing view: what
    /// dedup actually saves).
    bill_on_ms: u64,
    bill_off_ms: u64,
    /// 1 − bill_on / bill_off.
    bill_saving_fraction: f64,
    /// Closed-loop effective capacity (offered / elapsed), items/s.
    capacity_on_per_s: f64,
    capacity_off_per_s: f64,
    /// capacity_on / capacity_off.
    capacity_gain: f64,
    /// Conservation — with `cache_hit`/`coalesced` — held in both runs.
    conserved: bool,
}

/// One serving mode of the drift sweep: the same two-phase stream served
/// frozen (`adapt: None`) or with the online trainer hot-swapping
/// generations into the predict path.
#[derive(Debug, Serialize)]
struct DriftPoint {
    /// `"frozen"` or `"adaptive"`.
    mode: String,
    completed: u64,
    /// Σ realized label value `f(S, d)` banked before the mixture shift.
    phase1_value: f64,
    /// Σ realized label value banked after the shift — the number online
    /// adaptation exists to raise.
    phase2_value: f64,
    /// Whole-stream realized value (`StreamStats::value_sum`).
    value_sum: f64,
    mean_recall: f64,
    /// Generations the trainer published into the predict path (0 frozen).
    swaps: u64,
    learn_steps: u64,
    /// Outcomes that crossed the worker→trainer experience channel.
    experiences: u64,
    experiences_dropped: u64,
    conserved: bool,
    /// Lifecycle events — `weights_swapped` included — reconcile with the
    /// ledgers ([`ServeReport::events_reconcile`]).
    events_reconciled: bool,
}

/// The drift sweep: a workload whose item mixture shifts mid-stream,
/// served by a deliberately undertrained boot agent with adaptation off
/// vs on.
#[derive(Debug, Serialize)]
struct DriftSweep {
    phase1_profile: String,
    phase2_profile: String,
    phase1_submissions: u64,
    phase2_submissions: u64,
    /// Times the post-shift item set repeats (adaptation needs later
    /// repetitions to cash in what it learned from earlier ones).
    phase2_passes: usize,
    /// Training episodes behind the boot agent (deliberately few: the
    /// drift story needs headroom for the online trainer to close).
    boot_episodes: usize,
    /// The frozen run's serve stats equal the serial engine's over the
    /// same drifted stream — adaptation off stays byte-identical.
    frozen_matches_serial: bool,
    /// adaptive post-shift value / frozen post-shift value.
    phase2_value_gain: f64,
    frozen: DriftPoint,
    adaptive: DriftPoint,
}

/// One point of the wire-protocol sweep: a loopback listener driven by
/// `procs` forked client processes partitioning the same item set.
#[derive(Debug, Serialize)]
struct NetPoint {
    /// Forked `NetClient` processes driving the listener concurrently.
    procs: usize,
    offered: u64,
    completed: u64,
    /// Completions / wall clock from first child spawn to last child
    /// exit — socket framing, loopback TCP, and drain included.
    achieved_per_s: f64,
    /// XOR of the children's per-item label digests equals the in-process
    /// reference digest: labels through the socket are byte-identical.
    labels_match: bool,
    /// Server-side `StreamStats` through the socket equal the serial
    /// engine's (items, executions, virtual bill, per-model runs,
    /// recall).
    stats_match_serial: bool,
    /// Every wire request came back as exactly one terminal completion
    /// in its child process, and the server ledger agrees.
    exactly_once: bool,
    conserved: bool,
    /// Lifecycle event totals reconcile with the ledger through the
    /// transport ([`ServeReport::events_reconcile`]).
    events_reconciled: bool,
}

/// The wire-protocol sweep: the TCP front-end under 1, 2, and 4 client
/// processes over loopback.
#[derive(Debug, Serialize)]
struct NetSweep {
    /// Per-connection completion window each client declared in its
    /// `Hello` — the only flow control on the wire.
    window: usize,
    /// `stats_match_serial` held at every point.
    stats_match_serial: bool,
    /// `exactly_once` held at every point.
    exactly_once_ticketing: bool,
    /// Hex FNV-64 fold of `(item index, labels JSON)` over the full item
    /// set, computed through the in-process `Client`; every point's
    /// child digests must XOR back to exactly this value.
    reference_digest: String,
    points: Vec<NetPoint>,
}

/// The adaptive-controller closed-loop sweep.
#[derive(Debug, Serialize)]
struct AdaptiveSweep {
    /// Self-calibrated target: 1.25× the static batch-8 closed-loop p99.
    target_p99_ms: u64,
    start_max_batch: usize,
    ceiling_max_batch: usize,
    window: u64,
    achieved_per_s: f64,
    total_p99_us: u64,
    all_within_target: bool,
    /// Per-shard limit trajectories (one entry per adjustment).
    shards: Vec<ShardAdaptive>,
}

/// The whole benchmark record.
#[derive(Debug, Serialize)]
struct Record {
    description: String,
    cores_available: usize,
    smoke: bool,
    items: usize,
    shards: usize,
    workers_per_shard: usize,
    max_batch: usize,
    queue_capacity: usize,
    exec_emulation_scale: f64,
    /// Serve-mode `StreamStats` equal the serial engine's over the same
    /// stream under hash *and* affinity routing (verified on the lossless
    /// configuration; the process aborts if they ever diverge, so a green
    /// bench is a green equivalence).
    stats_match_serial: bool,
    /// Completion tickets issued across every measured run (all
    /// submissions go through the client API).
    tickets_issued: u64,
    /// Exactly-once ticketing held at every measured point: tickets issued
    /// == terminal events delivered (labeled + shed + cancelled), asserted
    /// in-process alongside `is_conserved()`.
    exactly_once_ticketing: bool,
    /// Closed-loop sustainable capacity, items/s.
    closed_loop_capacity_per_s: f64,
    /// 1 − (batched virtual execution / serial virtual execution bill) on
    /// the closed-loop run: the share of simulated GPU time that batched
    /// admission saved.
    batching_saving_fraction: f64,
    /// Capacity lost to the live observability layer: 1 − (best-of-trials
    /// closed-loop capacity with obs on / with obs off), clamped at 0.
    /// Gated ≤ 2% by `gate.rs`; the obs-on trials also assert
    /// `events_reconcile()` in-process.
    obs_overhead_fraction: f64,
    /// Fingerprint width of the affinity runs.
    affinity_top_k: usize,
    /// Hash vs affinity at 0.8x and 1.6x offered load, burst arrivals.
    routing_sweep: Vec<RoutingPoint>,
    /// The adaptive batch-limit controller under closed-loop pressure.
    adaptive: AdaptiveSweep,
    /// Blind vs SLO-aware shedding at 1.6x burst overload. Gated
    /// in-process: aware must strictly reduce the value-weighted shed
    /// loss and not worsen the deadline-met rate, with conservation
    /// holding in both modes.
    slo_sweep: SloSweep,
    /// The label cache under increasing content repetition. Gated
    /// in-process: bill saving and effective capacity strictly increase
    /// with the repeat rate, cache-on strictly beats cache-off on the
    /// bill at repeat ≥ 0.6, every point conserves, and repeat 0 is a
    /// cache no-op (zero hits, serial-identical stats).
    zipf_sweep: Vec<ZipfPoint>,
    /// Online adaptation under a mid-stream mixture shift. Gated
    /// in-process: the frozen run reproduces the serial engine
    /// byte-for-byte, the adaptive run hot-swaps generations mid-stream
    /// (swaps > 0, no experience drops) and banks strictly more realized
    /// post-shift value than the frozen path, with conservation and event
    /// reconciliation holding in both modes.
    drift_sweep: DriftSweep,
    /// The TCP front-end over loopback: 1/2/4 forked client processes,
    /// lossless configuration. Gated in-process: serial-identical stats
    /// through the socket, byte-identical labels against the in-process
    /// reference digest, exactly-once per wire request, conservation and
    /// event reconciliation at every point.
    net_sweep: NetSweep,
    sweep: Vec<LoadPoint>,
}

/// The shared stream fixture ([`StreamSetup`]) at full size matches
/// `bench_hotpath`'s workload exactly (240 items, 120 episodes), keeping
/// `BENCH_serve.json` and `BENCH_hotpath.json` comparable; smoke shrinks
/// both knobs so the CI gate stays in seconds.
fn fixture(smoke: bool) -> StreamSetup {
    if smoke {
        StreamSetup::paper(96, 24)
    } else {
        StreamSetup::paper(240, 120)
    }
}

fn point_from(mode: &str, offered_per_s: f64, elapsed: Duration, r: &ServeReport) -> LoadPoint {
    assert!(
        r.is_conserved(),
        "{mode} @ {offered_per_s}/s: every offered request must be accounted exactly once"
    );
    LoadPoint {
        mode: mode.into(),
        offered_per_s,
        achieved_per_s: r.completed as f64 / elapsed.as_secs_f64(),
        offered: r.offered,
        completed: r.completed,
        shed_rate: r.shed_rate(),
        mean_recall: r.stats.mean_recall(),
        queue_wait_p50_us: r.queue_wait.p50_us,
        queue_wait_p99_us: r.queue_wait.p99_us,
        execute_p50_us: r.execute.p50_us,
        execute_p99_us: r.execute.p99_us,
        total_p50_us: r.total.p50_us,
        total_p95_us: r.total.p95_us,
        total_p99_us: r.total.p99_us,
        batches: r.batches,
        max_batch_observed: r.max_batch_observed,
        conserved: r.is_conserved(),
    }
}

fn saving_fraction(r: &ServeReport) -> f64 {
    1.0 - r.virtual_exec_ms as f64 / r.stats.total_exec_ms.max(1) as f64
}

/// One measured run's ticketing ledger: submissions go through a
/// [`Client`] and every issued ticket must come back as exactly one
/// terminal completion event.
struct Ticketed {
    client: Client,
    issued: u64,
    rejected: u64,
}

impl Ticketed {
    /// A client sized so the completion window can never block the
    /// submission loop (the bench drains events after shutdown).
    fn open(server: &AmsServer, expected: usize) -> Self {
        Self {
            client: server.client_with_capacity(expected + 16),
            issued: 0,
            rejected: 0,
        }
    }

    fn submit(&mut self, item: Arc<ItemTruth>) -> SubmitOutcome<Ticket> {
        self.submit_class(item, 0)
    }

    fn submit_class(&mut self, item: Arc<ItemTruth>, class: usize) -> SubmitOutcome<Ticket> {
        let outcome = self.client.submit_class(item, class);
        if outcome.is_rejected() {
            self.rejected += 1;
        } else {
            self.issued += 1;
        }
        outcome
    }

    /// The exactly-once gate, run at every measured point: tickets issued
    /// == terminal events delivered, bucket-for-bucket against the
    /// report's (already `is_conserved()`-checked) ledger.
    fn assert_exactly_once(self, report: &ServeReport, ctx: &str) -> u64 {
        let events = self.client.drain();
        assert_eq!(
            events.len() as u64,
            self.issued,
            "{ctx}: every ticket must deliver exactly one terminal event"
        );
        let mut labeled = 0u64;
        let mut shed = 0u64;
        let mut cancelled = 0u64;
        for ev in &events {
            match ev {
                Completion::Labeled(_) => labeled += 1,
                Completion::Shed { .. } => shed += 1,
                Completion::Cancelled { .. } => cancelled += 1,
            }
        }
        assert_eq!(
            labeled,
            report.completed + report.cache_hit + report.coalesced,
            "{ctx}: labeled == worker completions + cache answers"
        );
        assert_eq!(
            shed,
            report.shed_admission + report.shed_oldest + report.shed_deadline,
            "{ctx}: shed events match the shed ledger"
        );
        assert_eq!(cancelled, report.cancelled, "{ctx}: cancelled events");
        assert_eq!(self.rejected, report.rejected, "{ctx}: rejections");
        self.issued
    }
}

/// FNV-64 over `(item index, serialized labels)` — one item's
/// contribution to the order-independent label digest. Both sides of the
/// wire serialize with the same `serde_json`, so equal digests mean the
/// label payloads are byte-identical, floats included.
fn item_digest(index: usize, labels: &[(LabelId, f32)]) -> u64 {
    let json = serde_json::to_string(&labels.to_vec()).expect("labels serialize");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in (index as u64).to_le_bytes().iter().chain(json.as_bytes()) {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The in-process reference for the wire sweep: label every item through
/// the `Client` API on the lossless socket configuration and fold each
/// result into the order-independent digest keyed by item index. Returns
/// the digest and the tickets issued.
fn reference_label_digest(
    fx: &StreamSetup,
    budget: Budget,
    cfg: &ServeConfig,
    items: &[Arc<ItemTruth>],
) -> (u64, u64) {
    let server = AmsServer::start(fx.scheduler(), budget, cfg.clone());
    let client = server.client_with_capacity(items.len() + 1);
    let mut index_of = HashMap::new();
    for (i, item) in items.iter().enumerate() {
        let ticket = client
            .submit(Arc::clone(item))
            .ticket()
            .expect("lossless config accepts every submission");
        index_of.insert(ticket.id(), i);
    }
    let report = server.shutdown();
    assert!(report.is_conserved(), "reference run conserves");
    let mut digest = 0u64;
    let mut labeled = 0usize;
    for ev in client.drain() {
        let Completion::Labeled(r) = ev else {
            panic!("lossless reference run labels everything");
        };
        digest ^= item_digest(index_of[&r.ticket], &r.labels);
        labeled += 1;
    }
    assert_eq!(labeled, items.len(), "reference run labels every item");
    (digest, report.offered)
}

/// One child process's parsed summary line.
struct ChildSummary {
    labeled: u64,
    other: u64,
    digest: u64,
}

fn parse_child_summary(stdout: &[u8]) -> ChildSummary {
    let line = String::from_utf8_lossy(stdout);
    let (mut labeled, mut other, mut digest) = (None, None, None);
    for tok in line.split_whitespace() {
        if let Some(v) = tok.strip_prefix("labeled=") {
            labeled = v.parse().ok();
        } else if let Some(v) = tok.strip_prefix("other=") {
            other = v.parse().ok();
        } else if let Some(v) = tok.strip_prefix("digest=") {
            digest = u64::from_str_radix(v, 16).ok();
        }
    }
    ChildSummary {
        labeled: labeled.unwrap_or_else(|| panic!("child summary missing labeled=: {line}")),
        other: other.unwrap_or_else(|| panic!("child summary missing other=: {line}")),
        digest: digest.unwrap_or_else(|| panic!("child summary missing digest=: {line}")),
    }
}

/// Drive one wire-protocol point: bind a fresh loopback listener, fork
/// `procs` copies of this binary in `net-client` mode (each submits the
/// strided partition `start, start+procs, ...` of the shared item file),
/// fold their summaries, and shut the listener down. Returns the point
/// and the tickets issued through the socket.
#[allow(clippy::too_many_arguments)]
fn run_net_point(
    fx: &StreamSetup,
    budget: Budget,
    cfg: &ServeConfig,
    want: &StreamStats,
    items_path: &str,
    procs: usize,
    window: usize,
    reference_digest: u64,
    skip_gates: bool,
) -> (NetPoint, u64) {
    let total = want.items;
    let net = NetServer::bind(
        AmsServer::start(fx.scheduler(), budget, cfg.clone()),
        "127.0.0.1:0",
    )
    .expect("bind loopback listener");
    let addr = net.local_addr().to_string();
    let exe = std::env::current_exe().expect("current_exe");
    let t0 = Instant::now();
    let children: Vec<std::process::Child> = (0..procs)
        .map(|start| {
            std::process::Command::new(&exe)
                .args([
                    "net-client",
                    &addr,
                    items_path,
                    &start.to_string(),
                    &procs.to_string(),
                    &window.to_string(),
                ])
                .stdout(std::process::Stdio::piped())
                .spawn()
                .expect("spawn net-client child")
        })
        .collect();
    let mut labeled = 0u64;
    let mut other = 0u64;
    let mut digest = 0u64;
    for child in children {
        let out = child.wait_with_output().expect("net-client child exits");
        assert!(
            out.status.success(),
            "net-client child failed with {:?}",
            out.status
        );
        let summary = parse_child_summary(&out.stdout);
        labeled += summary.labeled;
        other += summary.other;
        digest ^= summary.digest;
    }
    let elapsed = t0.elapsed();
    let report = net.shutdown();

    let labels_match = digest == reference_digest;
    let stats_match_serial = report.stats.items == want.items
        && report.stats.total_exec_ms == want.total_exec_ms
        && report.stats.total_executions == want.total_executions
        && report.stats.per_model_runs == want.per_model_runs
        && (report.stats.recall_sum - want.recall_sum).abs() < 1e-9;
    let exactly_once = labeled == total as u64
        && other == 0
        && report.offered == total as u64
        && report.completed == total as u64;
    let point = NetPoint {
        procs,
        offered: report.offered,
        completed: report.completed,
        achieved_per_s: report.completed as f64 / elapsed.as_secs_f64(),
        labels_match,
        stats_match_serial,
        exactly_once,
        conserved: report.is_conserved(),
        events_reconciled: report.events_reconcile(),
    };
    if !skip_gates {
        assert!(
            point.labels_match,
            "{procs} proc(s): wire labels must be byte-identical to in-process \
             (digest {digest:016x} vs reference {reference_digest:016x})"
        );
        assert!(
            point.stats_match_serial,
            "{procs} proc(s): serve stats through the socket diverged from serial"
        );
        assert!(
            point.exactly_once,
            "{procs} proc(s): exactly-once broke over the wire \
             (labeled {labeled}, other {other}, offered {}, completed {})",
            report.offered, report.completed
        );
        assert!(point.conserved, "{procs} proc(s): ledger must conserve");
        assert!(
            point.events_reconciled,
            "{procs} proc(s): event stream must reconcile through the transport"
        );
    }
    (point, report.offered)
}

/// Hidden subcommand: one forked loopback client of the wire-protocol
/// sweep (`bench_serve net-client <addr> <items-file> <start> <stride>
/// <window>`). Connects a [`NetClient`], submits its strided partition of
/// the shared item file, drains every completion, and prints a one-line
/// machine-readable summary (event counts + label digest) for the parent
/// to fold and check.
fn net_client_child(args: &[String]) {
    let (addr, items_path) = (args[0].as_str(), args[1].as_str());
    let start: usize = args[2].parse().expect("start index");
    let stride: usize = args[3].parse().expect("stride");
    let window: usize = args[4].parse().expect("window");
    let bytes = std::fs::read(items_path).unwrap_or_else(|e| panic!("read {items_path}: {e}"));
    let tree = decode_value(&bytes).expect("item file decodes");
    let items = Vec::<ItemTruth>::from_value(&tree).expect("item file is Vec<ItemTruth>");

    let client = NetClient::connect_with_window(addr, window).expect("connect to parent listener");
    let mut index_of_id = HashMap::new();
    let mut events = Vec::new();
    for i in (start..items.len()).step_by(stride.max(1)) {
        // The completion window is the flow control: when it is full the
        // client owes the server a read before the protocol lets it
        // submit again (a blind `submit` would block forever — nothing
        // else drains this single-threaded client's socket).
        while client.outstanding() >= client.capacity() {
            let ev = client
                .recv()
                .expect("recv completion")
                .expect("window full implies outstanding completions");
            events.push(ev);
        }
        let id = client
            .submit(Arc::new(items[i].clone()))
            .expect("submit over the wire");
        index_of_id.insert(id, i);
    }
    events.extend(client.drain().expect("drain completions"));
    assert_eq!(
        events.len(),
        index_of_id.len(),
        "every wire request must come back exactly once"
    );
    let mut labeled = 0u64;
    let mut other = 0u64;
    let mut digest = 0u64;
    for ev in &events {
        match ev.completion() {
            Some(Completion::Labeled(r)) => {
                labeled += 1;
                digest ^= item_digest(index_of_id[&ev.id()], &r.labels);
            }
            _ => other += 1,
        }
    }
    client.goodbye().expect("goodbye");
    println!("labeled={labeled} other={other} digest={digest:016x}");
}

/// A deterministic repetition stream: with probability `repeat_rate` a
/// submission repeats an already-seen content, drawn with a Zipf-like
/// quadratic skew toward the earliest (most popular) distinct items;
/// otherwise it introduces the next fresh item. At rate 0 this is exactly
/// the fixture stream, once, in order. Returns the stream and the number
/// of distinct contents in it.
fn zipf_stream(
    items: &[Arc<ItemTruth>],
    submissions: usize,
    repeat_rate: f64,
    seed: u64,
) -> (Vec<Arc<ItemTruth>>, u64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: Vec<usize> = Vec::new();
    let mut fresh = 0usize;
    let mut out = Vec::with_capacity(submissions);
    for _ in 0..submissions {
        let idx = if !seen.is_empty() && rng.gen_bool(repeat_rate) {
            let u: f64 = rng.gen();
            seen[((u * u * seen.len() as f64) as usize).min(seen.len() - 1)]
        } else {
            let i = fresh % items.len();
            fresh += 1;
            seen.push(i);
            i
        };
        out.push(Arc::clone(&items[idx]));
    }
    (out, seen.len() as u64)
}

/// Submit the items in bursts of `burst` at an aggregate rate of
/// `rate` items/s (the album-upload arrival shape: requests come in
/// clumps, which is exactly when batch coalescing has something to do).
fn submit_bursts(client: &mut Ticketed, items: &[Arc<ItemTruth>], rate: f64, burst: usize) {
    let t0 = Instant::now();
    for (b, chunk) in items.chunks(burst.max(1)).enumerate() {
        let due = t0 + Duration::from_secs_f64((b * burst) as f64 / rate);
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        for item in chunk {
            client.submit(Arc::clone(item));
        }
    }
}

fn main() {
    // Child-process mode for the wire sweep: the parent re-execs this
    // binary with the hidden `net-client` subcommand.
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("net-client") {
        net_client_child(&argv[2..]);
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Exploration escape hatch: skip the in-process gates (still measures
    // and writes the record) so parameter experiments can inspect a
    // violating configuration instead of dying on the first assert.
    let skip_gates = std::env::var_os("BENCH_SERVE_SKIP_GATES").is_some();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let fx = fixture(smoke);
    let budget = Budget::Deadline { ms: 1000 };
    let items: Vec<Arc<ItemTruth>> = fx
        .truth
        .items()
        .iter()
        .map(|i| Arc::new(i.clone()))
        .collect();

    let shards = 4usize;
    let workers_per_shard = 2usize;
    let max_batch = 8usize;
    let queue_capacity = 8usize;
    // 20 wall-clock µs per virtual execution ms: a batch's compressed
    // makespan (~1-2 virtual s) costs tens of wall ms, so queues genuinely
    // build, batches genuinely coalesce, and the overload point genuinely
    // sheds — while the whole sweep still finishes in seconds.
    let emu_scale = 2e-2;
    let affinity_top_k = 2usize;
    let affinity = RoutingMode::Affinity(AffinityConfig {
        top_k: affinity_top_k,
        spill_lag: 8,
    });

    let base_cfg = ServeConfig {
        shards,
        workers_per_shard,
        max_batch,
        queue_capacity,
        exec_emulation_scale: emu_scale,
        ..ServeConfig::default()
    };

    // ---- equivalence gate: serve stats == serial stats, losslessly ------
    // Routing (hash or affinity) changes where requests queue, never what
    // they compute: both modes must reproduce the serial engine exactly.
    let mut serial = StreamProcessor::new(fx.scheduler(), budget);
    serial.process_all(fx.truth.items());
    let want = serial.stats().clone();
    let mut tickets_issued = 0u64;
    for routing in [RoutingMode::Hash, affinity] {
        let server = AmsServer::start(
            fx.scheduler(),
            budget,
            ServeConfig {
                policy: BackpressurePolicy::Block,
                routing,
                exec_emulation_scale: 0.0,
                ..base_cfg.clone()
            },
        );
        let mut client = Ticketed::open(&server, items.len());
        for item in &items {
            client.submit(Arc::clone(item));
        }
        let eq_report = server.shutdown();
        tickets_issued += client.assert_exactly_once(&eq_report, "equivalence");
        let got = &eq_report.stats;
        let mode = eq_report.routing.as_str();
        assert_eq!(got.items, want.items, "{mode}: serve items diverged");
        assert_eq!(got.total_exec_ms, want.total_exec_ms, "{mode}");
        assert_eq!(got.total_executions, want.total_executions, "{mode}");
        assert_eq!(got.per_model_runs, want.per_model_runs, "{mode}");
        assert!((got.recall_sum - want.recall_sum).abs() < 1e-9, "{mode}");
    }
    eprintln!(
        "[bench_serve] equivalence: hash and affinity serve stats == serial stats over {} items",
        want.items
    );

    // ---- wire protocol: N forked clients over loopback ------------------
    // Lossless socket configuration: Block backpressure (the completion
    // window is the only flow control the clients see), no execution
    // emulation (labels and stats, not timing, are under test), and the
    // observability layer on so the event stream must reconcile through
    // the transport too.
    let net_cfg = ServeConfig {
        policy: BackpressurePolicy::Block,
        exec_emulation_scale: 0.0,
        obs: Some(ObsConfig::default()),
        ..base_cfg.clone()
    };
    let (reference_digest, ref_tickets) = reference_label_digest(&fx, budget, &net_cfg, &items);
    tickets_issued += ref_tickets;
    // Hand the children the exact item set through the wire codec itself:
    // the file is an encoded `Vec<ItemTruth>`, so a child that can read it
    // has also exercised the decoder on a large nested payload.
    let items_path = if smoke {
        "target/net_items.smoke.bin"
    } else {
        "target/net_items.bin"
    };
    {
        let owned: Vec<ItemTruth> = fx.truth.items().to_vec();
        let mut buf = Vec::new();
        encode_value(&owned.to_value(), &mut buf);
        std::fs::create_dir_all("target").expect("target dir");
        std::fs::write(items_path, &buf).unwrap_or_else(|e| panic!("write {items_path}: {e}"));
    }
    let net_window = 32usize;
    let mut net_points: Vec<NetPoint> = Vec::new();
    for procs in [1usize, 2, 4] {
        let (point, net_tickets) = run_net_point(
            &fx,
            budget,
            &net_cfg,
            &want,
            items_path,
            procs,
            net_window,
            reference_digest,
            skip_gates,
        );
        eprintln!(
            "[bench_serve] net {procs} proc(s): {:.0} items/s over loopback, labels {}",
            point.achieved_per_s,
            if point.labels_match {
                "byte-identical to in-process"
            } else {
                "DIVERGED"
            }
        );
        tickets_issued += net_tickets;
        net_points.push(point);
    }
    let net_sweep = NetSweep {
        window: net_window,
        stats_match_serial: net_points.iter().all(|p| p.stats_match_serial),
        exactly_once_ticketing: net_points.iter().all(|p| p.exactly_once),
        reference_digest: format!("{reference_digest:016x}"),
        points: net_points,
    };

    let mut sweep: Vec<LoadPoint> = Vec::new();

    // ---- closed loop: sustainable capacity ------------------------------
    let server = AmsServer::start(
        fx.scheduler(),
        budget,
        ServeConfig {
            policy: BackpressurePolicy::Block,
            ..base_cfg.clone()
        },
    );
    let mut client = Ticketed::open(&server, items.len());
    let t0 = Instant::now();
    for item in &items {
        client.submit(Arc::clone(item));
    }
    let report = server.shutdown();
    let elapsed = t0.elapsed();
    tickets_issued += client.assert_exactly_once(&report, "closed loop");
    let capacity_per_s = report.completed as f64 / elapsed.as_secs_f64();
    let batching_saving = saving_fraction(&report);
    let closed_p99_us = report.total.p99_us;
    eprintln!(
        "[bench_serve] closed loop: {capacity_per_s:.0} items/s, batching saved {:.0}% of the virtual GPU bill",
        batching_saving * 100.0
    );
    sweep.push(point_from("closed", capacity_per_s, elapsed, &report));

    // ---- observability overhead: obs-off vs obs-on at capacity ----------
    // The same closed-loop fixture served with and without the live
    // observability layer (default `ObsConfig`: 5ms drains, full event
    // stream, registry, flight recorder). Best-of-N per mode to damp
    // scheduler noise; the recorded fraction is gated at ≤ 2% by
    // `gate.rs`, so a hot-path regression in the event emission shows up
    // as a gate failure, not a silent tax. The obs-on trials also
    // cross-check the event stream against the conservation ledger.
    // A single pass over the smoke fixture lasts ~50ms, within which two
    // identical runs differ by several percent on a shared machine — so
    // each trial submits the stream several times over to stretch the
    // measurement window, and the modes are interleaved (off, on, off,
    // on, …) so scheduler drift lands on both sides alike. Best-of is the
    // right fold for capacity: interference only ever slows a run down.
    let obs_trials = 8usize;
    let obs_passes = 6usize;
    let mut obs_best = [0.0f64; 2]; // [off, on]
    for _ in 0..obs_trials {
        for (mi, obs_on) in [false, true].into_iter().enumerate() {
            let server = AmsServer::start(
                fx.scheduler(),
                budget,
                ServeConfig {
                    policy: BackpressurePolicy::Block,
                    obs: obs_on.then(ObsConfig::default),
                    ..base_cfg.clone()
                },
            );
            let mut client = Ticketed::open(&server, items.len() * obs_passes);
            let t0 = Instant::now();
            for _ in 0..obs_passes {
                for item in &items {
                    client.submit(Arc::clone(item));
                }
            }
            let report = server.shutdown();
            let elapsed = t0.elapsed().max(Duration::from_micros(1));
            tickets_issued += client.assert_exactly_once(&report, "obs overhead");
            assert!(
                report.events_reconcile(),
                "obs overhead trial: event totals must reconcile with the ledger"
            );
            obs_best[mi] = obs_best[mi].max(report.completed as f64 / elapsed.as_secs_f64());
        }
    }
    let obs_overhead_fraction = (1.0 - obs_best[1] / obs_best[0].max(f64::MIN_POSITIVE)).max(0.0);
    eprintln!(
        "[bench_serve] observability overhead: {:.0}/s off vs {:.0}/s on \
         ({:.2}% of closed-loop capacity)",
        obs_best[0],
        obs_best[1],
        obs_overhead_fraction * 100.0
    );

    // ---- routing: hash vs affinity at 0.8x and 1.6x ---------------------
    // Burst arrivals (8 at a time) at a fixed aggregate rate, lossless
    // blocking admission. The routing runs use their own server shape —
    // one worker per shard, wide batches, deep queues, so batches
    // assemble from whatever accumulated during the previous batch's
    // execution, for both modes alike — and the load factors are taken
    // against *that shape's* measured capacity, so 0.8x genuinely has
    // slack and 1.6x genuinely saturates. The stream is submitted several
    // times over: a single pass of the smoke fixture yields only a
    // handful of batches per mode, few enough that scheduler jitter can
    // decide the hash-vs-affinity comparison — sustaining the load
    // averages `mean_coalesced` over enough batches to make the
    // coalescing win a property of the routing, not of one lucky batch.
    let routing_passes = 3usize;
    let routing_stream: Vec<Arc<ItemTruth>> = items
        .iter()
        .cycle()
        .take(items.len() * routing_passes)
        .cloned()
        .collect();
    let routing_cfg = |routing| ServeConfig {
        policy: BackpressurePolicy::Block,
        routing,
        workers_per_shard: 1,
        max_batch: 16,
        queue_capacity: 64,
        ..base_cfg.clone()
    };
    let server = AmsServer::start(fx.scheduler(), budget, routing_cfg(RoutingMode::Hash));
    let mut client = Ticketed::open(&server, items.len());
    let t0 = Instant::now();
    for item in &items {
        client.submit(Arc::clone(item));
    }
    let cal = server.shutdown();
    let routing_capacity_per_s = cal.completed as f64 / t0.elapsed().as_secs_f64();
    tickets_issued += client.assert_exactly_once(&cal, "routing calibration");
    eprintln!(
        "[bench_serve] routing-shape closed-loop capacity: {routing_capacity_per_s:.0} items/s"
    );

    let mut routing_sweep: Vec<RoutingPoint> = Vec::new();
    for load_factor in [0.8f64, 1.6] {
        let rate = (routing_capacity_per_s * load_factor).max(1.0);
        let mut measured: Vec<(String, f64, f64)> = Vec::new();
        for routing in [RoutingMode::Hash, affinity] {
            let server = AmsServer::start(fx.scheduler(), budget, routing_cfg(routing));
            let mut client = Ticketed::open(&server, routing_stream.len());
            let t0 = Instant::now();
            submit_bursts(&mut client, &routing_stream, rate, 8);
            let report = server.shutdown();
            // Like every other load point: completions over the full span
            // including the drain, so achieved can never exceed offered on
            // a lossless run.
            let elapsed = t0.elapsed().max(Duration::from_micros(1));
            assert_eq!(
                report.completed as usize,
                routing_stream.len(),
                "lossless run"
            );
            tickets_issued += client.assert_exactly_once(&report, "routing sweep");
            let point = RoutingPoint {
                mode: report.routing.clone(),
                load_factor,
                offered_per_s: rate,
                achieved_per_s: report.completed as f64 / elapsed.as_secs_f64(),
                completed: report.completed,
                batches: report.batches,
                mean_batch_size: report.mean_batch_size(),
                mean_coalesced: report.mean_coalesced(),
                batching_saving_fraction: saving_fraction(&report),
                bill_saving_fraction: report.bill_saving_fraction(),
                affinity_hit_rate: report.affinity_hit_rate(),
                affinity_spills: report.affinity_spills,
                total_p50_us: report.total.p50_us,
                total_p99_us: report.total.p99_us,
            };
            eprintln!(
                "[bench_serve] routing {mode} @{load_factor}x: {coal:.2} executions/invocation, \
                 {saving:.1}% GPU bill saved, hit rate {hit:.0}%",
                mode = point.mode,
                coal = point.mean_coalesced,
                saving = point.bill_saving_fraction * 100.0,
                hit = point.affinity_hit_rate * 100.0,
            );
            measured.push((
                point.mode.clone(),
                point.mean_coalesced,
                point.bill_saving_fraction,
            ));
            routing_sweep.push(point);
        }
        // The acceptance gate: affinity must *strictly* out-coalesce hash
        // at this load, and the deeper coalescing must show up as a
        // strictly larger virtual-GPU saving.
        let hash = &measured[0];
        let aff = &measured[1];
        if !skip_gates {
            assert!(
                aff.1 > hash.1,
                "affinity must out-coalesce hash at {load_factor}x: {:.3} vs {:.3}",
                aff.1,
                hash.1
            );
            assert!(
                aff.2 > hash.2,
                "affinity must out-save hash at {load_factor}x: {:.4} vs {:.4}",
                aff.2,
                hash.2
            );
        }
    }

    // ---- adaptive batching: closed loop against a p99 target ------------
    // Self-calibrated target (1.25× the static batch-8 closed-loop p99, so
    // the number transfers across machines), start at the static limit,
    // ceiling at 2×: the controller grows throughput while the
    // BatchLatencyModel-bounded step keeps the predicted tail inside the
    // target. Last window on every shard must comply.
    let adaptive_cfg = AdaptiveBatchConfig {
        target_p99_ms: (closed_p99_us as f64 * 1.25 / 1000.0).ceil() as u64,
        min_batch: 2,
        max_batch: 2 * max_batch,
        window: 8,
        ..AdaptiveBatchConfig::default()
    };
    let server = AmsServer::start(
        fx.scheduler(),
        budget,
        ServeConfig {
            policy: BackpressurePolicy::Block,
            adaptive: Some(adaptive_cfg),
            ..base_cfg.clone()
        },
    );
    let mut client = Ticketed::open(&server, items.len());
    let t0 = Instant::now();
    for item in &items {
        client.submit(Arc::clone(item));
    }
    let report = server.shutdown();
    let elapsed = t0.elapsed();
    tickets_issued += client.assert_exactly_once(&report, "adaptive sweep");
    let adaptive_report = report.adaptive.clone().expect("adaptive controller ran");
    let adaptive = AdaptiveSweep {
        target_p99_ms: adaptive_cfg.target_p99_ms,
        start_max_batch: max_batch,
        ceiling_max_batch: adaptive_cfg.max_batch,
        window: adaptive_cfg.window,
        achieved_per_s: report.completed as f64 / elapsed.as_secs_f64(),
        total_p99_us: report.total.p99_us,
        all_within_target: adaptive_report.all_within_target(),
        shards: adaptive_report.shards,
    };
    for s in &adaptive.shards {
        eprintln!(
            "[bench_serve] adaptive shard {}: {:?} -> {} (last window p99 {:.1}ms vs {}ms target)",
            s.shard,
            s.trajectory,
            s.final_max_batch,
            s.last_window_p99_us as f64 / 1000.0,
            adaptive.target_p99_ms
        );
    }
    if !skip_gates {
        assert!(
            adaptive.all_within_target,
            "adaptive controller must keep every shard's last-window p99 within {}ms",
            adaptive.target_p99_ms
        );
    }

    // ---- SLO: blind vs value-aware shedding at 1.6x burst ---------------
    // Same server shape, same offered stream (bursts of 8 at 1.6x the
    // closed-loop capacity, classes alternating per request), ShedOldest
    // backpressure: the only difference between the two runs is *which*
    // requests get dropped and *when*. Blind mode drops queue heads and
    // lets doomed requests occupy slots until the deadline check at
    // dequeue; aware mode prices admission with the workers' amortized
    // batch time, evicts the worst value-per-remaining-deadline victim,
    // and serves earliest-deadline-first. The gate: aware must strictly
    // reduce the value-weighted shed loss and must not worsen the
    // deadline-met rate, with the exactly-once ledger intact in both.
    // The SLO runs use their own shape — one worker per shard and a
    // deeper queue, so the 1.6x burst genuinely saturates the workers and
    // queue waits genuinely threaten the interactive deadline — and the
    // load factor is taken against *that shape's* measured capacity. The
    // stream is submitted several times over, because shedding economics
    // only exist under *sustained* overload: a single short burst fits in
    // the queues and drains losslessly, leaving both modes nothing to
    // decide. Smoke's shorter stream takes more passes to accumulate
    // stable shedding statistics; the whole sustained run is still
    // sub-second.
    let slo_passes = if smoke { 5 } else { 3 };
    let slo_cfg = |policy, slo| ServeConfig {
        policy,
        workers_per_shard: 1,
        queue_capacity: 12,
        slo,
        ..base_cfg.clone()
    };
    // Lossless closed-loop calibration of the shape's sustainable rate.
    let server = AmsServer::start(
        fx.scheduler(),
        budget,
        slo_cfg(BackpressurePolicy::Block, None),
    );
    let mut client = Ticketed::open(&server, items.len());
    let t0 = Instant::now();
    for item in &items {
        client.submit(Arc::clone(item));
    }
    let cal = server.shutdown();
    let slo_capacity_per_s = cal.completed as f64 / t0.elapsed().as_secs_f64();
    tickets_issued += client.assert_exactly_once(&cal, "slo calibration");
    eprintln!("[bench_serve] slo-shape closed-loop capacity: {slo_capacity_per_s:.0} items/s");

    // Self-calibrated class deadlines, so the numbers transfer across
    // machines and fixture sizes: one batch's execute span ≈ max_batch ×
    // the measured per-item service time (shards ÷ capacity). The
    // interactive deadline sits at 1.8 batch spans — *between* the
    // EDF-served total (~1.5 spans: half an in-flight batch plus its own
    // execute) and the FIFO total through a full queue (~2.5+ spans) —
    // so earliest-deadline scheduling genuinely decides who makes it.
    // Bulk, at 10 spans, tolerates the backlog but not abandonment.
    let per_item_ms = 1000.0 * shards as f64 / slo_capacity_per_s.max(1.0);
    let batch_span_ms = per_item_ms * max_batch as f64;
    let slo_classes = vec![
        SloClass::new("interactive", (1.8 * batch_span_ms).ceil() as u64, 4.0),
        SloClass::new("bulk", (10.0 * batch_span_ms).ceil() as u64, 1.0),
    ];
    eprintln!(
        "[bench_serve] slo deadlines: interactive {}ms, bulk {}ms (batch span {batch_span_ms:.1}ms)",
        slo_classes[0].deadline_ms, slo_classes[1].deadline_ms
    );

    let slo_load_factor = 1.6f64;
    let slo_burst = 8usize;
    let slo_rate = (slo_capacity_per_s * slo_load_factor).max(1.0);
    let mut slo_points: Vec<SloPoint> = Vec::new();
    for aware in [false, true] {
        let slo = if aware {
            SloConfig::aware(slo_classes.clone())
        } else {
            SloConfig::blind(slo_classes.clone())
        };
        let server = AmsServer::start(
            fx.scheduler(),
            budget,
            slo_cfg(BackpressurePolicy::ShedOldest, Some(slo)),
        );
        let mut client = Ticketed::open(&server, items.len() * slo_passes);
        let t0 = Instant::now();
        let mut offered = 0usize;
        for _ in 0..slo_passes {
            for chunk in items.chunks(slo_burst) {
                let due = t0 + Duration::from_secs_f64(offered as f64 / slo_rate);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                for item in chunk {
                    client.submit_class(Arc::clone(item), offered % 2);
                    offered += 1;
                }
            }
        }
        let report = server.shutdown();
        tickets_issued += client.assert_exactly_once(&report, "slo sweep");
        let s = report.slo.as_ref().expect("slo ledger present");
        let conserved = report.is_conserved() && s.is_conserved();
        assert!(
            conserved,
            "SLO {} run must conserve requests",
            if aware { "aware" } else { "blind" }
        );
        let point = SloPoint {
            mode: if aware { "aware" } else { "blind" }.into(),
            completed: report.completed,
            rejected: report.rejected,
            shed_admission: report.shed_admission,
            shed_oldest: report.shed_oldest,
            shed_deadline: report.shed_deadline,
            value_offered: s.classes.iter().map(|c| c.value_offered).sum(),
            value_completed: s.value_completed(),
            value_late: s.value_late(),
            value_shed_loss: s.value_shed_loss(),
            deadline_met_rate: s.deadline_met_rate(),
            conserved,
            classes: s.classes.clone(),
        };
        eprintln!(
            "[bench_serve] slo {mode} @{slo_load_factor}x: value shed loss {loss:.1} \
             (banked {banked:.1}, late {late:.1}), deadline met {met:.1}%, \
             sheds adm/old/dead = {}/{}/{}",
            point.shed_admission,
            point.shed_oldest,
            point.shed_deadline,
            mode = point.mode,
            loss = point.value_shed_loss,
            banked = point.value_completed,
            late = point.value_late,
            met = point.deadline_met_rate * 100.0,
        );
        slo_points.push(point);
    }
    let aware_pt = slo_points.pop().expect("aware point");
    let blind_pt = slo_points.pop().expect("blind point");
    if !skip_gates {
        assert!(
            aware_pt.value_shed_loss < blind_pt.value_shed_loss,
            "SLO-aware shedding must strictly reduce the value-weighted shed loss \
             at {slo_load_factor}x: {:.2} vs {:.2}",
            aware_pt.value_shed_loss,
            blind_pt.value_shed_loss
        );
        assert!(
            aware_pt.deadline_met_rate >= blind_pt.deadline_met_rate,
            "SLO-aware shedding must not worsen the deadline-met rate \
             at {slo_load_factor}x: {:.4} vs {:.4}",
            aware_pt.deadline_met_rate,
            blind_pt.deadline_met_rate
        );
    }
    let slo_sweep = SloSweep {
        load_factor: slo_load_factor,
        burst: slo_burst,
        passes: slo_passes,
        offered_per_s: slo_rate,
        classes: slo_classes,
        blind: blind_pt,
        aware: aware_pt,
    };

    // ---- label cache: Zipf-repetition sweep, cache-off vs cache-on ------
    // The same deterministic sequence is served twice per repeat rate:
    // once without the cache (every submission executes) and once with it
    // (repeats are answered as exact hits or coalesce onto the in-flight
    // leader). Closed-loop blocking admission, so the measured elapsed
    // time is the server's — the capacity gain is dedup, not pacing. At
    // repeat 0 the sequence is exactly the fixture stream once, which
    // doubles as the cache-no-op equivalence gate: a unique stream must
    // produce zero hits and the serial engine's exact stats.
    let mut zipf_sweep: Vec<ZipfPoint> = Vec::new();
    for (zi, repeat_rate) in [0.0f64, 0.3, 0.6, 0.9].into_iter().enumerate() {
        let (stream, distinct) = zipf_stream(&items, items.len(), repeat_rate, 0xA31 + zi as u64);
        let mut measured: Vec<(ServeReport, f64)> = Vec::new();
        for cache_on in [false, true] {
            let server = AmsServer::start(
                fx.scheduler(),
                budget,
                ServeConfig {
                    policy: BackpressurePolicy::Block,
                    cache: cache_on.then(CacheConfig::default),
                    ..base_cfg.clone()
                },
            );
            let mut client = Ticketed::open(&server, stream.len());
            let t0 = Instant::now();
            for item in &stream {
                client.submit(Arc::clone(item));
            }
            let report = server.shutdown();
            let elapsed = t0.elapsed().max(Duration::from_micros(1));
            tickets_issued += client.assert_exactly_once(&report, "zipf sweep");
            assert!(
                report.is_conserved(),
                "zipf @{repeat_rate} cache_on={cache_on}: conservation"
            );
            let capacity = report.offered as f64 / elapsed.as_secs_f64();
            measured.push((report, capacity));
        }
        let (on, capacity_on) = measured.pop().expect("cache-on run");
        let (off, capacity_off) = measured.pop().expect("cache-off run");
        assert_eq!(off.cache_hit + off.coalesced, 0, "cache-off never caches");
        if !skip_gates && repeat_rate == 0.0 {
            // Unique stream: the cache must be invisible — no hits, no
            // coalescing, and byte-for-byte the serial engine's stats
            // (the serve==serial equivalence holds with the cache on).
            assert_eq!(on.cache_hit + on.coalesced, 0, "unique stream: no-op");
            assert_eq!(on.completed, off.completed, "repeat 0: same completions");
            assert_eq!(on.stats.items, want.items, "repeat 0: serial items");
            assert_eq!(on.stats.total_exec_ms, want.total_exec_ms, "repeat 0");
            assert_eq!(on.stats.total_executions, want.total_executions, "repeat 0");
            assert_eq!(on.stats.per_model_runs, want.per_model_runs, "repeat 0");
            assert!((on.stats.recall_sum - want.recall_sum).abs() < 1e-9);
        }
        let point = ZipfPoint {
            repeat_rate,
            submissions: stream.len() as u64,
            distinct,
            cache_hit: on.cache_hit,
            coalesced: on.coalesced,
            cache_hit_rate: on.cache_hit_rate(),
            bill_on_ms: on.virtual_work_ms,
            bill_off_ms: off.virtual_work_ms,
            bill_saving_fraction: 1.0
                - on.virtual_work_ms as f64 / off.virtual_work_ms.max(1) as f64,
            capacity_on_per_s: capacity_on,
            capacity_off_per_s: capacity_off,
            capacity_gain: capacity_on / capacity_off.max(f64::MIN_POSITIVE),
            conserved: on.is_conserved() && off.is_conserved(),
        };
        eprintln!(
            "[bench_serve] zipf repeat {repeat_rate}: hit rate {hit:.0}%, bill {bon}ms vs {boff}ms \
             ({saving:.0}% saved), capacity {con:.0}/s vs {coff:.0}/s",
            hit = point.cache_hit_rate * 100.0,
            bon = point.bill_on_ms,
            boff = point.bill_off_ms,
            saving = point.bill_saving_fraction * 100.0,
            con = point.capacity_on_per_s,
            coff = point.capacity_off_per_s,
        );
        if !skip_gates {
            if repeat_rate >= 0.6 {
                assert!(
                    point.bill_on_ms < point.bill_off_ms,
                    "zipf @{repeat_rate}: cache-on must strictly undercut cache-off's bill: \
                     {} vs {}",
                    point.bill_on_ms,
                    point.bill_off_ms
                );
            }
            if let Some(prev) = zipf_sweep.last() {
                assert!(
                    point.bill_saving_fraction > prev.bill_saving_fraction,
                    "bill saving must strictly increase with the repeat rate: \
                     {:.4} @{} vs {:.4} @{}",
                    point.bill_saving_fraction,
                    point.repeat_rate,
                    prev.bill_saving_fraction,
                    prev.repeat_rate
                );
                assert!(
                    point.capacity_on_per_s > prev.capacity_on_per_s,
                    "effective capacity must strictly increase with the repeat rate: \
                     {:.0}/s @{} vs {:.0}/s @{}",
                    point.capacity_on_per_s,
                    point.repeat_rate,
                    prev.capacity_on_per_s,
                    prev.repeat_rate
                );
            }
        }
        zipf_sweep.push(point);
    }

    // ---- drift: online adaptation under a mid-stream mixture shift ------
    // A two-phase stream: the fixture's items first, then several passes
    // over a disjoint dataset profile the boot agent never trained on.
    // The boot agent is deliberately undertrained (2 episodes), so its
    // value ranking is poor everywhere and the online trainer has
    // headroom; the mixture shift makes the comparison about *live*
    // traffic — everything the trainer learns, it learns from served
    // outcomes, and it must cash the learning in before the stream ends.
    // Served twice with identical configs except `adapt`:
    // * frozen — `adapt: None`; must reproduce the serial engine
    //   byte-for-byte over the same drifted stream (the adaptation
    //   subsystem's off-switch is a true no-op);
    // * adaptive — the background trainer taps every outcome, learns, and
    //   hot-swaps generations into the predict path mid-stream.
    // The gate: the adaptive run must bank strictly more realized label
    // value after the shift (per-phase value summed client-side from each
    // ticket's completion), with swaps > 0, zero experience drops, and
    // conservation + event reconciliation in both modes. Execution
    // emulation stretches serving over wall time so swaps land *during*
    // the stream, not after it.
    let drift_boot_episodes = 2usize;
    let drift_phase2_passes = 4usize;
    let drift_phase2_distinct = if smoke { 32 } else { 80 };
    let drift_boot = {
        let cfg = TrainConfig {
            episodes: drift_boot_episodes,
            ..TrainConfig::fast_test(Algo::Dqn)
        };
        train(fx.truth.items(), ModelZoo::standard().len(), &cfg).0
    };
    let phase2_truth = {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Places365, drift_phase2_distinct, 0xD21F7);
        TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5)
    };
    let phase2_stream: Vec<Arc<ItemTruth>> = phase2_truth
        .items()
        .iter()
        .cycle()
        .take(drift_phase2_distinct * drift_phase2_passes)
        .map(|i| Arc::new(i.clone()))
        .collect();
    let drift_total = items.len() + phase2_stream.len();
    // Both serve modes and the serial reference predict from the same
    // generation-0 snapshot of the boot agent — the exact predictor the
    // adaptive path serves until its first swap.
    let drift_scheduler = || {
        AdaptiveModelScheduler::new(
            ModelZoo::standard(),
            Box::new(SnapshotPredictor::new(Arc::new(AgentSnapshot::initial(
                drift_boot.clone(),
            )))),
            0.5,
            fx.world_seed,
        )
    };
    let want_drift = {
        let serial_stream: Vec<ItemTruth> = fx
            .truth
            .items()
            .iter()
            .cloned()
            .chain(phase2_stream.iter().map(|i| (**i).clone()))
            .collect();
        let mut serial = StreamProcessor::new(drift_scheduler(), budget);
        serial.process_all(&serial_stream);
        serial.stats().clone()
    };
    let drift_cfg = ServeConfig {
        shards: 2,
        workers_per_shard: 1,
        max_batch: 4,
        queue_capacity: 64,
        policy: BackpressurePolicy::Block,
        obs: Some(ObsConfig::default()),
        exec_emulation_scale: 2e-3,
        ..ServeConfig::default()
    };
    let mut drift_points: Vec<DriftPoint> = Vec::new();
    let mut frozen_matches_serial = true;
    for adaptive_on in [false, true] {
        let mode = if adaptive_on { "adaptive" } else { "frozen" };
        let adapt = adaptive_on.then(|| AdaptConfig {
            channel_capacity: 8192,
            online: OnlineConfig {
                warmup: 32,
                batch: 16,
                seed: 0xAD47,
                ..OnlineConfig::default()
            },
            steps_per_outcome: 4,
            swap_every: 8,
            agent: drift_boot.clone(),
        });
        let server = AmsServer::start(
            drift_scheduler(),
            budget,
            ServeConfig {
                adapt,
                ..drift_cfg.clone()
            },
        );
        let client = server.client_with_capacity(drift_total + 16);
        let mut is_phase2 = HashMap::new();
        for item in &items {
            let t = client
                .submit(Arc::clone(item))
                .ticket()
                .expect("lossless drift config accepts every submission");
            is_phase2.insert(t.id(), false);
        }
        for item in &phase2_stream {
            let t = client
                .submit(Arc::clone(item))
                .ticket()
                .expect("lossless drift config accepts every submission");
            is_phase2.insert(t.id(), true);
        }
        let report = server.shutdown();
        tickets_issued += report.offered;
        assert!(report.is_conserved(), "drift {mode}: conservation");
        let events = client.drain();
        assert_eq!(
            events.len(),
            drift_total,
            "drift {mode}: every ticket delivers exactly one terminal event"
        );
        let (mut phase1_value, mut phase2_value) = (0.0f64, 0.0f64);
        for ev in events {
            let Completion::Labeled(r) = ev else {
                panic!("drift {mode}: lossless run labels everything");
            };
            if is_phase2[&r.ticket] {
                phase2_value += r.label_value;
            } else {
                phase1_value += r.label_value;
            }
        }
        if !adaptive_on {
            frozen_matches_serial = report.stats.items == want_drift.items
                && report.stats.total_exec_ms == want_drift.total_exec_ms
                && report.stats.total_executions == want_drift.total_executions
                && report.stats.per_model_runs == want_drift.per_model_runs
                && (report.stats.recall_sum - want_drift.recall_sum).abs() < 1e-9
                && (report.stats.value_sum - want_drift.value_sum).abs() < 1e-9;
        }
        let a = report.adapt.as_ref();
        let point = DriftPoint {
            mode: mode.into(),
            completed: report.completed,
            phase1_value,
            phase2_value,
            value_sum: report.stats.value_sum,
            mean_recall: report.stats.mean_recall(),
            swaps: a.map_or(0, |a| a.swaps),
            learn_steps: a.map_or(0, |a| a.learn_steps),
            experiences: a.map_or(0, |a| a.experiences),
            experiences_dropped: a.map_or(0, |a| a.experiences_dropped),
            conserved: report.is_conserved(),
            events_reconciled: report.events_reconcile(),
        };
        eprintln!(
            "[bench_serve] drift {mode}: phase-2 value {p2:.1} (phase-1 {p1:.1}), \
             {swaps} swap(s), {steps} learn step(s)",
            p2 = point.phase2_value,
            p1 = point.phase1_value,
            swaps = point.swaps,
            steps = point.learn_steps,
        );
        drift_points.push(point);
    }
    let drift_adaptive = drift_points.pop().expect("adaptive drift point");
    let drift_frozen = drift_points.pop().expect("frozen drift point");
    if !skip_gates {
        assert!(
            frozen_matches_serial,
            "drift frozen run must equal the serial engine byte-for-byte \
             (adapt: None is a true no-op)"
        );
        assert!(
            drift_frozen.events_reconciled && drift_adaptive.events_reconciled,
            "drift runs must reconcile events with the ledger"
        );
        assert!(
            drift_adaptive.swaps > 0,
            "the trainer must publish generations mid-stream: {drift_adaptive:?}"
        );
        assert_eq!(
            drift_adaptive.experiences, drift_total as u64,
            "every served outcome must cross the experience channel"
        );
        assert_eq!(
            drift_adaptive.experiences_dropped, 0,
            "8192-deep channel must absorb the whole stream"
        );
        assert!(
            drift_adaptive.phase2_value > drift_frozen.phase2_value,
            "online adaptation must bank strictly more post-shift value: \
             adaptive {:.2} vs frozen {:.2}",
            drift_adaptive.phase2_value,
            drift_frozen.phase2_value
        );
    }
    let drift_sweep = DriftSweep {
        phase1_profile: "Coco2017".into(),
        phase2_profile: "Places365".into(),
        phase1_submissions: items.len() as u64,
        phase2_submissions: phase2_stream.len() as u64,
        phase2_passes: drift_phase2_passes,
        boot_episodes: drift_boot_episodes,
        frozen_matches_serial,
        phase2_value_gain: drift_adaptive.phase2_value
            / drift_frozen.phase2_value.max(f64::MIN_POSITIVE),
        frozen: drift_frozen,
        adaptive: drift_adaptive,
    };
    eprintln!(
        "[bench_serve] drift: adaptive banked {:.2}x the frozen post-shift value \
         over {} phase-2 submissions",
        drift_sweep.phase2_value_gain, drift_sweep.phase2_submissions
    );

    // ---- open loop: under, near, and past saturation --------------------
    for load_factor in [0.4f64, 0.8, 1.6] {
        let rate = (capacity_per_s * load_factor).max(1.0);
        let server = AmsServer::start(
            fx.scheduler(),
            budget,
            ServeConfig {
                policy: BackpressurePolicy::ShedOldest,
                // Stale requests are worthless to a live feed: shed at
                // dequeue anything that queued longer than 100ms.
                request_timeout_ms: Some(100),
                ..base_cfg.clone()
            },
        );
        let mut client = Ticketed::open(&server, items.len());
        let t0 = Instant::now();
        for (i, item) in items.iter().enumerate() {
            let due = t0 + Duration::from_secs_f64(i as f64 / rate);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            client.submit(Arc::clone(item));
        }
        let report = server.shutdown();
        let elapsed = t0.elapsed();
        tickets_issued += client.assert_exactly_once(&report, "open loop");
        eprintln!(
            "[bench_serve] open loop {load_factor}x: offered {rate:.0}/s, achieved {:.0}/s, shed {:.1}%, total p99 {:.1}ms",
            report.completed as f64 / elapsed.as_secs_f64(),
            report.shed_rate() * 100.0,
            report.total.p99_us as f64 / 1000.0
        );
        sweep.push(point_from("open", rate, elapsed, &report));
    }

    let record = Record {
        description: "AMS serving benchmark: sharded front-end (bounded queues, per-shard \
                      workers, batched admission into the virtual GPU pool) driven closed-loop \
                      at capacity and open-loop under/near/past saturation; hash vs \
                      model-affinity routing compared at 0.8x/1.6x burst load; adaptive \
                      batch-limit controller closed-loop against a self-calibrated p99 target; \
                      the content-addressed label cache swept over Zipf repeat rates, cache-on \
                      vs cache-off; the TCP front-end driven by 1/2/4 forked loopback client \
                      processes with byte-identical-label and serial-equivalence gates; online \
                      adaptation (ams-serve::adapt) under a mid-stream mixture shift, frozen vs \
                      adaptive, gated on post-shift realized value. \
                      DRL-agent predictor, 1s per-item deadline. See PERF.md for methodology."
            .into(),
        cores_available: cores,
        smoke,
        items: items.len(),
        shards,
        workers_per_shard,
        max_batch,
        queue_capacity,
        exec_emulation_scale: emu_scale,
        stats_match_serial: true,
        tickets_issued,
        exactly_once_ticketing: true,
        closed_loop_capacity_per_s: capacity_per_s,
        batching_saving_fraction: batching_saving,
        obs_overhead_fraction,
        affinity_top_k,
        routing_sweep,
        adaptive,
        slo_sweep,
        zipf_sweep,
        drift_sweep,
        net_sweep,
        sweep,
    };
    let json = serde_json::to_string_pretty(&record).expect("record serializes");
    // Smoke runs are a CI gate, not a measurement: don't clobber the
    // committed full-run record.
    let path = if smoke {
        "target/BENCH_serve.smoke.json"
    } else {
        "BENCH_serve.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("{json}");
}
