//! Serving benchmark: drive the sharded front-end through an offered-load
//! sweep and record throughput, tail latency, shed rate, and recall at
//! each point. Writes `BENCH_serve.json` (methodology in `PERF.md`).
//!
//! Two load modes:
//! * **closed loop** — submissions block on queue space, so the measured
//!   rate *is* the server's sustainable capacity (no coordinated-omission
//!   games: the producer can never outrun the system being measured).
//! * **open loop** — submissions arrive on a fixed schedule regardless of
//!   server progress (the real-traffic shape); overload shows up as queue
//!   growth, shed requests, and tail-latency blowup rather than as a
//!   silently slowed producer.
//!
//! Run with: `cargo run --release -p ams-bench --bin bench_serve [-- --smoke]`

use ams::prelude::*;
use ams_bench::hotpath::StreamSetup;
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One measured load point.
#[derive(Debug, Serialize)]
struct LoadPoint {
    mode: String,
    /// Offered rate, items/s (for closed loop: the achieved rate).
    offered_per_s: f64,
    /// Completed items / wall-clock elapsed (includes the drain).
    achieved_per_s: f64,
    offered: u64,
    completed: u64,
    shed_rate: f64,
    mean_recall: f64,
    queue_wait_p50_us: u64,
    queue_wait_p99_us: u64,
    execute_p50_us: u64,
    execute_p99_us: u64,
    total_p50_us: u64,
    total_p95_us: u64,
    total_p99_us: u64,
    batches: u64,
    max_batch_observed: usize,
}

/// The whole benchmark record.
#[derive(Debug, Serialize)]
struct Record {
    description: String,
    cores_available: usize,
    smoke: bool,
    items: usize,
    shards: usize,
    workers_per_shard: usize,
    max_batch: usize,
    queue_capacity: usize,
    exec_emulation_scale: f64,
    /// Serve-mode `StreamStats` equal the serial engine's over the same
    /// stream (verified on the lossless configuration; the process aborts
    /// if they ever diverge, so a green bench is a green equivalence).
    stats_match_serial: bool,
    /// Closed-loop sustainable capacity, items/s.
    closed_loop_capacity_per_s: f64,
    /// 1 − (batched virtual execution / serial virtual execution bill) on
    /// the closed-loop run: the share of simulated GPU time that batched
    /// admission saved.
    batching_saving_fraction: f64,
    sweep: Vec<LoadPoint>,
}

/// The shared stream fixture ([`StreamSetup`]) at full size matches
/// `bench_hotpath`'s workload exactly (240 items, 120 episodes), keeping
/// `BENCH_serve.json` and `BENCH_hotpath.json` comparable; smoke shrinks
/// both knobs so the CI gate stays in seconds.
fn fixture(smoke: bool) -> StreamSetup {
    if smoke {
        StreamSetup::paper(96, 24)
    } else {
        StreamSetup::paper(240, 120)
    }
}

fn point_from(mode: &str, offered_per_s: f64, elapsed: Duration, r: &ServeReport) -> LoadPoint {
    LoadPoint {
        mode: mode.into(),
        offered_per_s,
        achieved_per_s: r.completed as f64 / elapsed.as_secs_f64(),
        offered: r.offered,
        completed: r.completed,
        shed_rate: r.shed_rate(),
        mean_recall: r.stats.mean_recall(),
        queue_wait_p50_us: r.queue_wait.p50_us,
        queue_wait_p99_us: r.queue_wait.p99_us,
        execute_p50_us: r.execute.p50_us,
        execute_p99_us: r.execute.p99_us,
        total_p50_us: r.total.p50_us,
        total_p95_us: r.total.p95_us,
        total_p99_us: r.total.p99_us,
        batches: r.batches,
        max_batch_observed: r.max_batch_observed,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let fx = fixture(smoke);
    let budget = Budget::Deadline { ms: 1000 };
    let items: Vec<Arc<ItemTruth>> = fx
        .truth
        .items()
        .iter()
        .map(|i| Arc::new(i.clone()))
        .collect();

    let shards = 4usize;
    let workers_per_shard = 2usize;
    let max_batch = 8usize;
    let queue_capacity = 8usize;
    // 20 wall-clock µs per virtual execution ms: a batch's compressed
    // makespan (~1-2 virtual s) costs tens of wall ms, so queues genuinely
    // build, batches genuinely coalesce, and the overload point genuinely
    // sheds — while the whole sweep still finishes in seconds.
    let emu_scale = 2e-2;

    let base_cfg = ServeConfig {
        shards,
        workers_per_shard,
        max_batch,
        queue_capacity,
        exec_emulation_scale: emu_scale,
        ..ServeConfig::default()
    };

    // ---- equivalence gate: serve stats == serial stats, losslessly ------
    let mut serial = StreamProcessor::new(fx.scheduler(), budget);
    serial.process_all(fx.truth.items());
    let want = serial.stats().clone();
    let server = AmsServer::start(
        fx.scheduler(),
        budget,
        ServeConfig {
            policy: BackpressurePolicy::Block,
            exec_emulation_scale: 0.0,
            ..base_cfg.clone()
        },
    );
    for item in &items {
        server.submit(Arc::clone(item));
    }
    let eq_report = server.shutdown();
    let got = &eq_report.stats;
    assert_eq!(got.items, want.items, "serve items diverged from serial");
    assert_eq!(got.total_exec_ms, want.total_exec_ms);
    assert_eq!(got.total_executions, want.total_executions);
    assert_eq!(got.per_model_runs, want.per_model_runs);
    assert!((got.recall_sum - want.recall_sum).abs() < 1e-9);
    eprintln!(
        "[bench_serve] equivalence: serve stats == serial stats over {} items",
        want.items
    );

    let mut sweep: Vec<LoadPoint> = Vec::new();

    // ---- closed loop: sustainable capacity ------------------------------
    let server = AmsServer::start(
        fx.scheduler(),
        budget,
        ServeConfig {
            policy: BackpressurePolicy::Block,
            ..base_cfg.clone()
        },
    );
    let t0 = Instant::now();
    for item in &items {
        server.submit(Arc::clone(item));
    }
    let report = server.shutdown();
    let elapsed = t0.elapsed();
    let capacity_per_s = report.completed as f64 / elapsed.as_secs_f64();
    let batching_saving =
        1.0 - report.virtual_exec_ms as f64 / report.stats.total_exec_ms.max(1) as f64;
    eprintln!(
        "[bench_serve] closed loop: {capacity_per_s:.0} items/s, batching saved {:.0}% of the virtual GPU bill",
        batching_saving * 100.0
    );
    sweep.push(point_from("closed", capacity_per_s, elapsed, &report));

    // ---- open loop: under, near, and past saturation --------------------
    for load_factor in [0.4f64, 0.8, 1.6] {
        let rate = (capacity_per_s * load_factor).max(1.0);
        let server = AmsServer::start(
            fx.scheduler(),
            budget,
            ServeConfig {
                policy: BackpressurePolicy::ShedOldest,
                // Stale requests are worthless to a live feed: shed at
                // dequeue anything that queued longer than 100ms.
                request_timeout_ms: Some(100),
                ..base_cfg.clone()
            },
        );
        let t0 = Instant::now();
        for (i, item) in items.iter().enumerate() {
            let due = t0 + Duration::from_secs_f64(i as f64 / rate);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            server.submit(Arc::clone(item));
        }
        let report = server.shutdown();
        let elapsed = t0.elapsed();
        eprintln!(
            "[bench_serve] open loop {load_factor}x: offered {rate:.0}/s, achieved {:.0}/s, shed {:.1}%, total p99 {:.1}ms",
            report.completed as f64 / elapsed.as_secs_f64(),
            report.shed_rate() * 100.0,
            report.total.p99_us as f64 / 1000.0
        );
        sweep.push(point_from("open", rate, elapsed, &report));
    }

    let record = Record {
        description: "AMS serving benchmark: sharded front-end (hash-sharded bounded queues, \
                      per-shard workers, batched admission into the virtual GPU pool) driven \
                      closed-loop at capacity and open-loop under/near/past saturation. \
                      DRL-agent predictor, 1s per-item deadline. See PERF.md for methodology."
            .into(),
        cores_available: cores,
        smoke,
        items: items.len(),
        shards,
        workers_per_shard,
        max_batch,
        queue_capacity,
        exec_emulation_scale: emu_scale,
        stats_match_serial: true,
        closed_loop_capacity_per_s: capacity_per_s,
        batching_saving_fraction: batching_saving,
        sweep,
    };
    let json = serde_json::to_string_pretty(&record).expect("record serializes");
    // Smoke runs are a CI gate, not a measurement: don't clobber the
    // committed full-run record.
    let path = if smoke {
        "target/BENCH_serve.smoke.json"
    } else {
        "BENCH_serve.json"
    };
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("{json}");
}
