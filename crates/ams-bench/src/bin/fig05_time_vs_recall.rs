//! Regenerates one experiment of the paper; see DESIGN.md §4.
//! Pass `--smoke` for a fast low-fidelity run.
use ams_bench::experiments::*;
use ams_bench::{ExperimentConfig, Harness};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::default()
    };
    let mut h = Harness::new(cfg);
    fig04_05_prediction(&mut h);
}
