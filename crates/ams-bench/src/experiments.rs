//! One function per paper experiment. See DESIGN.md §4 for the index.

use crate::harness::{deadline_grid_s, memory_deadline_grid_s, recall_grid, Harness};
use ams::core::metrics::{mean, Cdf, Figure, Series};
use ams::core::policies::{
    aggregate_rollouts, no_policy_time_ms, optimal_rollout, predictor_greedy_rollout,
    random_rollout,
};
use ams::core::scheduler::optimal_star;
use ams::prelude::*;
use std::fmt::Write as _;

/// §II / Fig. 2 — time cost of no-policy vs random vs optimal to obtain all
/// valuable labels (average + CDF over a mixed corpus).
pub fn fig02_policy_gap(h: &mut Harness) -> Figure {
    let mut times_random = Vec::new();
    let mut times_optimal = Vec::new();
    let mut times_nopolicy = Vec::new();
    let no_policy_s = no_policy_time_ms(&h.zoo) as f64 / 1000.0;
    let threshold = h.cfg.threshold;

    for profile in DatasetProfile::PREDICTION_TRIO {
        let zoo = h.zoo.clone();
        for item in h.eval_items(profile) {
            times_nopolicy.push(no_policy_s);
            times_random
                .push(random_rollout(&item, &zoo, 1.0, threshold, 11).time_ms as f64 / 1000.0);
            times_optimal
                .push(optimal_rollout(&item, &zoo, 1.0, threshold).time_ms as f64 / 1000.0);
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "# fig2 — per-image time to recall all valuable labels");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>14}",
        "policy", "avg s/img", "vs no-policy"
    );
    for (name, t) in [
        ("no policy", &times_nopolicy),
        ("random", &times_random),
        ("optimal", &times_optimal),
    ] {
        let m = mean(t);
        let _ = writeln!(
            out,
            "{name:<12} {m:>10.2} {:>13.1}%",
            m / no_policy_s * 100.0
        );
    }
    let _ = writeln!(out, "(paper: 5.16 / 4.64 / 1.14 s → 100% / 90% / 22.1%)");
    h.emit_text("fig2_summary", &out);

    // CDF curves sampled on a common grid.
    let cdf_r = Cdf::new(times_random.clone());
    let cdf_o = Cdf::new(times_optimal.clone());
    let xs: Vec<f64> = (0..=20).map(|i| i as f64 * no_policy_s / 20.0).collect();
    let fig = Figure {
        id: "fig2_cdf".into(),
        title: "CDF of per-image time cost to full valuable-label recall".into(),
        x_label: "time s".into(),
        y_label: "CDF".into(),
        series: vec![
            Series::new(
                "no-policy",
                xs.clone(),
                xs.iter()
                    .map(|&x| f64::from(x >= no_policy_s - 1e-9))
                    .collect(),
            ),
            Series::new(
                "random",
                xs.clone(),
                xs.iter().map(|&x| cdf_r.at(x)).collect(),
            ),
            Series::new(
                "optimal",
                xs.clone(),
                xs.iter().map(|&x| cdf_o.at(x)).collect(),
            ),
        ],
    };
    h.emit(&fig);
    fig
}

/// Table I — the deployed zoo.
pub fn table1_zoo(h: &mut Harness) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# table1 — 10 visual analysis tasks, 30 models, 1104 labels"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>7} {:>28}",
        "task", "labels", "models (time ms / mem MB)"
    );
    for task in Task::ALL {
        let models: Vec<String> = h
            .zoo
            .models_for(task)
            .map(|s| format!("{}/{}", s.time_ms, s.mem_mb))
            .collect();
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>28}",
            task.name(),
            task.label_count(),
            models.join("  ")
        );
    }
    let _ = writeln!(
        out,
        "total zoo time: {:.2} s (paper: 5.16 s)",
        h.zoo.total_time_ms() as f64 / 1000.0
    );
    h.emit_text("table1_zoo", &out);
    out
}

/// Figs. 4 & 5 — avg executed models / execution time vs required recall
/// rate, for the four DRL schemas plus random and optimal, on the three
/// prediction datasets. Returns `(fig4 figures, fig5 figures)`.
pub fn fig04_05_prediction(h: &mut Harness) -> (Vec<Figure>, Vec<Figure>) {
    let grid = recall_grid();
    let mut fig4 = Vec::new();
    let mut fig5 = Vec::new();
    let threshold = h.cfg.threshold;

    for profile in DatasetProfile::PREDICTION_TRIO {
        let items = h.eval_items(profile);
        let zoo = h.zoo.clone();
        let mut series_models: Vec<Series> = Vec::new();
        let mut series_time: Vec<Series> = Vec::new();

        for algo in Algo::ALL {
            let agent = h.agent(profile, algo);
            let predictor = AgentPredictor::new(agent);
            let mut ys_m = Vec::new();
            let mut ys_t = Vec::new();
            for &target in &grid {
                let (m, t) = aggregate_rollouts(items.iter(), |it| {
                    predictor_greedy_rollout(it, &zoo, &predictor, target, threshold)
                });
                ys_m.push(m);
                ys_t.push(t);
            }
            series_models.push(Series::new(algo.name(), grid.clone(), ys_m));
            series_time.push(Series::new(algo.name(), grid.clone(), ys_t));
        }

        type Runner<'a> = Box<dyn Fn(&ItemTruth, f64) -> Rollout + 'a>;
        let baselines: Vec<(&str, Runner<'_>)> = vec![
            (
                "Random",
                Box::new(|it: &ItemTruth, tgt: f64| random_rollout(it, &zoo, tgt, threshold, 5)),
            ),
            (
                "Optimal",
                Box::new(|it: &ItemTruth, tgt: f64| optimal_rollout(it, &zoo, tgt, threshold)),
            ),
        ];
        for (name, f) in baselines {
            let mut ys_m = Vec::new();
            let mut ys_t = Vec::new();
            for &target in &grid {
                let (m, t) = aggregate_rollouts(items.iter(), |it| f(it, target));
                ys_m.push(m);
                ys_t.push(t);
            }
            series_models.push(Series::new(name, grid.clone(), ys_m));
            series_time.push(Series::new(name, grid.clone(), ys_t));
        }

        let tag = profile.name().replace(' ', "_");
        let f4 = Figure {
            id: format!("fig4_{tag}"),
            title: format!("avg executed models vs recall — {}", profile.name()),
            x_label: "recall".into(),
            y_label: "models".into(),
            series: series_models,
        };
        let f5 = Figure {
            id: format!("fig5_{tag}"),
            title: format!("avg execution time vs recall — {}", profile.name()),
            x_label: "recall".into(),
            y_label: "seconds".into(),
            series: series_time,
        };
        h.emit(&f4);
        h.emit(&f5);
        fig4.push(f4);
        fig5.push(f5);
    }
    (fig4, fig5)
}

/// Table II — the handcrafted rules.
pub fn table2_rules(h: &mut Harness) -> String {
    let book = RuleBook::table2(&h.catalog);
    let mut out = String::new();
    let _ = writeln!(out, "# table2 — handcrafted model execution rules");
    let _ = writeln!(
        out,
        "{:<24} {:<18} {:<28} {:>6}",
        "source task", "trigger", "target task", "mult"
    );
    for r in book.rules() {
        let trig = match &r.trigger {
            Trigger::Label(l) => h.catalog.name(*l).to_string(),
            Trigger::BodyKeypoints => "body keypoints".into(),
            Trigger::WristKeypoints => "wrist keypoints".into(),
            Trigger::IndoorPlace => "indoor places".into(),
        };
        let target = match r.tier_filter {
            Some(_) => format!("{} (specialist)", r.target_task.name()),
            None => r.target_task.name().to_string(),
        };
        let _ = writeln!(
            out,
            "{:<24} {:<18} {:<28} {:>6.1}",
            r.source_task.name(),
            trig,
            target,
            r.multiplier
        );
    }
    h.emit_text("table2_rules", &out);
    out
}

/// Fig. 6 — rules vs DuelingDQN vs random vs optimal on MSCOCO.
pub fn fig06_rules_vs_agent(h: &mut Harness) -> (Figure, Figure) {
    let profile = DatasetProfile::Coco2017;
    let grid = recall_grid();
    let items = h.eval_items(profile);
    let zoo = h.zoo.clone();
    let catalog = h.catalog.clone();
    let threshold = h.cfg.threshold;
    let book = RuleBook::table2(&catalog);
    let agent = h.agent(profile, Algo::DuelingDqn);
    let predictor = AgentPredictor::new(agent);

    type TargetRunner<'a> = Box<dyn Fn(&ItemTruth, f64) -> Rollout + 'a>;
    let mut series_m: Vec<Series> = Vec::new();
    let mut series_t: Vec<Series> = Vec::new();
    let runners: Vec<(&str, TargetRunner<'_>)> = vec![
        (
            "Rule",
            Box::new(|it, tgt| rule_rollout(it, &zoo, &catalog, &book, tgt, threshold, 13)),
        ),
        (
            "DuelingDQN",
            Box::new(|it, tgt| predictor_greedy_rollout(it, &zoo, &predictor, tgt, threshold)),
        ),
        (
            "Random",
            Box::new(|it, tgt| random_rollout(it, &zoo, tgt, threshold, 13)),
        ),
        (
            "Optimal",
            Box::new(|it, tgt| optimal_rollout(it, &zoo, tgt, threshold)),
        ),
    ];
    for (name, f) in &runners {
        let mut ys_m = Vec::new();
        let mut ys_t = Vec::new();
        for &target in &grid {
            let (m, t) = aggregate_rollouts(items.iter(), |it| f(it, target));
            ys_m.push(m);
            ys_t.push(t);
        }
        series_m.push(Series::new(*name, grid.clone(), ys_m));
        series_t.push(Series::new(*name, grid.clone(), ys_t));
    }

    let f_m = Figure {
        id: "fig6_models".into(),
        title: "rules vs agent: avg executed models vs recall (MSCOCO)".into(),
        x_label: "recall".into(),
        y_label: "models".into(),
        series: series_m,
    };
    let f_t = Figure {
        id: "fig6_time".into(),
        title: "rules vs agent: avg execution time vs recall (MSCOCO)".into(),
        x_label: "recall".into(),
        y_label: "seconds".into(),
        series: series_t,
    };
    h.emit(&f_m);
    h.emit(&f_t);
    (f_m, f_t)
}

/// Fig. 7 — a qualitative model-execution sequence for one item, scheduled
/// by the DuelingDQN agent's Q-greedy policy.
pub fn fig07_sequence(h: &mut Harness) -> String {
    let profile = DatasetProfile::MirFlickr25;
    let agent = h.agent(profile, Algo::DuelingDqn);
    let items = h.eval_items(profile);
    let zoo = h.zoo.clone();
    let catalog = h.catalog.clone();
    let threshold = h.cfg.threshold;

    // pick an item with a rich execution sequence (several valuable models)
    let item = items
        .iter()
        .max_by_key(|it| it.valuable_models(threshold).len())
        .expect("non-empty eval set");
    let predictor = AgentPredictor::new(agent);
    let rollout = predictor_greedy_rollout(item, &zoo, &predictor, 1.0, threshold);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# fig7 — Q-greedy execution sequence (item {})",
        item.scene_id
    );
    let mut state = LabelSet::new(item.universe());
    for (i, &m) in rollout.executed.iter().enumerate() {
        let new: Vec<String> = item
            .output(m)
            .valuable(threshold)
            .filter(|d| !state.contains(d.label))
            .map(|d| format!("{} {:.3}", catalog.name(d.label), d.confidence))
            .collect();
        item.apply(&mut state, m, threshold);
        let rendered = if new.is_empty() {
            "(nothing new)".to_string()
        } else if new.len() > 4 {
            format!("{} … +{} more", new[..4].join(", "), new.len() - 4)
        } else {
            new.join(", ")
        };
        let _ = writeln!(out, "{:>2}. {:<24} -> {rendered}", i + 1, zoo.spec(m).name);
        if i >= 7 {
            let _ = writeln!(
                out,
                "    … ({} more executions)",
                rollout.executed.len() - i - 1
            );
            break;
        }
    }
    h.emit_text("fig7_sequence", &out);
    out
}

/// Fig. 8 — transferability: agents trained on Stanford40 / VOC, tested on
/// both, Q-greedy to full recall; average time + CDFs.
pub fn fig08_transfer(h: &mut Harness) -> Figure {
    let d1 = DatasetProfile::Stanford40;
    let d2 = DatasetProfile::PascalVoc2012;
    let agent1 = AgentPredictor::new(h.agent(d1, Algo::DuelingDqn));
    let agent2 = AgentPredictor::new(h.agent(d2, Algo::DuelingDqn));
    let zoo = h.zoo.clone();
    let threshold = h.cfg.threshold;

    let mut out = String::new();
    let _ = writeln!(out, "# fig8 — transfer: avg time (s) to full recall");
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "test set", "Agent1", "Agent2", "Random", "Optimal"
    );
    let mut cdf_series = Vec::new();
    for (name, profile) in [("Dataset1", d1), ("Dataset2", d2)] {
        let items = h.eval_items(profile);
        let (_, t1) = aggregate_rollouts(items.iter(), |it| {
            predictor_greedy_rollout(it, &zoo, &agent1, 1.0, threshold)
        });
        let (_, t2) = aggregate_rollouts(items.iter(), |it| {
            predictor_greedy_rollout(it, &zoo, &agent2, 1.0, threshold)
        });
        let (_, tr) = aggregate_rollouts(items.iter(), |it| {
            random_rollout(it, &zoo, 1.0, threshold, 21)
        });
        let (_, to) =
            aggregate_rollouts(items.iter(), |it| optimal_rollout(it, &zoo, 1.0, threshold));
        let _ = writeln!(out, "{name:<10} {t1:>8.2} {t2:>8.2} {tr:>8.2} {to:>8.2}");

        // CDF of per-item times for the native agent on this set
        let times: Vec<f64> = items
            .iter()
            .map(|it| {
                let a: &AgentPredictor = if profile == d1 { &agent1 } else { &agent2 };
                predictor_greedy_rollout(it, &zoo, a, 1.0, threshold).time_ms as f64 / 1000.0
            })
            .collect();
        let cdf = Cdf::new(times);
        let xs: Vec<f64> = (0..=20).map(|i| i as f64 * 5.2 / 20.0).collect();
        cdf_series.push(Series::new(
            format!("native-agent-on-{name}"),
            xs.clone(),
            xs.iter().map(|&x| cdf.at(x)).collect(),
        ));
    }
    let _ = writeln!(
        out,
        "(paper: Agent1 1.94/2.63, Agent2 2.09/2.47, Random 4.12/4.04, Optimal 0.79/0.68)"
    );
    h.emit_text("fig8_transfer", &out);
    let fig = Figure {
        id: "fig8_cdf".into(),
        title: "CDF of per-image time, native agents".into(),
        x_label: "time s".into(),
        y_label: "CDF".into(),
        series: cdf_series,
    };
    h.emit(&fig);
    fig
}

/// Fig. 9 — the θ priority experiment on the face-detection flagship:
/// average execution position and average full-recall time vs θ.
///
/// The agents across θ values share one training seed so that the only
/// varying factor is θ itself.
pub fn fig09_theta(h: &mut Harness) -> (Figure, Figure) {
    let profile = DatasetProfile::Coco2017;
    let face_model = h
        .zoo
        .models_for(Task::FaceDetection)
        .next()
        .expect("face detector")
        .id;
    let thetas = [1.0f32, 2.0, 5.0, 10.0];
    let zoo = h.zoo.clone();
    let threshold = h.cfg.threshold;
    let items = h.eval_items(profile);
    let episodes = h.cfg.episodes;
    let train_items = h.train_items(profile);

    let mut series_pos: Vec<Series> = Vec::new();
    let mut series_time: Vec<Series> = Vec::new();
    for algo in Algo::ALL {
        let mut pos = Vec::new();
        let mut time = Vec::new();
        for &theta in &thetas {
            let reward = RewardConfig {
                value_threshold: threshold,
                ..Default::default()
            }
            .with_theta(face_model, theta, zoo.len());
            let cfg = TrainConfig {
                episodes,
                seed: h.cfg.seed ^ 0xF19, // identical across θ: only θ varies
                reward,
                ..TrainConfig::new(algo)
            };
            let t0 = std::time::Instant::now();
            let (agent, _) = train(&train_items, zoo.len(), &cfg);
            eprintln!("[fig9] trained {algo} θ={theta} in {:.1?}", t0.elapsed());
            let predictor = AgentPredictor::new(agent);
            // Position of the prioritized model on items where its label
            // actually exists — the user-visible "delay until my preferred
            // label arrives". Items without a face would pin the position
            // at the tail regardless of θ and only dilute the measurement.
            let positions: Vec<f64> = items
                .iter()
                .filter(|it| it.model_value[face_model.index()] > 0.0)
                .map(|it| {
                    let r = predictor_greedy_rollout(it, &zoo, &predictor, 1.0, threshold);
                    r.executed
                        .iter()
                        .position(|&m| m == face_model)
                        .map(|p| (p + 1) as f64)
                        .unwrap_or((zoo.len() + 1) as f64)
                })
                .collect();
            let (_, t) = aggregate_rollouts(items.iter(), |it| {
                predictor_greedy_rollout(it, &zoo, &predictor, 1.0, threshold)
            });
            pos.push(mean(&positions));
            time.push(t);
        }
        series_pos.push(Series::new(
            algo.name(),
            thetas.iter().map(|&t| f64::from(t)).collect(),
            pos,
        ));
        series_time.push(Series::new(
            algo.name(),
            thetas.iter().map(|&t| f64::from(t)).collect(),
            time,
        ));
    }
    // random baseline: expected position of a fixed model = (n+1)/2
    let n = zoo.len() as f64;
    series_pos.push(Series::new(
        "Random",
        thetas.iter().map(|&t| f64::from(t)).collect(),
        vec![(n + 1.0) / 2.0; thetas.len()],
    ));
    let (_, rt) = aggregate_rollouts(items.iter(), |it| {
        random_rollout(it, &zoo, 1.0, threshold, 31)
    });
    series_time.push(Series::new(
        "Random",
        thetas.iter().map(|&t| f64::from(t)).collect(),
        vec![rt; thetas.len()],
    ));

    let f_pos = Figure {
        id: "fig9_order".into(),
        title: "avg execution order of the face-detection model vs θ".into(),
        x_label: "theta".into(),
        y_label: "position".into(),
        series: series_pos,
    };
    let f_time = Figure {
        id: "fig9_time".into(),
        title: "avg full-recall execution time vs θ".into(),
        x_label: "theta".into(),
        y_label: "seconds".into(),
        series: series_time,
    };
    h.emit(&f_pos);
    h.emit(&f_time);
    (f_pos, f_time)
}

/// Fig. 10 — value recall under deadline constraints: Algorithm 1 (cost-Q
/// greedy) vs Q-greedy vs random vs optimal*, plus the performance-ratio
/// panel.
pub fn fig10_deadline(h: &mut Harness) -> Vec<Figure> {
    let grid = deadline_grid_s();
    let zoo = h.zoo.clone();
    let threshold = h.cfg.threshold;
    let mut figures = Vec::new();
    let mut ratio_series: Vec<Series> = Vec::new();

    for profile in DatasetProfile::PREDICTION_TRIO {
        let agent = h.agent(profile, Algo::DuelingDqn);
        let predictor = AgentPredictor::new(agent);
        let items = h.eval_items(profile);

        let mut y_alg1 = Vec::new();
        let mut y_qg = Vec::new();
        let mut y_rand = Vec::new();
        let mut y_star = Vec::new();
        for &dl in &grid {
            let budget_ms = (dl * 1000.0) as u64;
            let mut r_alg1 = 0.0;
            let mut r_qg = 0.0;
            let mut r_rand = 0.0;
            let mut r_star = 0.0;
            for item in &items {
                r_alg1 += schedule_deadline(&predictor, &zoo, item, budget_ms, threshold).recall;
                r_qg += q_greedy_deadline_recall(&predictor, &zoo, item, budget_ms, threshold);
                r_rand += random_deadline_recall(&zoo, item, budget_ms, threshold, 17);
                r_star += optimal_star::recall::deadline(&zoo, item, budget_ms, threshold);
            }
            let n = items.len() as f64;
            y_alg1.push(r_alg1 / n);
            y_qg.push(r_qg / n);
            y_rand.push(r_rand / n);
            y_star.push(r_star / n);
        }
        let ratio: Vec<f64> = y_alg1
            .iter()
            .zip(&y_star)
            .map(|(a, s)| if *s > 0.0 { a / s } else { 1.0 })
            .collect();
        ratio_series.push(Series::new(profile.name(), grid.clone(), ratio));

        let tag = profile.name().replace(' ', "_");
        let fig = Figure {
            id: format!("fig10_{tag}"),
            title: format!("value recall vs deadline — {}", profile.name()),
            x_label: "deadline s".into(),
            y_label: "recall".into(),
            series: vec![
                Series::new("Q Greedy", grid.clone(), y_qg),
                Series::new("Cost-Q Greedy", grid.clone(), y_alg1),
                Series::new("Random", grid.clone(), y_rand),
                Series::new("Optimal*", grid.clone(), y_star),
            ],
        };
        h.emit(&fig);
        figures.push(fig);
    }

    let one_minus_inv_e = 1.0 - 1.0 / std::f64::consts::E;
    ratio_series.push(Series::new(
        "1-1/e",
        grid.clone(),
        vec![one_minus_inv_e; grid.len()],
    ));
    let ratio_fig = Figure {
        id: "fig10_ratio".into(),
        title: "Algorithm 1 / optimal* performance ratio".into(),
        x_label: "deadline s".into(),
        y_label: "ratio".into(),
        series: ratio_series,
    };
    h.emit(&ratio_fig);
    figures.push(ratio_fig);
    figures
}

/// Fig. 11 — recall under deadline + memory constraints (Algorithm 2 vs
/// random packing vs optimal*), and the ratio panel.
pub fn fig11_memory(h: &mut Harness) -> Vec<Figure> {
    // The paper's worst case: Agent1 (Stanford40) evaluated on Dataset2.
    let agent = h.agent(DatasetProfile::Stanford40, Algo::DuelingDqn);
    let predictor = AgentPredictor::new(agent);
    let items = h.eval_items(DatasetProfile::PascalVoc2012);
    let zoo = h.zoo.clone();
    let threshold = h.cfg.threshold;
    let grid = memory_deadline_grid_s();
    let mems = [(8192u32, "8GB"), (12288, "12GB"), (16384, "16GB")];

    let mut figures = Vec::new();
    let mut ratio_series: Vec<Series> = Vec::new();
    for (mem_mb, mem_name) in mems {
        let mut y_agent = Vec::new();
        let mut y_rand = Vec::new();
        let mut y_star = Vec::new();
        for &dl in &grid {
            let budget_ms = (dl * 1000.0) as u64;
            let mut ra = 0.0;
            let mut rr = 0.0;
            let mut rs = 0.0;
            for item in &items {
                ra +=
                    schedule_deadline_memory(&predictor, &zoo, item, budget_ms, mem_mb, threshold)
                        .recall;
                rr += random_memory_recall(&zoo, item, budget_ms, mem_mb, threshold, 23);
                rs +=
                    optimal_star::recall::deadline_memory(&zoo, item, budget_ms, mem_mb, threshold);
            }
            let n = items.len() as f64;
            y_agent.push(ra / n);
            y_rand.push(rr / n);
            y_star.push(rs / n);
        }
        let ratio: Vec<f64> = y_agent
            .iter()
            .zip(&y_star)
            .map(|(a, s)| if *s > 0.0 { a / s } else { 1.0 })
            .collect();
        ratio_series.push(Series::new(format!("{mem_name} Mem"), grid.clone(), ratio));
        let fig = Figure {
            id: format!("fig11_{mem_name}"),
            title: format!("recall vs deadline under {mem_name} memory"),
            x_label: "deadline s".into(),
            y_label: "recall".into(),
            series: vec![
                Series::new("Agent", grid.clone(), y_agent),
                Series::new("Random", grid.clone(), y_rand),
                Series::new("Optimal*", grid.clone(), y_star),
            ],
        };
        h.emit(&fig);
        figures.push(fig);
    }
    let one_minus_inv_e = 1.0 - 1.0 / std::f64::consts::E;
    ratio_series.push(Series::new(
        "1-1/e",
        grid.clone(),
        vec![one_minus_inv_e; grid.len()],
    ));
    let ratio_fig = Figure {
        id: "fig11_ratio".into(),
        title: "Algorithm 2 / optimal* performance ratio".into(),
        x_label: "deadline s".into(),
        y_label: "ratio".into(),
        series: ratio_series,
    };
    h.emit(&ratio_fig);
    figures.push(ratio_fig);
    figures
}

/// Fig. 12 — transfer agents under deadline constraints (Algorithm 1).
pub fn fig12_transfer_deadline(h: &mut Harness) -> Vec<Figure> {
    let d1 = DatasetProfile::Stanford40;
    let d2 = DatasetProfile::PascalVoc2012;
    let agent1 = AgentPredictor::new(h.agent(d1, Algo::DuelingDqn));
    let agent2 = AgentPredictor::new(h.agent(d2, Algo::DuelingDqn));
    let zoo = h.zoo.clone();
    let threshold = h.cfg.threshold;
    let grid = deadline_grid_s();

    let mut figures = Vec::new();
    for (name, profile) in [("Dataset1", d1), ("Dataset2", d2)] {
        let items = h.eval_items(profile);
        let mut y1 = Vec::new();
        let mut y2 = Vec::new();
        let mut yr = Vec::new();
        let mut ys = Vec::new();
        for &dl in &grid {
            let budget_ms = (dl * 1000.0) as u64;
            let mut a1 = 0.0;
            let mut a2 = 0.0;
            let mut rr = 0.0;
            let mut ss = 0.0;
            for item in &items {
                a1 += schedule_deadline(&agent1, &zoo, item, budget_ms, threshold).recall;
                a2 += schedule_deadline(&agent2, &zoo, item, budget_ms, threshold).recall;
                rr += random_deadline_recall(&zoo, item, budget_ms, threshold, 29);
                ss += optimal_star::recall::deadline(&zoo, item, budget_ms, threshold);
            }
            let n = items.len() as f64;
            y1.push(a1 / n);
            y2.push(a2 / n);
            yr.push(rr / n);
            ys.push(ss / n);
        }
        let fig = Figure {
            id: format!("fig12_{name}"),
            title: format!("transfer agents under deadline — {name}"),
            x_label: "deadline s".into(),
            y_label: "recall".into(),
            series: vec![
                Series::new("Agent1", grid.clone(), y1),
                Series::new("Agent2", grid.clone(), y2),
                Series::new("Random", grid.clone(), yr),
                Series::new("Optimal*", grid.clone(), ys),
            ],
        };
        h.emit(&fig);
        figures.push(fig);
    }
    figures
}

/// Table III — scheduling overhead: per-decision agent time and memory vs
/// the simulated model costs.
pub fn table3_overhead(h: &mut Harness) -> String {
    let agent = h.agent(DatasetProfile::Coco2017, Algo::DuelingDqn);
    let items = h.eval_items(DatasetProfile::Coco2017);
    // time per decision: full Q evaluation on a populated state
    let state: Vec<u32> = items
        .first()
        .map(|it| {
            let mut s = LabelSet::new(it.universe());
            for m in 0..10 {
                it.apply(&mut s, ModelId(m), h.cfg.threshold);
            }
            s.to_sparse()
        })
        .unwrap_or_default();
    let reps = 2000;
    let t0 = std::time::Instant::now();
    let mut sink = 0.0f32;
    for _ in 0..reps {
        sink += agent.q_values(&state).iter().sum::<f32>();
    }
    let per_decision_us = t0.elapsed().as_secs_f64() * 1e6 / f64::from(reps);
    std::hint::black_box(sink);

    let params = agent.net.param_count();
    let agent_mb = params as f64 * 4.0 / (1024.0 * 1024.0);
    let (min_t, max_t) = h.zoo.specs().iter().fold((u32::MAX, 0), |(lo, hi), s| {
        (lo.min(s.time_ms), hi.max(s.time_ms))
    });
    let (min_m, max_m) = h.zoo.specs().iter().fold((u32::MAX, 0), |(lo, hi), s| {
        (lo.min(s.mem_mb), hi.max(s.mem_mb))
    });

    let mut out = String::new();
    let _ = writeln!(out, "# table3 — scheduling overhead");
    let _ = writeln!(
        out,
        "{:<22} {:>18} {:>22}",
        "", "DRL agent", "deep learning model"
    );
    let _ = writeln!(
        out,
        "{:<22} {:>15.1} us {:>15}-{} ms",
        "time per decision/exec", per_decision_us, min_t, max_t
    );
    let _ = writeln!(
        out,
        "{:<22} {:>15.2} MB {:>15}-{} MB",
        "memory", agent_mb, min_m, max_m
    );
    let _ = writeln!(
        out,
        "({params} parameters; paper: 3-6 ms per decision, ~100 MB agent)"
    );
    h.emit_text("table3_overhead", &out);
    out
}

/// §I ablation — explore–exploit on correlated chunked streams.
pub fn ablation_chunked(h: &mut Harness) -> String {
    let zoo = h.zoo.clone();
    let chunks = chunked::chunked_stream(&zoo, 40, 7, h.cfg.seed, h.cfg.threshold);
    let cfg = ChunkedConfig::default();
    let (time, recall, no_policy) = chunked::run_stream(&chunks, &zoo, &cfg);
    let mut out = String::new();
    let _ = writeln!(out, "# ablation — explore-exploit on chunked streams");
    let _ = writeln!(
        out,
        "chunks: {} x {} items (one scene template each)",
        chunks.len(),
        chunks[0].len()
    );
    let _ = writeln!(out, "no-policy time  : {:.1} s", no_policy as f64 / 1000.0);
    let _ = writeln!(
        out,
        "explore-exploit : {:.1} s ({:.1}% saved)",
        time as f64 / 1000.0,
        (1.0 - time as f64 / no_policy as f64) * 100.0
    );
    let _ = writeln!(out, "mean recall     : {:.3}", recall);
    h.emit_text("ablation_chunked", &out);
    out
}

/// Reward-design ablation: END action on/off and the three smoothings
/// (§IV-A/§IV-B design choices).
pub fn ablation_reward(h: &mut Harness) -> String {
    let profile = DatasetProfile::Coco2017;
    let train_items = h.train_items(profile);
    let items = h.eval_items(profile);
    let zoo = h.zoo.clone();
    let threshold = h.cfg.threshold;
    let episodes = h.cfg.episodes_small;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# ablation — reward design (DQN, {} episodes)",
        episodes
    );
    let _ = writeln!(
        out,
        "{:<26} {:>12} {:>12} {:>14} {:>14}",
        "variant", "models@0.8", "time@0.8 s", "trail reward", "late ep len"
    );

    let variants: Vec<(&str, TrainConfig)> = vec![
        (
            "log smoothing + END",
            TrainConfig {
                episodes,
                ..TrainConfig::new(Algo::Dqn)
            },
        ),
        (
            "no END action",
            TrainConfig {
                episodes,
                use_end_action: false,
                ..TrainConfig::new(Algo::Dqn)
            },
        ),
        (
            "mean smoothing",
            TrainConfig {
                episodes,
                reward: RewardConfig {
                    smoothing: Smoothing::Mean,
                    ..Default::default()
                },
                ..TrainConfig::new(Algo::Dqn)
            },
        ),
        (
            "raw sum (biased)",
            TrainConfig {
                episodes,
                reward: RewardConfig {
                    smoothing: Smoothing::Sum,
                    ..Default::default()
                },
                ..TrainConfig::new(Algo::Dqn)
            },
        ),
    ];
    for (name, cfg) in variants {
        let (agent, stats) = train(&train_items, zoo.len(), &cfg);
        let predictor = AgentPredictor::new(agent);
        let (m, t) = aggregate_rollouts(items.iter(), |it| {
            predictor_greedy_rollout(it, &zoo, &predictor, 0.8, threshold)
        });
        // convergence evidence: late-training reward and episode length
        // (the END action exists to let episodes stop instead of farming -1s)
        let tail = stats.episode_lengths.len() / 4;
        let late_len: f64 = stats.episode_lengths[stats.episode_lengths.len() - tail..]
            .iter()
            .map(|&l| l as f64)
            .sum::<f64>()
            / tail as f64;
        let _ = writeln!(
            out,
            "{name:<26} {m:>12.2} {t:>12.2} {:>14.2} {late_len:>14.1}",
            stats.trailing_reward(tail)
        );
    }
    let (rm, rt) = aggregate_rollouts(items.iter(), |it| {
        random_rollout(it, &zoo, 0.8, threshold, 5)
    });
    let _ = writeln!(
        out,
        "{:<26} {rm:>12.2} {rt:>12.2} {:>14} {:>14}",
        "random baseline", "-", "-"
    );
    h.emit_text("ablation_reward", &out);
    out
}

/// Relation-graph comparator (§VIII future work): graph predictor vs rules
/// vs agent at 0.8 recall.
pub fn ablation_graph(h: &mut Harness) -> String {
    let profile = DatasetProfile::Coco2017;
    let train_items = h.train_items(profile);
    let items = h.eval_items(profile);
    let zoo = h.zoo.clone();
    let catalog = h.catalog.clone();
    let threshold = h.cfg.threshold;

    let graph = ModelRelationGraph::build(&train_items, zoo.len(), catalog.len(), threshold);
    let gp = GraphPredictor::new(graph);
    let agent = AgentPredictor::new(h.agent(profile, Algo::DuelingDqn));
    let book = RuleBook::table2(&catalog);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "# ablation — relation-graph predictor vs baselines (recall 0.8)"
    );
    let _ = writeln!(out, "{:<18} {:>12} {:>12}", "policy", "models", "time s");
    type ItemRunner<'a> = Box<dyn Fn(&ItemTruth) -> Rollout + 'a>;
    let rows: Vec<(&str, ItemRunner<'_>)> = vec![
        (
            "relation-graph",
            Box::new(|it| predictor_greedy_rollout(it, &zoo, &gp, 0.8, threshold)),
        ),
        (
            "dueling-dqn",
            Box::new(|it| predictor_greedy_rollout(it, &zoo, &agent, 0.8, threshold)),
        ),
        (
            "rules",
            Box::new(|it| rule_rollout(it, &zoo, &catalog, &book, 0.8, threshold, 13)),
        ),
        (
            "random",
            Box::new(|it| random_rollout(it, &zoo, 0.8, threshold, 13)),
        ),
        (
            "optimal",
            Box::new(|it| optimal_rollout(it, &zoo, 0.8, threshold)),
        ),
    ];
    for (name, f) in &rows {
        let (m, t) = aggregate_rollouts(items.iter(), |it| f(it));
        let _ = writeln!(out, "{name:<18} {m:>12.2} {t:>12.2}");
    }
    h.emit_text("ablation_graph", &out);
    out
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

/// Q-greedy under a deadline: execute the max-Q unexecuted model that still
/// fits (the paper's "Q Greedy" baseline of Fig. 10, which ignores cost).
fn q_greedy_deadline_recall(
    predictor: &AgentPredictor,
    zoo: &ModelZoo,
    item: &ItemTruth,
    budget_ms: u64,
    threshold: f32,
) -> f64 {
    let n = zoo.len();
    let mut state = LabelSet::new(item.universe());
    let mut mask = 0u64;
    let mut remaining = budget_ms;
    let mut value = 0.0;
    loop {
        let q = predictor.predict(&state, item);
        let mut best: Option<(usize, f32)> = None;
        for (m, &v) in q.iter().enumerate() {
            if mask >> m & 1 == 1 {
                continue;
            }
            if u64::from(zoo.spec(ModelId(m as u8)).time_ms) > remaining {
                continue;
            }
            if best.map(|(_, bv)| v > bv).unwrap_or(true) {
                best = Some((m, v));
            }
        }
        let Some((m, _)) = best else { break };
        let id = ModelId(m as u8);
        mask |= 1 << m;
        remaining -= u64::from(zoo.spec(id).time_ms);
        value += item.apply(&mut state, id, threshold);
        if mask.count_ones() as usize == n {
            break;
        }
    }
    if item.total_value > 0.0 {
        value / item.total_value
    } else {
        1.0
    }
}

/// Random policy under a deadline: random order, skipping models that no
/// longer fit.
fn random_deadline_recall(
    zoo: &ModelZoo,
    item: &ItemTruth,
    budget_ms: u64,
    threshold: f32,
    seed: u64,
) -> f64 {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut order: Vec<ModelId> = zoo.ids().collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ item.scene_id.wrapping_mul(0x2545_F491));
    order.shuffle(&mut rng);
    let mut state = LabelSet::new(item.universe());
    let mut remaining = budget_ms;
    let mut value = 0.0;
    for m in order {
        let t = u64::from(zoo.spec(m).time_ms);
        if t <= remaining {
            remaining -= t;
            value += item.apply(&mut state, m, threshold);
        }
    }
    if item.total_value > 0.0 {
        value / item.total_value
    } else {
        1.0
    }
}

/// Random packing under deadline + memory: admit random fitting models,
/// wait on completions, count only models finishing before the deadline.
fn random_memory_recall(
    zoo: &ModelZoo,
    item: &ItemTruth,
    budget_ms: u64,
    mem_mb: u32,
    threshold: f32,
    seed: u64,
) -> f64 {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut order: Vec<ModelId> = zoo.ids().collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ item.scene_id.wrapping_mul(0x9E37_79B9));
    order.shuffle(&mut rng);
    let mut ex = ParallelExecutor::new(mem_mb);
    let mut state = LabelSet::new(item.universe());
    let mut value = 0.0;
    let mut pending = order;
    while ex.now_ms() < budget_ms {
        // admit every random-order model that fits memory and deadline now
        let now = ex.now_ms();
        let mut i = 0;
        while i < pending.len() {
            let spec = zoo.spec(pending[i]);
            if ex.fits(spec.mem_mb) && now + u64::from(spec.time_ms) <= budget_ms {
                let m = pending.remove(i);
                ex.admit(Job {
                    id: m.index(),
                    time_ms: spec.time_ms,
                    mem_mb: spec.mem_mb,
                })
                .expect("fits");
            } else {
                i += 1;
            }
        }
        let Some(done) = ex.wait_next() else { break };
        if ex.now_ms() <= budget_ms {
            value += item.apply(&mut state, ModelId(done.id as u8), threshold);
        }
    }
    if item.total_value > 0.0 {
        value / item.total_value
    } else {
        1.0
    }
}
