//! `run_all`: regenerates every table and figure of the paper in one pass,
//! sharing trained agents across experiments. Results land in `results/`.
//!
//! Usage: `cargo run --release -p ams-bench [-- --smoke]`

use ams_bench::experiments::*;
use ams_bench::{ExperimentConfig, Harness};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = if smoke {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::default()
    };
    eprintln!("[run_all] config: {cfg:?}");
    let started = std::time::Instant::now();
    let mut h = Harness::new(cfg);

    let mut step = |name: &str, f: &mut dyn FnMut(&mut Harness)| {
        let t0 = std::time::Instant::now();
        eprintln!("=== {name} ===");
        f(&mut h);
        eprintln!(
            "[run_all] {name} done in {:.1?} (total {:.1?})",
            t0.elapsed(),
            started.elapsed()
        );
    };

    step("table1_zoo", &mut |h| {
        table1_zoo(h);
    });
    step("fig02_policy_gap", &mut |h| {
        fig02_policy_gap(h);
    });
    step("fig04_05_prediction", &mut |h| {
        fig04_05_prediction(h);
    });
    step("table2_rules", &mut |h| {
        table2_rules(h);
    });
    step("fig06_rules_vs_agent", &mut |h| {
        fig06_rules_vs_agent(h);
    });
    step("fig07_sequence", &mut |h| {
        fig07_sequence(h);
    });
    step("fig08_transfer", &mut |h| {
        fig08_transfer(h);
    });
    step("fig09_theta", &mut |h| {
        fig09_theta(h);
    });
    step("fig10_deadline", &mut |h| {
        fig10_deadline(h);
    });
    step("fig11_memory", &mut |h| {
        fig11_memory(h);
    });
    step("fig12_transfer_deadline", &mut |h| {
        fig12_transfer_deadline(h);
    });
    step("table3_overhead", &mut |h| {
        table3_overhead(h);
    });
    step("ablation_chunked", &mut |h| {
        ablation_chunked(h);
    });
    step("ablation_reward", &mut |h| {
        ablation_reward(h);
    });
    step("ablation_graph", &mut |h| {
        ablation_graph(h);
    });

    eprintln!(
        "[run_all] all experiments complete in {:.1?}",
        started.elapsed()
    );
}
