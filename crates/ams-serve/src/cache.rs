//! Content-addressed label cache with in-flight request coalescing.
//!
//! At millions-of-users scale the traffic a labeling service sees is
//! heavily repetitive, yet without a cache every duplicate scene pays the
//! full model-invocation bill. This module deduplicates that spend on two
//! levels, keyed by the strengthened scene fingerprint
//! ([`ams_core::framework::Fingerprint::content`] — the full-content hash
//! that detects *exact* duplicates, not just affinity clusters):
//!
//! * **Exact hits** — a submission whose content hash matches an already
//!   *resolved* entry is answered before admission with a
//!   [`Completion::Labeled`](crate::Completion::Labeled) carrying the
//!   cached labels and a zero virtual-GPU bill. It never routes, never
//!   queues, never executes.
//! * **Coalescing** — a submission matching an already *queued or
//!   in-flight* fingerprint attaches to that request's [`PendingEntry`]
//!   as a *follower*: one leader executes, and when it resolves the
//!   result fans out to every follower's completion slot. Exactly-once
//!   per ticket still holds — each follower's slot resolves through the
//!   same `PENDING → RESOLVED` compare-and-swap as every other path, so a
//!   follower cancelled mid-flight keeps its `Cancelled` event and is
//!   skipped by the fan-out.
//!
//! ## Leader loss and follower promotion
//!
//! A leader can be lost while followers wait on it:
//!
//! * **Cancelled** — a cancelled leader is *not* a tombstone while its
//!   entry has waiters: it stays queued, and the worker that dequeues it
//!   executes it *for the followers* (a ghost execution: billed, fanned
//!   out, but not counted completed — the leader's own terminal event was
//!   its cancellation). The followers are effectively promoted without
//!   losing the coalescing. With no waiters the entry is abandoned and
//!   the request skipped for free.
//! * **Shed** (admission, overflow eviction, deadline, drain-abort) — the
//!   entry fails and every follower is shed with the same reason, each
//!   through its own slot CAS, each landing in the matching report
//!   bucket.
//!
//! ## Bounded memory, value-priced eviction
//!
//! The cache is sharded into lock stripes; each stripe owns a byte budget
//! (`capacity_bytes / stripes`). When an insert overflows the budget the
//! stripe evicts the resolved entry with the smallest
//! **value-per-byte × recency** score — the same value units the SLO
//! ledger prices shedding in (the leader's class-weighted predicted
//! value), so the cache keeps the bytes that bank the most value per unit
//! of memory, decayed by how long ago they were last useful.
//!
//! ## Accounting
//!
//! Hits and coalesced followers get their own conservation buckets
//! (`cache_hit`, `coalesced`, with per-class `value_cached`), recorded in
//! the [`CacheLedger`] and folded into
//! [`ServeReport`](crate::ServeReport) /
//! [`ClassReport`](crate::ClassReport) at shutdown:
//!
//! ```text
//! offered == completed + rejected + shed_* + cancelled
//!                      + cache_hit + coalesced
//! ```
//!
//! Followers shed with a failed leader land in the ordinary shed buckets
//! (their loss path is real), and a follower's cancellation stays in
//! `cancelled` — the fan-out's losing CAS keeps it out of `coalesced`.

use crate::completion::{CompletionSlot, LabelResult, ShedReason};
use crate::obs::{Event, EventKind, ServerObs, NO_SHARD, NO_TICKET};
use ams_models::{LabelId, ModelId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

/// Label-cache configuration ([`ServeConfig::cache`](crate::ServeConfig);
/// `None` disables the cache entirely — the no-cache serving path is
/// byte-for-byte what it was before this module existed).
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Lock stripes the key space is sharded over. Min 1. More stripes =
    /// less contention between concurrent submitters; the byte budget is
    /// split evenly across them.
    pub stripes: usize,
    /// Total byte budget across all stripes (approximate, counted from
    /// the cached labels + model lists). Min 1 KiB. Overflow evicts the
    /// lowest value-per-byte × recency entry in the inserting stripe.
    pub capacity_bytes: usize,
}

impl Default for CacheConfig {
    /// 8 stripes, 1 MiB — thousands of typical label sets, far more than
    /// a smoke run needs and small enough that eviction is exercised.
    fn default() -> Self {
        Self {
            stripes: 8,
            capacity_bytes: 1 << 20,
        }
    }
}

/// End-of-run cache telemetry ([`ServeReport::cache`](crate::ServeReport)).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheReport {
    /// Configured lock stripes.
    pub stripes: usize,
    /// Configured byte budget.
    pub capacity_bytes: u64,
    /// Resolved entries resident at shutdown.
    pub entries: u64,
    /// Approximate resident bytes at shutdown.
    pub bytes: u64,
    /// Results inserted over the run.
    pub insertions: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
}

/// The cached payload of one resolved fingerprint: everything a
/// [`LabelResult`] needs except the per-request identity fields.
#[derive(Debug, Clone)]
pub(crate) struct CachedResult {
    pub(crate) labels: Vec<(LabelId, f32)>,
    pub(crate) executed: Vec<ModelId>,
    pub(crate) label_value: f64,
    pub(crate) recall: f64,
}

impl CachedResult {
    /// Approximate resident size — the heap payloads plus the struct
    /// itself. Exactness doesn't matter; the eviction economics only need
    /// a consistent yardstick.
    pub(crate) fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.labels.len() * std::mem::size_of::<(LabelId, f32)>()
            + self.executed.len() * std::mem::size_of::<ModelId>()
    }
}

/// One submission waiting on another request's in-flight result.
#[derive(Debug)]
pub(crate) struct Follower {
    /// The follower's completion slot (`None` on the fire-and-forget
    /// path, which still counts toward `coalesced`).
    pub(crate) slot: Option<Arc<CompletionSlot>>,
    /// SLO class the follower was submitted under.
    pub(crate) class: usize,
    /// The follower's own class-weighted predicted value.
    pub(crate) value: f64,
    /// The follower's deadline budget from submission, µs.
    pub(crate) deadline_us: Option<u64>,
    /// When the follower attached — the start of its latency clock.
    pub(crate) submitted_at: Instant,
    /// Observability correlation id (`u64::MAX` outside a server).
    pub(crate) req_id: u64,
}

/// What [`PendingEntry::attach`] decided.
pub(crate) enum Attach {
    /// The follower is waiting on the leader; its completion arrives at
    /// fan-out.
    Attached,
    /// The leader resolved between the stripe lookup and the attach: the
    /// result is right here — an exact hit after all.
    Done(CachedResult),
    /// The leader failed (shed or abandoned) and this entry is dead; the
    /// follower gets its submission back and retries as a new leader.
    Dead(Follower),
}

#[derive(Debug)]
enum EntryState {
    /// Leader queued or in flight; followers accumulate.
    Waiting(Vec<Follower>),
    /// Leader resolved; kept in the entry so attaches racing the stripe
    /// update still find the result.
    Done(CachedResult),
    /// Leader shed or abandoned; attaches must retry as new leaders.
    Failed,
}

/// The coalescing point for one in-flight fingerprint: the leader request
/// carries an `Arc` of this through its queue life, and followers attach
/// until the leader resolves or fails.
#[derive(Debug)]
pub(crate) struct PendingEntry {
    key: u64,
    state: Mutex<EntryState>,
    ledger: Arc<CacheLedger>,
    /// Back-reference for map cleanup on failure (weak: a failed entry
    /// must not keep a dropped cache alive).
    cache: Weak<LabelCache>,
    /// Observability pipeline: follower terminal events (coalesced
    /// deliveries, follower sheds) are emitted exactly where the cache
    /// ledger counts them, so event totals reconcile with the report.
    obs: Option<Arc<ServerObs>>,
}

impl PendingEntry {
    /// Attach a follower, unless the entry already reached a terminal
    /// state. On `Attached` the follower's `offered` is recorded — its
    /// terminal bucket (`coalesced`, a shed, or `cancelled`) comes later.
    pub(crate) fn attach(&self, follower: Follower) -> Attach {
        let mut st = self.state.lock().expect("cache entry");
        match &mut *st {
            EntryState::Waiting(followers) => {
                self.ledger.record_offered(follower.class, follower.value); // ams-lint: allow(ledger-event) the follower's Admitted event was emitted by submit_inner before coalescing routed it here
                followers.push(follower);
                Attach::Attached
            }
            EntryState::Done(result) => Attach::Done(result.clone()),
            EntryState::Failed => Attach::Dead(follower),
        }
    }

    /// Resolve the entry with the leader's result and fan it out: every
    /// follower whose slot is still pending receives its own
    /// `Completion::Labeled` (zero execute time — the labels were already
    /// paid for) and is counted `coalesced`; followers that lost their
    /// slot race (cancelled) are skipped — their event already happened.
    pub(crate) fn resolve(&self, result: &CachedResult) {
        let followers = {
            let mut st = self.state.lock().expect("cache entry");
            match std::mem::replace(&mut *st, EntryState::Done(result.clone())) {
                EntryState::Waiting(followers) => followers,
                // Already terminal (failed entries stay failed — a late
                // resolve must not resurrect a key whose followers were
                // shed).
                other => {
                    *st = other;
                    return;
                }
            }
        };
        let now = Instant::now();
        for f in followers {
            let waited_us = now
                .saturating_duration_since(f.submitted_at)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            let met = f.deadline_us.is_none_or(|d| waited_us <= d);
            let delivered = match &f.slot {
                Some(slot) => slot.try_labeled(LabelResult {
                    ticket: slot.id(),
                    class: f.class,
                    labels: result.labels.clone(),
                    executed: result.executed.clone(),
                    label_value: result.label_value,
                    banked_value: f.value,
                    recall: result.recall,
                    queue_wait_us: waited_us,
                    execute_us: 0,
                    deadline_met: met,
                }),
                // Fire-and-forget followers have no slot to race a
                // cancellation on; they always count.
                None => true,
            };
            if delivered {
                self.ledger.record_coalesced(f.class, f.value);
                if let Some(obs) = &self.obs {
                    obs.emit(Event {
                        at_us: obs.now_us(),
                        req: f.req_id,
                        ticket: f.slot.as_ref().map(|s| s.id()).unwrap_or(NO_TICKET),
                        shard: NO_SHARD,
                        class: f.class as u32,
                        kind: EventKind::Coalesced,
                        detail: waited_us,
                        flag: !met,
                    });
                }
            }
        }
    }

    /// Fail the entry (leader shed on `reason`): every follower is shed
    /// with the same reason through its own slot CAS and ledgered into
    /// the matching bucket; the dead map slot is removed so the next
    /// lookup of this key starts a fresh leader. Idempotent — a second
    /// loss path on the same leader finds no followers and no map slot.
    pub(crate) fn fail(&self, reason: ShedReason) {
        let followers = {
            let mut st = self.state.lock().expect("cache entry");
            match std::mem::replace(&mut *st, EntryState::Failed) {
                EntryState::Waiting(followers) => followers,
                EntryState::Done(result) => {
                    // Resolved already — nothing to shed, keep the result.
                    *st = EntryState::Done(result);
                    return;
                }
                EntryState::Failed => return,
            }
        };
        for f in followers {
            let owned = match &f.slot {
                Some(slot) => slot.try_shed(reason),
                None => true,
            };
            if owned {
                self.ledger.record_follower_shed(f.class, f.value, reason);
                if let Some(obs) = &self.obs {
                    obs.emit(Event {
                        at_us: obs.now_us(),
                        req: f.req_id,
                        ticket: f.slot.as_ref().map(|s| s.id()).unwrap_or(NO_TICKET),
                        shard: NO_SHARD,
                        class: f.class as u32,
                        kind: EventKind::of_shed(reason),
                        detail: 0,
                        flag: false,
                    });
                }
            }
        }
        if let Some(cache) = self.cache.upgrade() {
            cache.remove_dead(self.key, self);
        }
    }

    /// Dequeue-time decision for an *unclaimed* (cancelled) leader: with
    /// waiters the worker must execute it for them (`true`); without, the
    /// entry is abandoned atomically — marked failed under the lock, so a
    /// follower racing this check gets [`Attach::Dead`] and retries as a
    /// new leader instead of attaching to a request nobody will run.
    pub(crate) fn wanted_or_abandon(&self) -> bool {
        let mut st = self.state.lock().expect("cache entry");
        match &*st {
            EntryState::Waiting(followers) if !followers.is_empty() => true,
            EntryState::Waiting(_) => {
                *st = EntryState::Failed;
                drop(st);
                if let Some(cache) = self.cache.upgrade() {
                    cache.remove_dead(self.key, self);
                }
                false
            }
            _ => false,
        }
    }
}

/// What a pre-admission cache lookup decided.
pub(crate) enum Lookup {
    /// Exact hit: answer with these labels right now, zero bill.
    Hit(CachedResult),
    /// Attached as a follower to an in-flight leader; the completion
    /// arrives at fan-out.
    Coalesced,
    /// First sighting of this fingerprint: the caller is the leader and
    /// must carry this entry through admission and execution.
    Miss(Arc<PendingEntry>),
}

/// One resolved entry resident in a stripe.
#[derive(Debug)]
struct ResolvedSlot {
    result: CachedResult,
    /// The leader's class-weighted predicted value — the eviction
    /// economics' numerator, in the same units as the SLO shed ledger.
    value: f64,
    bytes: usize,
    /// Logical clock of the last hit or insert (recency).
    last_tick: u64,
}

#[derive(Debug)]
enum Slot {
    Pending(Arc<PendingEntry>),
    Resolved(ResolvedSlot),
}

#[derive(Debug, Default)]
struct Stripe {
    map: HashMap<u64, Slot>,
    /// Approximate resident bytes of the stripe's resolved entries.
    bytes: usize,
}

/// The sharded, lock-striped, content-addressed result cache.
#[derive(Debug)]
pub(crate) struct LabelCache {
    stripes: Vec<Mutex<Stripe>>,
    stripe_budget: usize,
    capacity_bytes: usize,
    /// Logical recency clock, bumped on every lookup and insert.
    tick: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    ledger: Arc<CacheLedger>,
    /// Observability pipeline, cloned into every pending entry so
    /// fan-out and follower-shed events can be emitted from the entry.
    obs: Option<Arc<ServerObs>>,
}

impl LabelCache {
    /// A cache without observability (the in-module tests' constructor —
    /// the server always threads its `obs` through `new_with_obs`).
    #[cfg(test)]
    pub(crate) fn new(cfg: CacheConfig) -> Arc<Self> {
        Self::new_with_obs(cfg, None)
    }

    pub(crate) fn new_with_obs(cfg: CacheConfig, obs: Option<Arc<ServerObs>>) -> Arc<Self> {
        let stripes = cfg.stripes.max(1);
        let capacity_bytes = cfg.capacity_bytes.max(1024);
        Arc::new(Self {
            stripes: (0..stripes)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            stripe_budget: capacity_bytes.div_ceil(stripes),
            capacity_bytes,
            tick: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            ledger: Arc::new(CacheLedger::default()),
            obs,
        })
    }

    pub(crate) fn ledger(&self) -> &Arc<CacheLedger> {
        &self.ledger
    }

    fn stripe(&self, key: u64) -> &Mutex<Stripe> {
        // Stripe by the high bits: the low bits pick hash-map buckets, so
        // reusing them would correlate stripe and bucket occupancy.
        &self.stripes[(key >> 32) as usize % self.stripes.len()]
    }

    /// The pre-admission protocol: hit, coalesce, or become the leader.
    /// Loops only when it finds a dead pending entry to replace.
    pub(crate) fn lookup(self: &Arc<Self>, key: u64, mut follower: Follower) -> Lookup {
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        loop {
            let entry = {
                let mut stripe = self.stripe(key).lock().expect("cache stripe");
                match stripe.map.get_mut(&key) {
                    Some(Slot::Resolved(slot)) => {
                        slot.last_tick = now;
                        return Lookup::Hit(slot.result.clone());
                    }
                    Some(Slot::Pending(entry)) => Arc::clone(entry),
                    None => {
                        let entry = self.fresh_entry(key);
                        stripe.map.insert(key, Slot::Pending(Arc::clone(&entry)));
                        return Lookup::Miss(entry);
                    }
                }
            };
            match entry.attach(follower) {
                Attach::Attached => return Lookup::Coalesced,
                Attach::Done(result) => return Lookup::Hit(result),
                Attach::Dead(f) => {
                    follower = f;
                    // Replace the dead entry (unless someone beat us to
                    // it, in which case the fresh slot is re-examined).
                    let mut stripe = self.stripe(key).lock().expect("cache stripe");
                    match stripe.map.get(&key) {
                        Some(Slot::Pending(current)) if Arc::ptr_eq(current, &entry) => {
                            let fresh = self.fresh_entry(key);
                            stripe.map.insert(key, Slot::Pending(Arc::clone(&fresh)));
                            return Lookup::Miss(fresh);
                        }
                        _ => continue,
                    }
                }
            }
        }
    }

    fn fresh_entry(self: &Arc<Self>, key: u64) -> Arc<PendingEntry> {
        Arc::new(PendingEntry {
            key,
            state: Mutex::new(EntryState::Waiting(Vec::new())),
            ledger: Arc::clone(&self.ledger),
            cache: Arc::downgrade(self),
            obs: self.obs.clone(),
        })
    }

    /// Resolve a leader: fan the result out to the entry's followers,
    /// then publish it as a resolved slot (evicting within the stripe's
    /// byte budget). `value` is the leader's class-weighted predicted
    /// value — the eviction score's numerator.
    pub(crate) fn resolve(&self, entry: &Arc<PendingEntry>, result: CachedResult, value: f64) {
        entry.resolve(&result);
        let bytes = result.approx_bytes();
        let now = self.tick.fetch_add(1, Ordering::Relaxed);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        let mut stripe = self.stripe(entry.key).lock().expect("cache stripe");
        if let Some(Slot::Resolved(old)) = stripe.map.insert(
            entry.key,
            Slot::Resolved(ResolvedSlot {
                result,
                value,
                bytes,
                last_tick: now,
            }),
        ) {
            stripe.bytes = stripe.bytes.saturating_sub(old.bytes);
        }
        stripe.bytes += bytes;
        // Bounded memory: evict the lowest value-per-byte × recency
        // resolved entry until the stripe fits. Pending entries are never
        // evicted (they hold live followers); the just-inserted entry may
        // evict itself if it alone exceeds the budget.
        while stripe.bytes > self.stripe_budget {
            let victim = stripe
                .map
                .iter()
                .filter_map(|(k, slot)| match slot {
                    Slot::Resolved(s) => {
                        let age = now.saturating_sub(s.last_tick) as f64;
                        let score = (s.value / s.bytes.max(1) as f64) / (1.0 + age);
                        Some((*k, score))
                    }
                    Slot::Pending(_) => None,
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(k, _)| k);
            let Some(victim) = victim else { break };
            if let Some(Slot::Resolved(old)) = stripe.map.remove(&victim) {
                stripe.bytes = stripe.bytes.saturating_sub(old.bytes);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drop a failed entry's map slot (if it still owns it) so the next
    /// lookup of the key starts a fresh leader immediately.
    fn remove_dead(&self, key: u64, entry: &PendingEntry) {
        let mut stripe = self.stripe(key).lock().expect("cache stripe");
        if let Some(Slot::Pending(current)) = stripe.map.get(&key) {
            if std::ptr::eq(Arc::as_ptr(current), entry) {
                stripe.map.remove(&key);
            }
        }
    }

    pub(crate) fn report(&self) -> CacheReport {
        let (mut entries, mut bytes) = (0u64, 0u64);
        for stripe in &self.stripes {
            let stripe = stripe.lock().expect("cache stripe");
            entries += stripe
                .map
                .values()
                .filter(|s| matches!(s, Slot::Resolved(_)))
                .count() as u64;
            bytes += stripe.bytes as u64;
        }
        CacheReport {
            stripes: self.stripes.len(),
            capacity_bytes: self.capacity_bytes as u64,
            entries,
            bytes,
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// One class's cache ledger: offered hits/followers, terminal buckets,
/// and the follower sheds broken down by loss path (folded into the
/// matching [`ClassReport`](crate::ClassReport) buckets at shutdown).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ClassCache {
    pub(crate) offered: u64,
    pub(crate) value_offered: f64,
    pub(crate) cache_hit: u64,
    pub(crate) coalesced: u64,
    pub(crate) value_cached: f64,
    pub(crate) shed_admission: u64,
    pub(crate) shed_overflow: u64,
    pub(crate) shed_deadline: u64,
    pub(crate) shed_drain: u64,
    pub(crate) value_shed: f64,
}

/// The cache's conservation ledger, mutex-guarded like the cancellation
/// ledger and for the same reason: a terminal-event CAS and its ledger
/// entry must be one atomic step to a report reader.
#[derive(Debug, Default)]
pub(crate) struct CacheLedger {
    state: Mutex<Vec<ClassCache>>,
}

impl CacheLedger {
    fn class_mut<R>(&self, class: usize, f: impl FnOnce(&mut ClassCache) -> R) -> R {
        let mut classes = self.state.lock().expect("cache ledger");
        if classes.len() <= class {
            classes.resize(class + 1, ClassCache::default());
        }
        f(&mut classes[class])
    }

    /// An exact hit: offered and terminally `cache_hit`, in one step.
    pub(crate) fn record_hit(&self, class: usize, value: f64) {
        self.class_mut(class, |c| {
            c.offered += 1;
            c.value_offered += value;
            c.cache_hit += 1;
            c.value_cached += value;
        });
    }

    /// A follower attached: offered now, terminal bucket later.
    pub(crate) fn record_offered(&self, class: usize, value: f64) {
        self.class_mut(class, |c| {
            c.offered += 1;
            c.value_offered += value;
        });
    }

    /// A follower received its fan-out completion.
    pub(crate) fn record_coalesced(&self, class: usize, value: f64) {
        self.class_mut(class, |c| {
            c.coalesced += 1;
            c.value_cached += value;
        });
    }

    /// A follower was shed with its failed leader.
    pub(crate) fn record_follower_shed(&self, class: usize, value: f64, reason: ShedReason) {
        self.class_mut(class, |c| {
            match reason {
                ShedReason::Admission => c.shed_admission += 1,
                ShedReason::Overflow => c.shed_overflow += 1,
                ShedReason::Deadline => c.shed_deadline += 1,
                ShedReason::Drain => c.shed_drain += 1,
            }
            c.value_shed += value;
        });
    }

    /// Per-class snapshot (index = class; empty classes default-zero).
    pub(crate) fn by_class(&self) -> Vec<ClassCache> {
        self.state.lock().expect("cache ledger").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::completion::{CancelLedger, CompletionQueue, Ticket};

    fn result(labels: usize) -> CachedResult {
        CachedResult {
            labels: (0..labels).map(|i| (LabelId(i as u16), 0.9)).collect(),
            executed: vec![ModelId(0), ModelId(3)],
            label_value: 2.5,
            recall: 1.0,
        }
    }

    fn follower() -> Follower {
        Follower {
            slot: None,
            class: 0,
            value: 1.0,
            deadline_us: None,
            submitted_at: Instant::now(),
            req_id: u64::MAX,
        }
    }

    fn slotted(cq: &Arc<CompletionQueue>, id: u64) -> (Arc<CompletionSlot>, Ticket) {
        cq.issue();
        let slot = Arc::new(CompletionSlot::new(
            id,
            0,
            1.0,
            Arc::clone(cq),
            Arc::new(CancelLedger::default()),
        ));
        (Arc::clone(&slot), Ticket::new(slot))
    }

    #[test]
    fn miss_then_resolve_then_hit() {
        let cache = LabelCache::new(CacheConfig::default());
        let entry = match cache.lookup(42, follower()) {
            Lookup::Miss(entry) => entry,
            _ => panic!("first sighting must be a miss"),
        };
        cache.resolve(&entry, result(4), 1.0);
        match cache.lookup(42, follower()) {
            Lookup::Hit(r) => assert_eq!(r.labels.len(), 4),
            _ => panic!("resolved key must hit"),
        }
        let report = cache.report();
        assert_eq!(report.entries, 1);
        assert_eq!(report.insertions, 1);
        assert!(report.bytes > 0);
    }

    #[test]
    fn second_lookup_coalesces_and_fan_out_delivers_labeled() {
        let cache = LabelCache::new(CacheConfig::default());
        let entry = match cache.lookup(7, follower()) {
            Lookup::Miss(e) => e,
            _ => panic!("miss expected"),
        };
        let cq = Arc::new(CompletionQueue::new(4));
        let (slot, _ticket) = slotted(&cq, 99);
        assert!(matches!(
            cache.lookup(
                7,
                Follower {
                    slot: Some(slot),
                    ..follower()
                }
            ),
            Lookup::Coalesced
        ));
        cache.resolve(&entry, result(2), 1.0);
        let event = cq.try_recv().expect("fan-out delivered");
        let labeled = event.labeled().expect("labeled completion");
        assert_eq!(labeled.ticket, 99);
        assert_eq!(labeled.labels.len(), 2);
        assert_eq!(labeled.execute_us, 0, "zero bill for a coalesced result");
        let classes = cache.ledger().by_class();
        assert_eq!(classes[0].coalesced, 1);
        assert_eq!(classes[0].offered, 1, "only the follower is cache-offered");
    }

    #[test]
    fn failed_leader_sheds_followers_and_the_next_lookup_leads_fresh() {
        let cache = LabelCache::new(CacheConfig::default());
        let entry = match cache.lookup(11, follower()) {
            Lookup::Miss(e) => e,
            _ => panic!("miss expected"),
        };
        let cq = Arc::new(CompletionQueue::new(4));
        let (slot, _ticket) = slotted(&cq, 5);
        assert!(matches!(
            cache.lookup(
                11,
                Follower {
                    slot: Some(slot),
                    ..follower()
                }
            ),
            Lookup::Coalesced
        ));
        entry.fail(ShedReason::Deadline);
        match cq.try_recv().expect("shed delivered") {
            crate::Completion::Shed { ticket, reason, .. } => {
                assert_eq!(ticket, 5);
                assert_eq!(reason, ShedReason::Deadline);
            }
            other => panic!("expected shed, got {other:?}"),
        }
        let classes = cache.ledger().by_class();
        assert_eq!(classes[0].shed_deadline, 1);
        // The dead slot was removed: the key restarts as a fresh leader.
        assert!(matches!(cache.lookup(11, follower()), Lookup::Miss(_)));
    }

    #[test]
    fn cancelled_follower_is_skipped_by_the_fan_out() {
        let cache = LabelCache::new(CacheConfig::default());
        let entry = match cache.lookup(13, follower()) {
            Lookup::Miss(e) => e,
            _ => panic!("miss expected"),
        };
        let cq = Arc::new(CompletionQueue::new(4));
        let (slot, ticket) = slotted(&cq, 8);
        assert!(matches!(
            cache.lookup(
                13,
                Follower {
                    slot: Some(slot),
                    ..follower()
                }
            ),
            Lookup::Coalesced
        ));
        assert!(ticket.cancel());
        cache.resolve(&entry, result(1), 1.0);
        let event = cq.try_recv().expect("the cancellation event");
        assert!(event.is_cancelled(), "cancellation owns the terminal event");
        assert!(cq.try_recv().is_none(), "fan-out delivered nothing extra");
        let classes = cache.ledger().by_class();
        assert_eq!(
            classes[0].coalesced, 0,
            "a cancelled follower never coalesces"
        );
    }

    #[test]
    fn abandon_without_waiters_but_execute_with() {
        let cache = LabelCache::new(CacheConfig::default());
        let entry = match cache.lookup(21, follower()) {
            Lookup::Miss(e) => e,
            _ => panic!("miss expected"),
        };
        let wanted = match cache.lookup(21, follower()) {
            Lookup::Coalesced => entry.wanted_or_abandon(),
            _ => panic!("coalesce expected"),
        };
        assert!(wanted, "a waiter makes the ghost execution worthwhile");

        let lone = match cache.lookup(22, follower()) {
            Lookup::Miss(e) => e,
            _ => panic!("miss expected"),
        };
        assert!(!lone.wanted_or_abandon(), "no waiters: abandon");
        assert!(
            matches!(cache.lookup(22, follower()), Lookup::Miss(_)),
            "abandoned key restarts fresh"
        );
    }

    #[test]
    fn eviction_keeps_the_best_value_per_byte() {
        // Budget for roughly two of the three entries per stripe; force
        // one stripe by configuring a single stripe. Payloads are sized
        // so two of them clear the 1 KiB config floor.
        let one = result(90).approx_bytes();
        let cache = LabelCache::new(CacheConfig {
            stripes: 1,
            capacity_bytes: one * 2 + 1,
        });
        // Same bytes, different values: the low-value entry must go.
        for (key, value) in [(1u64, 5.0), (2, 0.1), (3, 4.0)] {
            let entry = match cache.lookup(key, follower()) {
                Lookup::Miss(e) => e,
                _ => panic!("miss expected"),
            };
            cache.resolve(&entry, result(90), value);
        }
        let report = cache.report();
        assert_eq!(report.evictions, 1);
        assert_eq!(report.entries, 2);
        assert!(report.bytes <= report.capacity_bytes);
        assert!(matches!(cache.lookup(1, follower()), Lookup::Hit(_)));
        assert!(
            matches!(cache.lookup(2, follower()), Lookup::Miss(_)),
            "the value-0.1 entry was the victim"
        );
        assert!(matches!(cache.lookup(3, follower()), Lookup::Hit(_)));
    }

    #[test]
    fn recency_decays_the_eviction_score() {
        let one = result(90).approx_bytes();
        let cache = LabelCache::new(CacheConfig {
            stripes: 1,
            capacity_bytes: one * 2 + 1,
        });
        for key in [1u64, 2] {
            let entry = match cache.lookup(key, follower()) {
                Lookup::Miss(e) => e,
                _ => panic!("miss expected"),
            };
            cache.resolve(&entry, result(90), 1.0);
        }
        // Touch key 1 repeatedly: key 2's equal value decays with age.
        for _ in 0..8 {
            assert!(matches!(cache.lookup(1, follower()), Lookup::Hit(_)));
        }
        let entry = match cache.lookup(3, follower()) {
            Lookup::Miss(e) => e,
            _ => panic!("miss expected"),
        };
        cache.resolve(&entry, result(90), 1.0);
        assert!(
            matches!(cache.lookup(1, follower()), Lookup::Hit(_)),
            "the recently touched entry survived"
        );
        assert!(
            matches!(cache.lookup(2, follower()), Lookup::Miss(_)),
            "the stale equal-value entry was the victim"
        );
    }
}
