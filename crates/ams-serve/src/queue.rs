//! Bounded per-shard admission queues with selectable backpressure.
//!
//! Each shard owns one [`ShardQueue`]: a mutex-guarded ring of pending
//! requests plus two condvars (producers wait on `not_full` under the
//! [`BackpressurePolicy::Block`] policy, workers wait on `not_empty`).
//! The queue is the *only* synchronization point between producers and a
//! shard's workers, and it is held only for O(1) push/pop bookkeeping —
//! never across labeling work.
//!
//! Queued requests carry their ticket's [`CompletionSlot`], so every
//! in-queue loss path — overflow eviction, the incoming-doomed shed, and
//! drain-abort — notifies its victim's client directly instead of only
//! ledgering the loss. A request cancelled while queued becomes a
//! *tombstone* (its slot already resolved); tombstones are purged for free
//! when the queue needs a slot and skipped by the workers otherwise.
//!
//! With per-class **admission reservations** configured
//! ([`ShardQueue::with_reservations`]), each SLO class is guaranteed its
//! reserved share of the queue's slots: a burst of one class cannot occupy
//! the slots another class has in reserve, and overflow eviction never
//! picks a victim from a class that is at or under its reservation (other
//! than the incoming request's own class).

use crate::cache::PendingEntry;
use crate::completion::{CompletionSlot, ShedReason};
use crate::obs::{Event, EventKind, ServerObs, NO_TICKET};
use ams_data::ItemTruth;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a full queue does to the *next* submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the producer until a worker frees a slot (lossless; pushes
    /// the queueing upstream — the paper's batch-ingestion shape).
    #[default]
    Block,
    /// Refuse the new request immediately (lossy at the edge; the caller
    /// sees the rejection and can retry elsewhere).
    Reject,
    /// Admit the new request and shed the *oldest* queued one (lossy in
    /// the queue; freshest-first, the surveillance-feed shape where a
    /// stale frame is worth less than a current one).
    ShedOldest,
}

impl BackpressurePolicy {
    /// Stable lowercase name for reports and JSON records.
    pub fn name(&self) -> &'static str {
        match self {
            BackpressurePolicy::Block => "block",
            BackpressurePolicy::Reject => "reject",
            BackpressurePolicy::ShedOldest => "shed-oldest",
        }
    }
}

/// Outcome of one submission, carrying the issued [`Ticket`](crate::Ticket)
/// when submitted through a [`Client`](crate::Client) (`T = Ticket`), or
/// nothing on the fire-and-forget server path (`T = ()`).
///
/// Every variant except [`SubmitOutcome::Rejected`] issued a ticket whose
/// terminal [`Completion`](crate::Completion) event will arrive on the
/// client's queue — for the shed variants it is already there. `Rejected`
/// carries no ticket and produces no event: the refusal itself is the
/// synchronous answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome<T = ()> {
    /// Queued; a worker will label it (or deadline-shed it at dequeue).
    Enqueued(T),
    /// Queued, at the cost of shedding a queued request
    /// ([`BackpressurePolicy::ShedOldest`] on a full queue: the head under
    /// blind shedding, the worst value-per-remaining-deadline victim
    /// under value-weighted shedding). The victim's own ticket receives
    /// the `Shed(Overflow)` event.
    EnqueuedShedOldest(T),
    /// Not queued: the queue was full and, under value-weighted shedding,
    /// the submission itself was already *doomed* (expired, or budget
    /// below the queue's drain wait) and scored strictly worst — evicting
    /// viable queued work to admit a request that would only be
    /// deadline-shed at dequeue loses a completion for nothing. Accounted
    /// in the overflow-shed ledger, exactly like an evicted request; the
    /// ticket resolves to `Shed(Overflow)` immediately.
    ShedIncoming(T),
    /// Shed at admission, before occupying a queue slot: the shard's
    /// predicted queue wait already exceeded the request's deadline, so
    /// queueing it could only convert capacity into a deadline shed. The
    /// ticket resolves to `Shed(Admission)` immediately.
    ShedAdmission(T),
    /// Answered from the content-addressed label cache before admission:
    /// the ticket's `Labeled` event (the cached labels, zero bill) is
    /// already on the client's queue. Never routed, queued, or executed.
    Cached(T),
    /// Coalesced onto an identical already-queued or in-flight request:
    /// the ticket's terminal event arrives when that leader resolves (its
    /// labels fan out) or fails (the followers are shed with it).
    Coalesced(T),
    /// Refused: the queue was full ([`BackpressurePolicy::Reject`]), the
    /// class's admission reservation was exhausted under `Reject`, or the
    /// server is shutting down. No ticket, no event.
    Rejected,
}

impl<T> SubmitOutcome<T> {
    /// Whether the submission took a queue slot (a worker will reach it).
    pub fn is_accepted(&self) -> bool {
        matches!(
            self,
            SubmitOutcome::Enqueued(_) | SubmitOutcome::EnqueuedShedOldest(_)
        )
    }

    /// Whether the submission was refused synchronously (no ticket).
    pub fn is_rejected(&self) -> bool {
        matches!(self, SubmitOutcome::Rejected)
    }

    /// The issued ticket (for every variant except `Rejected`).
    pub fn ticket(self) -> Option<T> {
        match self {
            SubmitOutcome::Enqueued(t)
            | SubmitOutcome::EnqueuedShedOldest(t)
            | SubmitOutcome::ShedIncoming(t)
            | SubmitOutcome::ShedAdmission(t)
            | SubmitOutcome::Cached(t)
            | SubmitOutcome::Coalesced(t) => Some(t),
            SubmitOutcome::Rejected => None,
        }
    }

    /// The issued ticket, by reference.
    pub fn as_ticket(&self) -> Option<&T> {
        match self {
            SubmitOutcome::Enqueued(t)
            | SubmitOutcome::EnqueuedShedOldest(t)
            | SubmitOutcome::ShedIncoming(t)
            | SubmitOutcome::ShedAdmission(t)
            | SubmitOutcome::Cached(t)
            | SubmitOutcome::Coalesced(t) => Some(t),
            SubmitOutcome::Rejected => None,
        }
    }

    /// Map the carried ticket, keeping the outcome shape.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> SubmitOutcome<U> {
        match self {
            SubmitOutcome::Enqueued(t) => SubmitOutcome::Enqueued(f(t)),
            SubmitOutcome::EnqueuedShedOldest(t) => SubmitOutcome::EnqueuedShedOldest(f(t)),
            SubmitOutcome::ShedIncoming(t) => SubmitOutcome::ShedIncoming(f(t)),
            SubmitOutcome::ShedAdmission(t) => SubmitOutcome::ShedAdmission(f(t)),
            SubmitOutcome::Cached(t) => SubmitOutcome::Cached(f(t)),
            SubmitOutcome::Coalesced(t) => SubmitOutcome::Coalesced(f(t)),
            SubmitOutcome::Rejected => SubmitOutcome::Rejected,
        }
    }
}

/// One labeling request as it sits in a shard queue.
#[derive(Debug, Clone)]
pub struct Request {
    /// The pre-executed ground-truth item to label.
    pub item: Arc<ItemTruth>,
    /// The item's affinity signature (0 under hash routing). Workers use
    /// it to assemble signature-pure batches from a mixed queue.
    pub signature: u64,
    /// SLO class index (0 when no SLO classes are configured).
    pub class: usize,
    /// Predicted label value, weighted by the SLO class (the scheduler's
    /// cheap affinity-value scan × the class weight; 1.0 without SLO
    /// classes). Value-weighted shedding evicts the worst
    /// value-per-remaining-deadline first.
    pub value: f64,
    /// Relative deadline budget from `enqueued_at`, µs (`None` =
    /// unbounded). A request whose queue age reaches this is shed at
    /// dequeue instead of executed.
    pub deadline_us: Option<u64>,
    /// When the request entered the queue (queue-wait clock starts here).
    pub enqueued_at: Instant,
    /// The submitting client's completion slot (`None` on the
    /// fire-and-forget server path).
    completion: Option<Arc<CompletionSlot>>,
    /// The label-cache coalescing entry this request leads (`None` when
    /// the cache is off or the fingerprint was already in flight). Every
    /// loss path fails it (shedding its followers); the labeling path
    /// resolves it (fanning the result out).
    cache: Option<Arc<PendingEntry>>,
    /// Observability correlation id (the server's `offered` sequence
    /// number; `u64::MAX` when the request never passed through a
    /// server's submission path).
    pub(crate) req_id: u64,
}

impl Request {
    /// A request with no SLO attached: class 0, unit value, no deadline.
    pub fn new(item: Arc<ItemTruth>, signature: u64) -> Self {
        Self {
            item,
            signature,
            class: 0,
            value: 1.0,
            deadline_us: None,
            enqueued_at: Instant::now(),
            completion: None,
            cache: None,
            req_id: u64::MAX,
        }
    }

    /// Attach the observability correlation id events are keyed by.
    pub(crate) fn with_req_id(mut self, req_id: u64) -> Self {
        self.req_id = req_id;
        self
    }

    /// Attach an SLO class: index, weighted value, and deadline budget.
    pub fn with_slo(mut self, class: usize, value: f64, deadline_us: Option<u64>) -> Self {
        self.class = class;
        self.value = value;
        self.deadline_us = deadline_us;
        self
    }

    /// Attach the submitting client's completion slot: every loss path and
    /// the labeling path will resolve it with the request's terminal event.
    pub(crate) fn with_completion(mut self, slot: Arc<CompletionSlot>) -> Self {
        self.completion = Some(slot);
        self
    }

    /// The attached completion slot, if the request was submitted through
    /// a client.
    pub(crate) fn completion(&self) -> Option<&Arc<CompletionSlot>> {
        self.completion.as_ref()
    }

    /// Attach the coalescing entry this request leads: followers of the
    /// same fingerprint wait on it for the leader's result.
    pub(crate) fn with_cache(mut self, entry: Arc<PendingEntry>) -> Self {
        self.cache = Some(entry);
        self
    }

    /// The coalescing entry this request leads, if any.
    pub(crate) fn cache_entry(&self) -> Option<&Arc<PendingEntry>> {
        self.cache.as_ref()
    }

    /// Fail the request's coalescing entry (no-op without one): its
    /// followers are shed with `reason` and the next lookup of the
    /// fingerprint starts a fresh leader. Idempotent.
    pub(crate) fn fail_cache(&self, reason: ShedReason) {
        if let Some(entry) = &self.cache {
            entry.fail(reason);
        }
    }

    /// Whether the request was cancelled (or otherwise resolved) while
    /// still queued — a dead entry the queue can drop for free. A
    /// cancelled request still *leading* a coalescing entry is **not** a
    /// tombstone: followers wait on it, so it must reach a worker (which
    /// either executes it for them or abandons the entry).
    fn is_tombstone(&self) -> bool {
        self.completion.as_ref().is_some_and(|s| s.is_resolved()) && self.cache.is_none()
    }

    /// Remaining deadline budget at `now`, µs (`None` = unbounded;
    /// `Some(0)` = already expired).
    pub fn remaining_us(&self, now: Instant) -> Option<u64> {
        self.deadline_us.map(|d| {
            let age = now
                .saturating_duration_since(self.enqueued_at)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            d.saturating_sub(age)
        })
    }

    /// Whether the deadline budget is exhausted at `now`.
    pub fn expired(&self, now: Instant) -> bool {
        self.remaining_us(now) == Some(0)
    }

    /// Absolute deadline instant (`None` = unbounded), the EDF sort key.
    fn deadline_at(&self) -> Option<Instant> {
        self.deadline_us
            .map(|d| self.enqueued_at + Duration::from_micros(d))
    }
}

/// Per-class overflow-shed ledger entry: how many requests of the class
/// were evicted on overflow, and the summed predicted value lost.
#[derive(Debug, Default, Clone, Copy)]
pub struct ClassShed {
    /// Evicted requests of this class.
    pub count: u64,
    /// Summed predicted (weighted) value of the evicted requests.
    pub value: f64,
}

#[derive(Debug, Default)]
struct QueueState {
    pending: VecDeque<Request>,
    closed: bool,
    /// Requests evicted from the queue by [`BackpressurePolicy::ShedOldest`].
    shed_oldest: u64,
    /// The evictions broken down by SLO class (index = class).
    shed_classes: Vec<ClassShed>,
    /// Queued requests per SLO class (index = class) — the admission
    /// reservations' accounting.
    class_counts: Vec<usize>,
}

impl QueueState {
    fn record_shed(&mut self, req: &Request) {
        self.shed_oldest += 1;
        if self.shed_classes.len() <= req.class {
            self.shed_classes
                .resize(req.class + 1, ClassShed::default());
        }
        self.shed_classes[req.class].count += 1;
        self.shed_classes[req.class].value += req.value;
    }

    fn class_count(&self, class: usize) -> usize {
        self.class_counts.get(class).copied().unwrap_or(0)
    }

    fn inc_class(&mut self, class: usize) {
        if self.class_counts.len() <= class {
            self.class_counts.resize(class + 1, 0);
        }
        self.class_counts[class] += 1;
    }

    fn dec_class(&mut self, class: usize) {
        if let Some(n) = self.class_counts.get_mut(class) {
            *n = n.saturating_sub(1);
        }
    }

    /// Drop every cancellation tombstone, returning how many slots were
    /// freed. Their terminal events were already delivered at cancel time,
    /// so nothing is ledgered.
    fn purge_tombstones(&mut self) -> usize {
        let before = self.pending.len();
        let mut kept = VecDeque::with_capacity(before);
        for req in self.pending.drain(..) {
            if req.is_tombstone() {
                continue;
            }
            kept.push_back(req);
        }
        let freed = before - kept.len();
        if freed > 0 {
            self.class_counts.clear();
            for req in &kept {
                let class = req.class;
                if self.class_counts.len() <= class {
                    self.class_counts.resize(class + 1, 0);
                }
                self.class_counts[class] += 1;
            }
        }
        self.pending = kept;
        freed
    }
}

/// What one eviction attempt decided (see [`ShardQueue::push`]).
enum Eviction {
    /// A queued victim was shed; the incoming request may take its slot.
    Evicted,
    /// The incoming request itself was the shed.
    ShedIncoming,
    /// The chosen victim turned out to be a cancellation tombstone (its
    /// slot resolved between selection and shedding); it was dropped for
    /// free — retry admission.
    Retry,
}

/// A bounded MPMC queue for one shard.
#[derive(Debug)]
pub struct ShardQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    policy: BackpressurePolicy,
    /// Overflow eviction picks the worst value-per-remaining-deadline
    /// victim instead of the head.
    value_weighted: bool,
    /// Dequeue picks the earliest-deadline head (EDF) instead of the
    /// oldest, so urgent work leads batch assembly.
    edf: bool,
    /// Per-class reserved queue slots (index = class; empty = no
    /// reservations). A class is always admitted while it holds fewer
    /// slots than its reservation, and the shared pool excludes the slots
    /// other classes still have in reserve.
    reservations: Vec<usize>,
    /// Per-request drain time of this queue, µs (amortized service time ÷
    /// workers), published by the shard's workers
    /// ([`ShardQueue::set_service_hint_us`]; 0 = unknown). Value-weighted
    /// eviction uses it to recognize *doomed* requests — remaining budget
    /// below the typical wait still ahead of them — and evict those
    /// first: they will be deadline-shed at dequeue anyway, so their slot
    /// is free.
    service_hint_us: AtomicU64,
    /// Observability sink (`shard index`, pipeline handle): overflow
    /// sheds emit their lifecycle event at the exact point the ledger
    /// counts them, so event totals reconcile with `shed_oldest`.
    obs: Option<(u32, Arc<ServerObs>)>,
}

impl ShardQueue {
    /// Queue holding at most `capacity` pending requests (min 1), with
    /// blind (head-first) overflow eviction and FIFO dequeue.
    pub fn new(capacity: usize, policy: BackpressurePolicy) -> Self {
        Self::with_slo(capacity, policy, false, false)
    }

    /// [`ShardQueue::new`] with the SLO-aware behaviors selectable:
    /// `value_weighted` overflow eviction and `edf` (earliest-deadline
    /// head) dequeue.
    pub fn with_slo(
        capacity: usize,
        policy: BackpressurePolicy,
        value_weighted: bool,
        edf: bool,
    ) -> Self {
        Self {
            state: Mutex::new(QueueState::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            policy,
            value_weighted,
            edf,
            reservations: Vec::new(),
            service_hint_us: AtomicU64::new(0),
            obs: None,
        }
    }

    /// Attach the observability pipeline (and this queue's shard index)
    /// so overflow evictions emit lifecycle events.
    pub(crate) fn with_obs(mut self, shard: u32, obs: Arc<ServerObs>) -> Self {
        self.obs = Some((shard, obs));
        self
    }

    /// Emit a terminal overflow-shed event for `req`, mirroring exactly
    /// the points where the queue's shed ledger counts it.
    fn emit_shed_overflow(&self, req: &Request) {
        if let Some((shard, obs)) = &self.obs {
            obs.emit(Event {
                at_us: obs.now_us(),
                req: req.req_id,
                ticket: req.completion().map(|s| s.id()).unwrap_or(NO_TICKET),
                shard: *shard,
                class: req.class as u32,
                kind: EventKind::ShedOverflow,
                detail: 0,
                flag: false,
            });
        }
    }

    /// Attach per-class admission reservations: `reservations[class]`
    /// queue slots are guaranteed to the class (clamped so the sum never
    /// exceeds the capacity — earlier classes keep their full reserve).
    /// A burst of another class can fill the *shared* slots but never the
    /// reserved ones, so no class is starved of admission.
    pub fn with_reservations(mut self, mut reservations: Vec<usize>) -> Self {
        let mut budget = self.capacity;
        for r in &mut reservations {
            *r = (*r).min(budget);
            budget -= *r;
        }
        self.reservations = reservations;
        self
    }

    /// Publish the queue's observed per-request *drain* time (µs): the
    /// workers' amortized service time divided by how many workers share
    /// this queue. Purely advisory: it sharpens the value-weighted
    /// eviction's notion of a doomed request, feeds the router's
    /// estimated-wait spill pricing, and 0 (never published) degrades
    /// gracefully to pure value-per-remaining-deadline / load-only
    /// behavior.
    pub fn set_service_hint_us(&self, us: u64) {
        self.service_hint_us.store(us, Ordering::Relaxed);
    }

    /// The currently published per-request drain hint (µs; 0 = unknown).
    /// One of the two [`ShardQueue::estimated_wait_us`] inputs, exported
    /// as a registry gauge so the wait the spill router prices is
    /// observable rather than inferred.
    pub fn service_hint_us(&self) -> u64 {
        self.service_hint_us.load(Ordering::Relaxed)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("shard queue").pending.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests currently queued that still want service — cancellation
    /// tombstones excluded (they will be dropped, not served, so they
    /// represent no drain work).
    pub fn live_len(&self) -> usize {
        self.state
            .lock()
            .expect("shard queue")
            .pending
            .iter()
            .filter(|r| !r.is_tombstone())
            .count()
    }

    /// The queue's estimated drain wait, µs: *live* depth × the published
    /// per-request drain time (0 while the workers have published no
    /// evidence). The deadline-aware spill router prices shards with this
    /// instead of raw depth; pricing with the physical length would spill
    /// deadline traffic away from a shard whose queue is full of
    /// already-cancelled tombstones.
    pub fn estimated_wait_us(&self) -> u64 {
        (self.live_len() as u64).saturating_mul(self.service_hint_us.load(Ordering::Relaxed))
    }

    /// Requests evicted on overflow so far (ShedOldest policy).
    pub fn shed_oldest_count(&self) -> u64 {
        self.state.lock().expect("shard queue").shed_oldest
    }

    /// The overflow evictions broken down by SLO class (index = class;
    /// shorter than the class count when a class never shed).
    pub fn shed_ledger(&self) -> Vec<ClassShed> {
        self.state.lock().expect("shard queue").shed_classes.clone()
    }

    /// One consistent admission snapshot — `(depth, ahead)` — under a
    /// single lock acquisition: the queued requests that still want
    /// service, and the subset whose absolute deadline falls before
    /// `deadline_at` (the work an EDF dequeue would serve *ahead of* a
    /// request with that deadline; deadline-less requests sort last under
    /// EDF and are never counted). Cancellation tombstones count toward
    /// neither number — they will be dropped, not served, so they are no
    /// drain work and no real occupancy (a push purges them before
    /// applying backpressure): pricing them would shed fresh requests
    /// against dead backlog. Admission control prices an EDF queue with
    /// `ahead` instead of the depth — an urgent request doesn't wait
    /// behind lax work it will overtake — and checks fullness against
    /// `depth` from the *same* snapshot, so the decision is internally
    /// consistent.
    pub fn queued_ahead(&self, deadline_at: Instant) -> (usize, usize) {
        let st = self.state.lock().expect("shard queue");
        let mut depth = 0usize;
        let mut ahead = 0usize;
        for r in &st.pending {
            if r.is_tombstone() {
                continue;
            }
            depth += 1;
            if r.deadline_at().is_some_and(|d| d < deadline_at) {
                ahead += 1;
            }
        }
        (depth, ahead)
    }

    /// Whether `class` may take a slot right now: the queue has room and
    /// the class either sits under its own reservation or the shared pool
    /// (capacity minus the slots other classes still hold in reserve) has
    /// space.
    fn admittable(&self, st: &QueueState, class: usize) -> bool {
        if st.pending.len() >= self.capacity {
            return false;
        }
        if self.reservations.is_empty() {
            return true;
        }
        if st.class_count(class) < self.reservations.get(class).copied().unwrap_or(0) {
            return true;
        }
        let held: usize = self
            .reservations
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != class)
            .map(|(k, &r)| r.saturating_sub(st.class_count(k)))
            .sum();
        st.pending.len() + held < self.capacity
    }

    /// Whether a queued request of `victim_class` may be evicted to admit
    /// a request of `incoming_class`: its class must be strictly over its
    /// reservation (eviction never dips a class below its guaranteed
    /// share), except that the incoming class may always cannibalize its
    /// own queue.
    fn evictable(&self, st: &QueueState, victim_class: usize, incoming_class: usize) -> bool {
        if self.reservations.is_empty() || victim_class == incoming_class {
            return true;
        }
        st.class_count(victim_class) > self.reservations.get(victim_class).copied().unwrap_or(0)
    }

    /// Eviction sort key for one request, smallest shed first:
    ///
    /// * tier 0 — *doomed* (remaining budget at or below `doom_wait_us`,
    ///   the typical wait still ahead of it: it will be deadline-shed at
    ///   dequeue anyway, so shedding it costs nothing), keyed by raw
    ///   value so the cheapest doomed request goes first;
    /// * tier 1 — viable, keyed by **value-per-remaining-deadline**: low
    ///   value and far-off deadlines both lower the score, so the queue
    ///   keeps the work worth the most per unit of urgency — the
    ///   economics of value-maximizing labeling under a time budget.
    ///
    /// A request without a deadline competes as infinitely lax: it is
    /// never doomed, but any similarly valued request actually racing a
    /// clock outranks it.
    fn victim_key(r: &Request, now: Instant, doom_wait_us: u64) -> (u8, f64) {
        match r.remaining_us(now) {
            Some(remaining) if remaining <= doom_wait_us => (0, r.value),
            Some(remaining) => (1, r.value / remaining.max(1) as f64),
            None => (1, r.value / u64::MAX as f64),
        }
    }

    /// The evictable queued request with the smallest [`victim_key`] — the
    /// overflow victim under value-weighted shedding — plus its key and
    /// the doom horizon used (half the queue depth × the published
    /// per-request drain time), so the caller can score the incoming
    /// request against the same yardstick without re-deriving it.
    ///
    /// [`victim_key`]: ShardQueue::victim_key
    fn pick_victim(
        &self,
        st: &QueueState,
        incoming_class: usize,
        now: Instant,
    ) -> Option<(usize, (u8, f64), u64)> {
        let hint = self.service_hint_us.load(Ordering::Relaxed);
        let doom_wait_us = hint.saturating_mul(st.pending.len() as u64 / 2);
        let mut victim: Option<(usize, (u8, f64))> = None;
        for (i, r) in st.pending.iter().enumerate() {
            if !self.evictable(st, r.class, incoming_class) {
                continue;
            }
            let key = Self::victim_key(r, now, doom_wait_us);
            if victim.map(|(_, worst)| key < worst).unwrap_or(true) {
                victim = Some((i, key));
            }
        }
        victim.map(|(i, key)| (i, key, doom_wait_us))
    }

    /// One overflow-eviction attempt under ShedOldest (queue full for the
    /// incoming request's class). Resolves the victim's completion slot
    /// with `Shed(Overflow)`; a victim that turned out to be a
    /// cancellation tombstone is dropped without ledgering and the caller
    /// retries.
    fn evict_for(&self, st: &mut QueueState, req: &Request, now: Instant) -> Eviction {
        let picked = if self.value_weighted {
            // A *doomed* incoming request (tier 0: expired, or budget
            // already below the queue's drain wait) that also scores
            // worse than every evictable queued request is itself the
            // shed — evicting viable queued work to admit a request that
            // will only be deadline-shed at dequeue loses a completion
            // for nothing. A viable newcomer always gets its slot: value
            // density naturally reads lower on a fresh full budget than
            // on aged queued work, and shedding fresh-but-lax traffic on
            // that alone would invert the freshest-first instinct that
            // makes overflow eviction work.
            match self.pick_victim(st, req.class, now) {
                Some((victim, victim_key, doom_wait_us)) => {
                    let incoming_key = Self::victim_key(req, now, doom_wait_us);
                    if incoming_key.0 == 0 && incoming_key < victim_key {
                        return Eviction::ShedIncoming;
                    }
                    Some(victim)
                }
                None => None,
            }
        } else {
            // Blind: the oldest (front-most) evictable request.
            (0..st.pending.len()).find(|&i| self.evictable(st, st.pending[i].class, req.class))
        };
        let Some(victim) = picked else {
            // Every queued request is protected by a reservation the
            // incoming class may not touch: the newcomer is the shed.
            return Eviction::ShedIncoming;
        };
        let shed = st.pending.remove(victim).expect("victim index in range");
        st.dec_class(shed.class);
        // An evicted coalescing leader takes its followers with it: each
        // is shed with `Overflow` through its own slot CAS. This runs for
        // the already-cancelled victim too — eviction removes the entry's
        // only path to a worker, so its followers must not wait forever.
        shed.fail_cache(ShedReason::Overflow);
        match shed.completion() {
            Some(slot) if !slot.try_shed(ShedReason::Overflow) => {
                // Cancelled between selection and shedding: its event was
                // already delivered, so this was a free purge, not a shed.
                Eviction::Retry
            }
            _ => {
                st.record_shed(&shed);
                self.emit_shed_overflow(&shed);
                Eviction::Evicted
            }
        }
    }

    /// Submit one request under the queue's backpressure policy. The
    /// request's `enqueued_at` is stamped when it actually takes a slot
    /// (after any [`BackpressurePolicy::Block`] wait), so the queue-wait
    /// clock never charges producer-side blocking.
    pub fn push(&self, mut req: Request) -> SubmitOutcome {
        let mut st = self.state.lock().expect("shard queue");
        let mut outcome = SubmitOutcome::Enqueued(());
        let mut evicted = false;
        while !self.admittable(&st, req.class) {
            if st.closed {
                return SubmitOutcome::Rejected;
            }
            // Cancellation tombstones are free slots; drop them first.
            if st.purge_tombstones() > 0 {
                continue;
            }
            match self.policy {
                BackpressurePolicy::Block => {
                    st = self.not_full.wait(st).expect("shard queue");
                }
                BackpressurePolicy::Reject => return SubmitOutcome::Rejected,
                BackpressurePolicy::ShedOldest => {
                    match self.evict_for(&mut st, &req, Instant::now()) {
                        Eviction::Evicted => {
                            evicted = true;
                            outcome = SubmitOutcome::EnqueuedShedOldest(());
                        }
                        Eviction::ShedIncoming => {
                            st.record_shed(&req);
                            self.emit_shed_overflow(&req);
                            // The incoming request may already lead a
                            // coalescing entry (the lookup ran before
                            // admission): shed its followers with it.
                            req.fail_cache(ShedReason::Overflow);
                            if let Some(slot) = req.completion() {
                                slot.try_shed(ShedReason::Overflow);
                            }
                            // No slot was freed and nothing was queued:
                            // waiting workers and producers are
                            // unaffected.
                            return SubmitOutcome::ShedIncoming(());
                        }
                        Eviction::Retry => {}
                    }
                }
            }
        }
        if st.closed {
            return SubmitOutcome::Rejected;
        }
        req.enqueued_at = Instant::now();
        st.inc_class(req.class);
        st.pending.push_back(req);
        drop(st);
        self.not_empty.notify_one();
        if evicted {
            // The class mix changed: a producer blocked on a reservation
            // may be admittable now even though the depth is unchanged.
            self.not_full.notify_all();
        }
        outcome
    }

    /// Pop up to `max_batch` requests, blocking while the queue is open
    /// and empty. Returns an empty vec only when the queue is closed *and*
    /// drained — the worker's signal to exit. Equivalent to
    /// [`ShardQueue::pop_batch_lingering`] with a zero linger: coalescing
    /// is opportunistic, so an idle server stays low-latency.
    ///
    /// The batch is assembled *signature-first*: the head request (always
    /// served — no starvation) sets the batch's signature, every queued
    /// request sharing it joins next (their model sets overlap most, so
    /// they coalesce best), and the batch is then topped up with the
    /// remaining requests in decreasing signature *overlap* with the head
    /// (shared fingerprint bits = shared models = shared setup charges),
    /// age breaking ties. Under hash routing every signature is 0, which
    /// degenerates to the plain FIFO drain. The head is always served, so
    /// no request starves; a request can be overtaken only while batches
    /// ahead of it keep finding better-matching work.
    pub fn pop_batch(&self, max_batch: usize) -> Vec<Request> {
        self.pop_batch_lingering(max_batch, Duration::ZERO)
    }

    /// [`ShardQueue::pop_batch`] with a *batching linger*: once the first
    /// request is available, wait up to `linger` for the batch to fill
    /// before taking it (the classic serving trade — a bounded latency
    /// deposit buys a fuller, better-amortized batch on a lightly loaded
    /// shard). A closed queue never lingers: drain stays prompt.
    ///
    /// The linger is additionally capped by **half the tightest remaining
    /// deadline budget** among the queued requests (cancellation
    /// tombstones excluded — a dead entry must not cap a live batch): an
    /// uncapped linger longer than a request's deadline would hold a
    /// perfectly dequeued-able batch until its members expire, converting
    /// completable work into deadline sheds. Half, not all, of the budget
    /// is spent lingering so the batch still has the other half to
    /// actually execute in. The cap is recomputed on every wakeup, so a
    /// tight-deadline request that arrives *mid-linger* shortens the
    /// remaining wait instead of being held past its whole budget.
    pub fn pop_batch_lingering(&self, max_batch: usize, linger: Duration) -> Vec<Request> {
        let max_batch = max_batch.max(1);
        let mut st = self.state.lock().expect("shard queue");
        while st.pending.is_empty() && !st.closed {
            st = self.not_empty.wait(st).expect("shard queue");
        }
        if !linger.is_zero() && !st.closed && st.pending.len() < max_batch {
            // The effective pop deadline is kept *monotone non-increasing*
            // across wakeups: each iteration may only pull it earlier (a
            // tight-deadline arrival shortens the wait), never later.
            // Recomputing `now + remaining/2` from scratch each wakeup
            // would drift *later* as the tightest request ages (it
            // resolves to enqueue + budget/2 + age/2), letting a trickle
            // of wakeups stretch the linger across the whole budget.
            let mut until = Instant::now() + linger;
            while st.pending.len() < max_batch && !st.closed {
                let now = Instant::now();
                if let Some(tightest) = st
                    .pending
                    .iter()
                    .filter(|r| !r.is_tombstone())
                    .filter_map(|r| r.remaining_us(now))
                    .min()
                {
                    until = until.min(now + Duration::from_micros(tightest / 2));
                }
                let Some(remaining) = until.checked_duration_since(now) else {
                    break;
                };
                if remaining.is_zero() {
                    break;
                }
                let (guard, timeout) = self
                    .not_empty
                    .wait_timeout(st, remaining)
                    .expect("shard queue");
                st = guard;
                if timeout.timed_out() {
                    // `until` only ever moves earlier, so a timeout at it
                    // is final.
                    break;
                }
            }
        }
        let take = st.pending.len().min(max_batch);
        let mut batch: Vec<Request> = Vec::with_capacity(take);
        if take > 0 {
            // Head selection: oldest (FIFO, no starvation) — or, under EDF
            // dequeue, the earliest absolute deadline, so the most urgent
            // request leads batch assembly and signature coalescing groups
            // around *it*. Deadline-less requests sort strictly last
            // (leading bool, not a far-future sentinel that a long enough
            // real deadline could overtake); ties fall back to queue
            // order.
            let anchor = Instant::now();
            let edf_key = |r: &Request| {
                let d = r.deadline_at();
                (d.is_none(), d.unwrap_or(anchor))
            };
            let head_idx = if self.edf {
                (0..st.pending.len())
                    .min_by_key(|&i| (edf_key(&st.pending[i]), i))
                    .expect("take > 0")
            } else {
                0
            };
            let head_sig = st.pending[head_idx].signature;
            // Batch-member indices in batch order: same-signature first,
            // then the best-overlap rest — each group in queue order, or
            // in deadline order under EDF (so EDF and coalescing compose:
            // the urgent head still gets a signature-pure batch, and
            // within that batch the clock-racing members go first).
            let mut order: Vec<usize> = (0..st.pending.len())
                .filter(|&i| st.pending[i].signature == head_sig)
                .collect();
            if self.edf {
                order.sort_by_key(|&i| (edf_key(&st.pending[i]), i));
            }
            order.truncate(take);
            if order.len() < take {
                // Fill by similarity: most shared fingerprint bits first,
                // oldest (or most urgent, under EDF) among equals.
                let mut rest: Vec<(u32, usize)> = st
                    .pending
                    .iter()
                    .enumerate()
                    .filter(|(_, req)| req.signature != head_sig)
                    .map(|(i, req)| ((req.signature & head_sig).count_ones(), i))
                    .collect();
                if self.edf {
                    rest.sort_by(|a, b| {
                        b.0.cmp(&a.0).then(
                            (edf_key(&st.pending[a.1]), a.1).cmp(&(edf_key(&st.pending[b.1]), b.1)),
                        )
                    });
                } else {
                    rest.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                }
                for (_, i) in rest {
                    order.push(i);
                    if order.len() == take {
                        break;
                    }
                }
            }
            // Remove highest-index-first so earlier indices stay valid,
            // then emit in batch order.
            let mut desc = order.clone();
            desc.sort_unstable_by(|a, b| b.cmp(a));
            let mut tagged: Vec<(usize, Request)> = Vec::with_capacity(take);
            for i in desc {
                let req = st.pending.remove(i).expect("picked index in range");
                st.dec_class(req.class);
                tagged.push((i, req));
            }
            for want in order {
                let pos = tagged
                    .iter()
                    .position(|&(i, _)| i == want)
                    .expect("every picked index was removed");
                batch.push(tagged.swap_remove(pos).1);
            }
        }
        drop(st);
        if !batch.is_empty() {
            // Freed up to `take` slots; wake blocked producers.
            self.not_full.notify_all();
        }
        batch
    }

    /// Close the queue: subsequent pushes are rejected, blocked producers
    /// wake and see the rejection, and workers drain what remains.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("shard queue");
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Close the queue *and discard its backlog*: the abort path
    /// ([`AmsServer`](crate::AmsServer) dropped without `shutdown`).
    /// Returns the discarded requests so the caller can resolve their
    /// completion slots with `Shed(Drain)`; workers see a closed, empty
    /// queue and exit promptly.
    pub fn abort(&self) -> Vec<Request> {
        let mut st = self.state.lock().expect("shard queue");
        st.closed = true;
        let discarded: Vec<Request> = st.pending.drain(..).collect();
        st.class_counts.clear();
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
        discarded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_data::{Dataset, DatasetProfile, TruthTable};
    use ams_models::ModelZoo;

    fn item() -> Arc<ItemTruth> {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 1, 5);
        let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        Arc::new(truth.item(0).clone())
    }

    fn req(it: &Arc<ItemTruth>, sig: u64) -> Request {
        Request::new(Arc::clone(it), sig)
    }

    #[test]
    fn reject_policy_refuses_when_full() {
        let q = ShardQueue::new(2, BackpressurePolicy::Reject);
        let it = item();
        assert_eq!(q.push(req(&it, 0)), SubmitOutcome::Enqueued(()));
        assert_eq!(q.push(req(&it, 0)), SubmitOutcome::Enqueued(()));
        assert_eq!(q.push(req(&it, 0)), SubmitOutcome::Rejected);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn shed_oldest_drops_head_and_admits() {
        let q = ShardQueue::new(2, BackpressurePolicy::ShedOldest);
        let it = item();
        q.push(req(&it, 0));
        q.push(req(&it, 0));
        assert_eq!(q.push(req(&it, 0)), SubmitOutcome::EnqueuedShedOldest(()));
        assert_eq!(q.len(), 2, "still at capacity");
        assert_eq!(q.shed_oldest_count(), 1);
        let ledger = q.shed_ledger();
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger[0].count, 1);
        assert!((ledger[0].value - 1.0).abs() < 1e-12, "unit default value");
    }

    #[test]
    fn block_policy_waits_for_a_slot() {
        let q = Arc::new(ShardQueue::new(1, BackpressurePolicy::Block));
        let it = item();
        q.push(req(&it, 0));
        let q2 = Arc::clone(&q);
        let r2 = req(&it, 0);
        let producer = std::thread::spawn(move || q2.push(r2));
        // Give the producer time to block, then free the slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let drained = q.pop_batch(1);
        assert_eq!(drained.len(), 1);
        assert_eq!(
            producer.join().expect("producer"),
            SubmitOutcome::Enqueued(())
        );
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_batch_coalesces_up_to_max() {
        let q = ShardQueue::new(16, BackpressurePolicy::Block);
        let it = item();
        for _ in 0..5 {
            q.push(req(&it, 0));
        }
        assert_eq!(q.pop_batch(3).len(), 3);
        assert_eq!(q.pop_batch(3).len(), 2, "takes what's there, no waiting");
    }

    #[test]
    fn pop_batch_groups_head_signature_first_then_tops_up() {
        let q = ShardQueue::new(16, BackpressurePolicy::Block);
        let it = item();
        // Interleaved signatures: A B A B A
        for sig in [7u64, 9, 7, 9, 7] {
            q.push(req(&it, sig));
        }
        let batch = q.pop_batch(4);
        assert_eq!(batch.len(), 4, "fills from the rest after the sig group");
        let sigs: Vec<u64> = batch.iter().map(|r| r.signature).collect();
        // All three sig-7 requests (the head's signature) come first, then
        // the oldest sig-9 tops the batch up.
        assert_eq!(sigs, vec![7, 7, 7, 9]);
        // The remaining request is the younger sig-9.
        let rest = q.pop_batch(4);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].signature, 9);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = ShardQueue::new(8, BackpressurePolicy::Block);
        let it = item();
        q.push(req(&it, 0));
        q.close();
        assert_eq!(q.push(req(&it, 0)), SubmitOutcome::Rejected);
        assert_eq!(q.pop_batch(8).len(), 1, "remaining work drains");
        assert!(q.pop_batch(8).is_empty(), "then workers see the close");
    }

    #[test]
    fn abort_discards_the_backlog_and_closes() {
        let q = ShardQueue::new(8, BackpressurePolicy::Block);
        let it = item();
        q.push(req(&it, 0));
        q.push(req(&it, 0));
        let discarded = q.abort();
        assert_eq!(discarded.len(), 2, "backlog handed back for Drain sheds");
        assert!(q.pop_batch(8).is_empty(), "workers see closed + empty");
        assert_eq!(q.push(req(&it, 0)), SubmitOutcome::Rejected);
    }

    #[test]
    fn value_weighted_eviction_drops_worst_value_density() {
        let q = ShardQueue::with_slo(3, BackpressurePolicy::ShedOldest, true, false);
        let it = item();
        // Three queued: generous deadlines, values 5 / 0.5 / 3. The blind
        // policy would evict the head (value 5); value-weighted must evict
        // the value-0.5 request — worst value-per-remaining-deadline.
        q.push(req(&it, 0).with_slo(0, 5.0, Some(1_000_000)));
        q.push(req(&it, 0).with_slo(1, 0.5, Some(1_000_000)));
        q.push(req(&it, 0).with_slo(0, 3.0, Some(1_000_000)));
        assert_eq!(
            q.push(req(&it, 0).with_slo(0, 2.0, Some(1_000_000))),
            SubmitOutcome::EnqueuedShedOldest(())
        );
        let ledger = q.shed_ledger();
        assert_eq!(ledger.len(), 2, "class-1 victim recorded");
        assert_eq!(ledger[1].count, 1);
        assert!((ledger[1].value - 0.5).abs() < 1e-12);
        let values: Vec<f64> = q.pop_batch(4).iter().map(|r| r.value).collect();
        assert_eq!(values, vec![5.0, 3.0, 2.0], "high-value work survived");
    }

    #[test]
    fn value_weighted_eviction_prefers_an_expired_request() {
        let q = ShardQueue::with_slo(2, BackpressurePolicy::ShedOldest, true, false);
        let it = item();
        // The high-value request is already expired (zero budget) — it
        // would be deadline-shed at dequeue anyway, so evicting it loses
        // nothing even though its value density would otherwise keep it.
        q.push(req(&it, 0).with_slo(0, 100.0, Some(0)));
        q.push(req(&it, 0).with_slo(0, 1.0, Some(1_000_000)));
        assert_eq!(
            q.push(req(&it, 0).with_slo(0, 1.0, Some(1_000_000))),
            SubmitOutcome::EnqueuedShedOldest(())
        );
        let survivors = q.pop_batch(4);
        assert_eq!(survivors.len(), 2);
        assert!(
            survivors.iter().all(|r| r.value == 1.0),
            "the expired 100-value request was the victim"
        );
    }

    #[test]
    fn edf_pop_serves_earliest_deadline_first_within_signature_groups() {
        let q = ShardQueue::with_slo(16, BackpressurePolicy::Block, false, true);
        let it = item();
        // Two signature groups; deadlines deliberately out of queue order.
        // Group 7 holds the tightest deadline overall, so it leads.
        q.push(req(&it, 9).with_slo(0, 1.0, Some(500_000)));
        q.push(req(&it, 7).with_slo(0, 1.0, Some(400_000)));
        q.push(req(&it, 9).with_slo(0, 1.0, Some(100_000)));
        q.push(req(&it, 7).with_slo(0, 1.0, Some(50_000)));
        let batch = q.pop_batch(3);
        let got: Vec<(u64, Option<u64>)> =
            batch.iter().map(|r| (r.signature, r.deadline_us)).collect();
        // Head = tightest deadline (sig 7, 50ms); its signature group
        // joins in deadline order; the most urgent sig-9 tops up.
        assert_eq!(
            got,
            vec![(7, Some(50_000)), (7, Some(400_000)), (9, Some(100_000))]
        );
    }

    /// Regression (linger > deadline): a lingering worker used to hold a
    /// dequeued-able request past its whole deadline budget, guaranteeing
    /// a deadline shed. The linger is now capped by half the tightest
    /// remaining budget, so the request comes back with time to execute.
    #[test]
    fn linger_is_capped_by_the_head_requests_remaining_deadline() {
        let q = ShardQueue::new(16, BackpressurePolicy::Block);
        let it = item();
        // 60 ms budget, 2 s linger: uncapped, the pop would sit out the
        // full 2 s (queue never fills) and return an expired request.
        q.push(req(&it, 0).with_slo(0, 1.0, Some(60_000)));
        let t0 = Instant::now();
        let batch = q.pop_batch_lingering(8, Duration::from_secs(2));
        let waited = t0.elapsed();
        assert_eq!(batch.len(), 1);
        assert!(
            waited < Duration::from_millis(60),
            "linger must stop within half the 60ms budget, waited {waited:?}"
        );
        assert!(
            !batch[0].expired(Instant::now()),
            "the request comes back dequeued-able, not doomed"
        );
    }

    /// Regression: the linger cap used to be computed once at linger
    /// start, so a tight-deadline request arriving *mid-linger* was held
    /// for the full (already uncapped) linger and doomed. The cap is now
    /// recomputed on every wakeup.
    #[test]
    fn request_arriving_mid_linger_tightens_the_cap() {
        let q = Arc::new(ShardQueue::new(16, BackpressurePolicy::Block));
        let it = item();
        // A deadline-less request starts the linger with no cap at all.
        q.push(req(&it, 0));
        let q2 = Arc::clone(&q);
        let it2 = Arc::clone(&it);
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            // 60 ms budget lands mid-linger: the worker must wake, adopt
            // the new cap, and return well before the 2 s linger.
            q2.push(req(&it2, 0).with_slo(0, 1.0, Some(60_000)));
        });
        let t0 = Instant::now();
        let batch = q.pop_batch_lingering(8, Duration::from_secs(2));
        let waited = t0.elapsed();
        pusher.join().expect("pusher");
        assert_eq!(batch.len(), 2);
        assert!(
            waited < Duration::from_millis(200),
            "cap must tighten mid-linger, waited {waited:?}"
        );
        assert!(!batch[1].expired(Instant::now()), "still completable");
    }

    /// Value-weighted overflow considers the *incoming* request too: a
    /// newcomer that scores strictly worst (here: already expired) is
    /// itself shed instead of evicting viable queued work.
    #[test]
    fn worthless_incoming_request_is_shed_instead_of_viable_queued_work() {
        let q = ShardQueue::with_slo(2, BackpressurePolicy::ShedOldest, true, false);
        let it = item();
        q.push(req(&it, 0).with_slo(0, 5.0, Some(1_000_000)));
        q.push(req(&it, 0).with_slo(0, 3.0, Some(1_000_000)));
        // Expired on arrival: admitting it could only convert a viable
        // queued request into a shed.
        assert_eq!(
            q.push(req(&it, 0).with_slo(1, 9.0, Some(0))),
            SubmitOutcome::ShedIncoming(())
        );
        let ledger = q.shed_ledger();
        assert_eq!(ledger.len(), 2, "the class-1 newcomer was the shed");
        assert_eq!(ledger[1].count, 1);
        assert!((ledger[1].value - 9.0).abs() < 1e-12);
        let values: Vec<f64> = q.pop_batch(4).iter().map(|r| r.value).collect();
        assert_eq!(values, vec![5.0, 3.0], "queued work untouched");
    }

    /// Regression: recomputing the cap as `now + remaining/2` from
    /// scratch on every wakeup drifts *later* as the tightest request
    /// ages, so a trickle of deadline-less arrivals (each waking the
    /// lingering worker without filling the batch) could stretch the
    /// linger across the whole budget. The effective deadline must be
    /// monotone non-increasing across wakeups.
    #[test]
    fn trickle_of_wakeups_cannot_stretch_the_linger_cap() {
        let q = Arc::new(ShardQueue::new(64, BackpressurePolicy::Block));
        let it = item();
        // 80 ms budget: the cap fixes the pop at ~40 ms after this push.
        q.push(req(&it, 0).with_slo(0, 1.0, Some(80_000)));
        let q2 = Arc::clone(&q);
        let it2 = Arc::clone(&it);
        let trickler = std::thread::spawn(move || {
            // Wake the lingering worker every ~10 ms without ever
            // filling the 32-wide batch.
            for _ in 0..12 {
                std::thread::sleep(Duration::from_millis(10));
                q2.push(Request::new(Arc::clone(&it2), 0));
            }
        });
        let t0 = Instant::now();
        let batch = q.pop_batch_lingering(32, Duration::from_secs(2));
        let waited = t0.elapsed();
        assert!(!batch.is_empty());
        assert!(
            waited < Duration::from_millis(70),
            "wakeups must not extend the 40ms cap toward the full 80ms \
             budget, waited {waited:?}"
        );
        trickler.join().expect("trickler");
    }

    #[test]
    fn deadline_less_requests_never_cap_the_linger() {
        let q = ShardQueue::new(16, BackpressurePolicy::Block);
        let it = item();
        q.push(req(&it, 0));
        let t0 = Instant::now();
        let batch = q.pop_batch_lingering(8, Duration::from_millis(40));
        assert_eq!(batch.len(), 1);
        assert!(
            t0.elapsed() >= Duration::from_millis(35),
            "without deadlines the full linger is spent"
        );
    }

    /// Admission reservations: a flood of class 0 can fill the shared
    /// slots but never the slots class 1 holds in reserve, so class 1 is
    /// still admitted at the flood's peak — and eviction never dips
    /// class 1 below its guaranteed share.
    #[test]
    fn reservations_protect_a_class_from_a_foreign_flood() {
        // Capacity 4, class 1 reserves 2 slots.
        for policy in [BackpressurePolicy::Reject, BackpressurePolicy::ShedOldest] {
            let q = ShardQueue::with_slo(4, policy, false, false).with_reservations(vec![0, 2]);
            let it = item();
            // Class-0 flood: only the 2 shared slots admit.
            let mut admitted0 = 0;
            for _ in 0..6 {
                if q.push(req(&it, 0).with_slo(0, 1.0, None)).is_accepted() {
                    admitted0 += 1;
                }
            }
            // Under ShedOldest the flood churns the shared slots among
            // itself (evicting its own class), never the reserve.
            assert_eq!(q.len(), 2, "{policy:?}: only the shared slots fill");
            // Class 1 still gets its reserved slots.
            assert!(q.push(req(&it, 0).with_slo(1, 1.0, None)).is_accepted());
            assert!(q.push(req(&it, 0).with_slo(1, 1.0, None)).is_accepted());
            assert_eq!(q.len(), 4);
            match policy {
                BackpressurePolicy::Reject => assert_eq!(admitted0, 2),
                _ => assert!(admitted0 >= 2),
            }
            // A further class-0 push may not evict class 1's reserve.
            let outcome = q.push(req(&it, 0).with_slo(0, 1.0, None));
            let batch = q.pop_batch(8);
            let class1 = batch.iter().filter(|r| r.class == 1).count();
            assert_eq!(class1, 2, "{policy:?}: the reserve survived {outcome:?}");
        }
    }

    /// With every queued request protected by a foreign reservation, a
    /// ShedOldest newcomer with no reserve of its own is itself the shed.
    #[test]
    fn newcomer_is_shed_when_every_slot_is_reserved_by_others() {
        let q = ShardQueue::with_slo(2, BackpressurePolicy::ShedOldest, false, false)
            .with_reservations(vec![0, 2]);
        let it = item();
        assert!(q.push(req(&it, 0).with_slo(1, 1.0, None)).is_accepted());
        assert!(q.push(req(&it, 0).with_slo(1, 1.0, None)).is_accepted());
        assert_eq!(
            q.push(req(&it, 0).with_slo(0, 1.0, None)),
            SubmitOutcome::ShedIncoming(())
        );
        let ledger = q.shed_ledger();
        assert_eq!(ledger[0].count, 1, "the class-0 newcomer was the shed");
        assert_eq!(q.pop_batch(4).len(), 2, "class-1 work untouched");
    }

    /// Regression: cancellation tombstones must not inflate the admission
    /// snapshot or the router's wait estimate — a queue full of cancelled
    /// entries is no drain work, and pricing it as backlog would shed or
    /// spill fresh requests against dead weight.
    #[test]
    fn tombstones_are_excluded_from_admission_pricing() {
        use crate::completion::{CancelLedger, CompletionQueue, CompletionSlot, Ticket};
        let q = ShardQueue::new(4, BackpressurePolicy::Block);
        let it = item();
        let cq = Arc::new(CompletionQueue::new(8));
        let ledger = Arc::new(CancelLedger::default());
        let mut tickets = Vec::new();
        for id in 0..3u64 {
            cq.issue();
            let slot = Arc::new(CompletionSlot::new(
                id,
                0,
                1.0,
                Arc::clone(&cq),
                Arc::clone(&ledger),
            ));
            tickets.push(Ticket::new(Arc::clone(&slot)));
            q.push(
                req(&it, 0)
                    .with_slo(0, 1.0, Some(50_000))
                    .with_completion(slot),
            );
        }
        q.set_service_hint_us(400_000);
        let now = Instant::now();
        assert_eq!(q.queued_ahead(now + Duration::from_secs(10)), (3, 3));
        assert!(q.estimated_wait_us() >= 1_200_000);
        for t in &tickets {
            assert!(t.cancel());
        }
        // All three entries are tombstones now: physically queued, but no
        // drain work and no admission occupancy.
        assert_eq!(q.len(), 3, "tombstones still occupy until purged");
        assert_eq!(q.live_len(), 0);
        assert_eq!(q.queued_ahead(now + Duration::from_secs(10)), (0, 0));
        assert_eq!(q.estimated_wait_us(), 0);
        assert_eq!(ledger.total(), 3, "cancels recorded atomically");
    }

    /// Reservation sums beyond the capacity are clamped, earlier classes
    /// first — the queue never promises slots it does not have.
    #[test]
    fn oversubscribed_reservations_are_clamped() {
        let q = ShardQueue::with_slo(3, BackpressurePolicy::Reject, false, false)
            .with_reservations(vec![2, 4]);
        let it = item();
        // Class 1's reserve clamps to 1 (3 - 2); class 0 keeps 2.
        for _ in 0..2 {
            assert!(q.push(req(&it, 0).with_slo(0, 1.0, None)).is_accepted());
        }
        assert!(q.push(req(&it, 0).with_slo(1, 1.0, None)).is_accepted());
        assert_eq!(q.push(req(&it, 0).with_slo(1, 1.0, None)), {
            SubmitOutcome::Rejected
        });
    }
}
