//! Bounded per-shard admission queues with selectable backpressure.
//!
//! Each shard owns one [`ShardQueue`]: a mutex-guarded ring of pending
//! requests plus two condvars (producers wait on `not_full` under the
//! [`BackpressurePolicy::Block`] policy, workers wait on `not_empty`).
//! The queue is the *only* synchronization point between producers and a
//! shard's workers, and it is held only for O(1) push/pop bookkeeping —
//! never across labeling work.

use ams_data::ItemTruth;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// What a full queue does to the *next* submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the producer until a worker frees a slot (lossless; pushes
    /// the queueing upstream — the paper's batch-ingestion shape).
    #[default]
    Block,
    /// Refuse the new request immediately (lossy at the edge; the caller
    /// sees the rejection and can retry elsewhere).
    Reject,
    /// Admit the new request and shed the *oldest* queued one (lossy in
    /// the queue; freshest-first, the surveillance-feed shape where a
    /// stale frame is worth less than a current one).
    ShedOldest,
}

impl BackpressurePolicy {
    /// Stable lowercase name for reports and JSON records.
    pub fn name(&self) -> &'static str {
        match self {
            BackpressurePolicy::Block => "block",
            BackpressurePolicy::Reject => "reject",
            BackpressurePolicy::ShedOldest => "shed-oldest",
        }
    }
}

/// Outcome of one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued; a worker will label it (or deadline-shed it at dequeue).
    Enqueued,
    /// Queued, at the cost of shedding the oldest queued request
    /// ([`BackpressurePolicy::ShedOldest`] on a full queue).
    EnqueuedShedOldest,
    /// Refused: the queue was full ([`BackpressurePolicy::Reject`]) or the
    /// server is shutting down.
    Rejected,
}

/// One labeling request as it sits in a shard queue.
#[derive(Debug, Clone)]
pub struct Request {
    /// The pre-executed ground-truth item to label.
    pub item: Arc<ItemTruth>,
    /// When the request entered the queue (queue-wait clock starts here).
    pub enqueued_at: Instant,
}

#[derive(Debug, Default)]
struct QueueState {
    pending: VecDeque<Request>,
    closed: bool,
    /// Requests dropped from the queue head by [`BackpressurePolicy::ShedOldest`].
    shed_oldest: u64,
}

/// A bounded MPMC queue for one shard.
#[derive(Debug)]
pub struct ShardQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    policy: BackpressurePolicy,
}

impl ShardQueue {
    /// Queue holding at most `capacity` pending requests (min 1).
    pub fn new(capacity: usize, policy: BackpressurePolicy) -> Self {
        Self {
            state: Mutex::new(QueueState::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            policy,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("shard queue").pending.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests shed from the queue head so far (ShedOldest policy).
    pub fn shed_oldest_count(&self) -> u64 {
        self.state.lock().expect("shard queue").shed_oldest
    }

    /// Submit one request under the queue's backpressure policy.
    pub fn push(&self, item: Arc<ItemTruth>) -> SubmitOutcome {
        let mut st = self.state.lock().expect("shard queue");
        if st.closed {
            return SubmitOutcome::Rejected;
        }
        let mut outcome = SubmitOutcome::Enqueued;
        if st.pending.len() >= self.capacity {
            match self.policy {
                BackpressurePolicy::Block => {
                    while st.pending.len() >= self.capacity && !st.closed {
                        st = self.not_full.wait(st).expect("shard queue");
                    }
                    if st.closed {
                        return SubmitOutcome::Rejected;
                    }
                }
                BackpressurePolicy::Reject => return SubmitOutcome::Rejected,
                BackpressurePolicy::ShedOldest => {
                    st.pending.pop_front();
                    st.shed_oldest += 1;
                    outcome = SubmitOutcome::EnqueuedShedOldest;
                }
            }
        }
        st.pending.push_back(Request {
            item,
            enqueued_at: Instant::now(),
        });
        drop(st);
        self.not_empty.notify_one();
        outcome
    }

    /// Pop up to `max_batch` requests, blocking while the queue is open
    /// and empty. Returns an empty vec only when the queue is closed *and*
    /// drained — the worker's signal to exit. Never waits to fill a batch:
    /// coalescing is opportunistic, so an idle server stays low-latency.
    pub fn pop_batch(&self, max_batch: usize) -> Vec<Request> {
        let max_batch = max_batch.max(1);
        let mut st = self.state.lock().expect("shard queue");
        while st.pending.is_empty() && !st.closed {
            st = self.not_empty.wait(st).expect("shard queue");
        }
        let take = st.pending.len().min(max_batch);
        let batch: Vec<Request> = st.pending.drain(..take).collect();
        drop(st);
        if !batch.is_empty() {
            // Freed up to `take` slots; wake blocked producers.
            self.not_full.notify_all();
        }
        batch
    }

    /// Close the queue: subsequent pushes are rejected, blocked producers
    /// wake and see the rejection, and workers drain what remains.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("shard queue");
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_data::{Dataset, DatasetProfile, TruthTable};
    use ams_models::ModelZoo;

    fn item() -> Arc<ItemTruth> {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 1, 5);
        let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        Arc::new(truth.item(0).clone())
    }

    #[test]
    fn reject_policy_refuses_when_full() {
        let q = ShardQueue::new(2, BackpressurePolicy::Reject);
        let it = item();
        assert_eq!(q.push(Arc::clone(&it)), SubmitOutcome::Enqueued);
        assert_eq!(q.push(Arc::clone(&it)), SubmitOutcome::Enqueued);
        assert_eq!(q.push(Arc::clone(&it)), SubmitOutcome::Rejected);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn shed_oldest_drops_head_and_admits() {
        let q = ShardQueue::new(2, BackpressurePolicy::ShedOldest);
        let it = item();
        q.push(Arc::clone(&it));
        q.push(Arc::clone(&it));
        assert_eq!(q.push(Arc::clone(&it)), SubmitOutcome::EnqueuedShedOldest);
        assert_eq!(q.len(), 2, "still at capacity");
        assert_eq!(q.shed_oldest_count(), 1);
    }

    #[test]
    fn block_policy_waits_for_a_slot() {
        let q = Arc::new(ShardQueue::new(1, BackpressurePolicy::Block));
        let it = item();
        q.push(Arc::clone(&it));
        let q2 = Arc::clone(&q);
        let it2 = Arc::clone(&it);
        let producer = std::thread::spawn(move || q2.push(it2));
        // Give the producer time to block, then free the slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let drained = q.pop_batch(1);
        assert_eq!(drained.len(), 1);
        assert_eq!(producer.join().expect("producer"), SubmitOutcome::Enqueued);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_batch_coalesces_up_to_max() {
        let q = ShardQueue::new(16, BackpressurePolicy::Block);
        let it = item();
        for _ in 0..5 {
            q.push(Arc::clone(&it));
        }
        assert_eq!(q.pop_batch(3).len(), 3);
        assert_eq!(q.pop_batch(3).len(), 2, "takes what's there, no waiting");
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = ShardQueue::new(8, BackpressurePolicy::Block);
        let it = item();
        q.push(Arc::clone(&it));
        q.close();
        assert_eq!(q.push(Arc::clone(&it)), SubmitOutcome::Rejected);
        assert_eq!(q.pop_batch(8).len(), 1, "remaining work drains");
        assert!(q.pop_batch(8).is_empty(), "then workers see the close");
    }
}
