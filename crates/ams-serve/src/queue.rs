//! Bounded per-shard admission queues with selectable backpressure.
//!
//! Each shard owns one [`ShardQueue`]: a mutex-guarded ring of pending
//! requests plus two condvars (producers wait on `not_full` under the
//! [`BackpressurePolicy::Block`] policy, workers wait on `not_empty`).
//! The queue is the *only* synchronization point between producers and a
//! shard's workers, and it is held only for O(1) push/pop bookkeeping —
//! never across labeling work.

use ams_data::ItemTruth;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a full queue does to the *next* submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Block the producer until a worker frees a slot (lossless; pushes
    /// the queueing upstream — the paper's batch-ingestion shape).
    #[default]
    Block,
    /// Refuse the new request immediately (lossy at the edge; the caller
    /// sees the rejection and can retry elsewhere).
    Reject,
    /// Admit the new request and shed the *oldest* queued one (lossy in
    /// the queue; freshest-first, the surveillance-feed shape where a
    /// stale frame is worth less than a current one).
    ShedOldest,
}

impl BackpressurePolicy {
    /// Stable lowercase name for reports and JSON records.
    pub fn name(&self) -> &'static str {
        match self {
            BackpressurePolicy::Block => "block",
            BackpressurePolicy::Reject => "reject",
            BackpressurePolicy::ShedOldest => "shed-oldest",
        }
    }
}

/// Outcome of one submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued; a worker will label it (or deadline-shed it at dequeue).
    Enqueued,
    /// Queued, at the cost of shedding the oldest queued request
    /// ([`BackpressurePolicy::ShedOldest`] on a full queue).
    EnqueuedShedOldest,
    /// Refused: the queue was full ([`BackpressurePolicy::Reject`]) or the
    /// server is shutting down.
    Rejected,
}

/// One labeling request as it sits in a shard queue.
#[derive(Debug, Clone)]
pub struct Request {
    /// The pre-executed ground-truth item to label.
    pub item: Arc<ItemTruth>,
    /// The item's affinity signature (0 under hash routing). Workers use
    /// it to assemble signature-pure batches from a mixed queue.
    pub signature: u64,
    /// When the request entered the queue (queue-wait clock starts here).
    pub enqueued_at: Instant,
}

#[derive(Debug, Default)]
struct QueueState {
    pending: VecDeque<Request>,
    closed: bool,
    /// Requests dropped from the queue head by [`BackpressurePolicy::ShedOldest`].
    shed_oldest: u64,
}

/// A bounded MPMC queue for one shard.
#[derive(Debug)]
pub struct ShardQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    policy: BackpressurePolicy,
}

impl ShardQueue {
    /// Queue holding at most `capacity` pending requests (min 1).
    pub fn new(capacity: usize, policy: BackpressurePolicy) -> Self {
        Self {
            state: Mutex::new(QueueState::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            policy,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("shard queue").pending.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Requests shed from the queue head so far (ShedOldest policy).
    pub fn shed_oldest_count(&self) -> u64 {
        self.state.lock().expect("shard queue").shed_oldest
    }

    /// Submit one request under the queue's backpressure policy.
    /// `signature` is the item's affinity fingerprint (0 under hash
    /// routing); it rides along so dequeues can group same-signature work.
    pub fn push(&self, item: Arc<ItemTruth>, signature: u64) -> SubmitOutcome {
        let mut st = self.state.lock().expect("shard queue");
        if st.closed {
            return SubmitOutcome::Rejected;
        }
        let mut outcome = SubmitOutcome::Enqueued;
        if st.pending.len() >= self.capacity {
            match self.policy {
                BackpressurePolicy::Block => {
                    while st.pending.len() >= self.capacity && !st.closed {
                        st = self.not_full.wait(st).expect("shard queue");
                    }
                    if st.closed {
                        return SubmitOutcome::Rejected;
                    }
                }
                BackpressurePolicy::Reject => return SubmitOutcome::Rejected,
                BackpressurePolicy::ShedOldest => {
                    st.pending.pop_front();
                    st.shed_oldest += 1;
                    outcome = SubmitOutcome::EnqueuedShedOldest;
                }
            }
        }
        st.pending.push_back(Request {
            item,
            signature,
            enqueued_at: Instant::now(),
        });
        drop(st);
        self.not_empty.notify_one();
        outcome
    }

    /// Pop up to `max_batch` requests, blocking while the queue is open
    /// and empty. Returns an empty vec only when the queue is closed *and*
    /// drained — the worker's signal to exit. Equivalent to
    /// [`ShardQueue::pop_batch_lingering`] with a zero linger: coalescing
    /// is opportunistic, so an idle server stays low-latency.
    ///
    /// The batch is assembled *signature-first*: the head request (always
    /// served — no starvation) sets the batch's signature, every queued
    /// request sharing it joins next (their model sets overlap most, so
    /// they coalesce best), and the batch is then topped up with the
    /// remaining requests in decreasing signature *overlap* with the head
    /// (shared fingerprint bits = shared models = shared setup charges),
    /// age breaking ties. Under hash routing every signature is 0, which
    /// degenerates to the plain FIFO drain. The head is always served, so
    /// no request starves; a request can be overtaken only while batches
    /// ahead of it keep finding better-matching work.
    pub fn pop_batch(&self, max_batch: usize) -> Vec<Request> {
        self.pop_batch_lingering(max_batch, Duration::ZERO)
    }

    /// [`ShardQueue::pop_batch`] with a *batching linger*: once the first
    /// request is available, wait up to `linger` for the batch to fill
    /// before taking it (the classic serving trade — a bounded latency
    /// deposit buys a fuller, better-amortized batch on a lightly loaded
    /// shard). A closed queue never lingers: drain stays prompt.
    pub fn pop_batch_lingering(&self, max_batch: usize, linger: Duration) -> Vec<Request> {
        let max_batch = max_batch.max(1);
        let mut st = self.state.lock().expect("shard queue");
        while st.pending.is_empty() && !st.closed {
            st = self.not_empty.wait(st).expect("shard queue");
        }
        if !linger.is_zero() && !st.closed && st.pending.len() < max_batch {
            let deadline = Instant::now() + linger;
            while st.pending.len() < max_batch && !st.closed {
                let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                    break;
                };
                let (guard, timeout) = self
                    .not_empty
                    .wait_timeout(st, remaining)
                    .expect("shard queue");
                st = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        let take = st.pending.len().min(max_batch);
        let mut batch: Vec<Request> = Vec::with_capacity(take);
        if take > 0 {
            let head_sig = st.pending[0].signature;
            // Batch-member indices in batch order: same-signature first,
            // then the oldest of the rest, each group in queue order.
            let mut order: Vec<usize> = Vec::with_capacity(take);
            for (i, req) in st.pending.iter().enumerate() {
                if req.signature == head_sig {
                    order.push(i);
                    if order.len() == take {
                        break;
                    }
                }
            }
            if order.len() < take {
                // Fill by similarity: most shared fingerprint bits first,
                // oldest first among equals.
                let mut rest: Vec<(u32, usize)> = st
                    .pending
                    .iter()
                    .enumerate()
                    .filter(|(_, req)| req.signature != head_sig)
                    .map(|(i, req)| ((req.signature & head_sig).count_ones(), i))
                    .collect();
                rest.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                for (_, i) in rest {
                    order.push(i);
                    if order.len() == take {
                        break;
                    }
                }
            }
            // Remove highest-index-first so earlier indices stay valid,
            // then emit in batch order.
            let mut desc = order.clone();
            desc.sort_unstable_by(|a, b| b.cmp(a));
            let mut tagged: Vec<(usize, Request)> = Vec::with_capacity(take);
            for i in desc {
                tagged.push((i, st.pending.remove(i).expect("picked index in range")));
            }
            for want in order {
                let pos = tagged
                    .iter()
                    .position(|&(i, _)| i == want)
                    .expect("every picked index was removed");
                batch.push(tagged.swap_remove(pos).1);
            }
        }
        drop(st);
        if !batch.is_empty() {
            // Freed up to `take` slots; wake blocked producers.
            self.not_full.notify_all();
        }
        batch
    }

    /// Close the queue: subsequent pushes are rejected, blocked producers
    /// wake and see the rejection, and workers drain what remains.
    pub fn close(&self) {
        let mut st = self.state.lock().expect("shard queue");
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_data::{Dataset, DatasetProfile, TruthTable};
    use ams_models::ModelZoo;

    fn item() -> Arc<ItemTruth> {
        let zoo = ModelZoo::standard();
        let ds = Dataset::generate(DatasetProfile::Coco2017, 1, 5);
        let truth = TruthTable::build(&zoo, &zoo.catalog(), &ds, 0.5);
        Arc::new(truth.item(0).clone())
    }

    #[test]
    fn reject_policy_refuses_when_full() {
        let q = ShardQueue::new(2, BackpressurePolicy::Reject);
        let it = item();
        assert_eq!(q.push(Arc::clone(&it), 0), SubmitOutcome::Enqueued);
        assert_eq!(q.push(Arc::clone(&it), 0), SubmitOutcome::Enqueued);
        assert_eq!(q.push(Arc::clone(&it), 0), SubmitOutcome::Rejected);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn shed_oldest_drops_head_and_admits() {
        let q = ShardQueue::new(2, BackpressurePolicy::ShedOldest);
        let it = item();
        q.push(Arc::clone(&it), 0);
        q.push(Arc::clone(&it), 0);
        assert_eq!(
            q.push(Arc::clone(&it), 0),
            SubmitOutcome::EnqueuedShedOldest
        );
        assert_eq!(q.len(), 2, "still at capacity");
        assert_eq!(q.shed_oldest_count(), 1);
    }

    #[test]
    fn block_policy_waits_for_a_slot() {
        let q = Arc::new(ShardQueue::new(1, BackpressurePolicy::Block));
        let it = item();
        q.push(Arc::clone(&it), 0);
        let q2 = Arc::clone(&q);
        let it2 = Arc::clone(&it);
        let producer = std::thread::spawn(move || q2.push(it2, 0));
        // Give the producer time to block, then free the slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let drained = q.pop_batch(1);
        assert_eq!(drained.len(), 1);
        assert_eq!(producer.join().expect("producer"), SubmitOutcome::Enqueued);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_batch_coalesces_up_to_max() {
        let q = ShardQueue::new(16, BackpressurePolicy::Block);
        let it = item();
        for _ in 0..5 {
            q.push(Arc::clone(&it), 0);
        }
        assert_eq!(q.pop_batch(3).len(), 3);
        assert_eq!(q.pop_batch(3).len(), 2, "takes what's there, no waiting");
    }

    #[test]
    fn pop_batch_groups_head_signature_first_then_tops_up() {
        let q = ShardQueue::new(16, BackpressurePolicy::Block);
        let it = item();
        // Interleaved signatures: A B A B A
        for sig in [7u64, 9, 7, 9, 7] {
            q.push(Arc::clone(&it), sig);
        }
        let batch = q.pop_batch(4);
        assert_eq!(batch.len(), 4, "fills from the rest after the sig group");
        let sigs: Vec<u64> = batch.iter().map(|r| r.signature).collect();
        // All three sig-7 requests (the head's signature) come first, then
        // the oldest sig-9 tops the batch up.
        assert_eq!(sigs, vec![7, 7, 7, 9]);
        // The remaining request is the younger sig-9.
        let rest = q.pop_batch(4);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].signature, 9);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = ShardQueue::new(8, BackpressurePolicy::Block);
        let it = item();
        q.push(Arc::clone(&it), 0);
        q.close();
        assert_eq!(q.push(Arc::clone(&it), 0), SubmitOutcome::Rejected);
        assert_eq!(q.pop_batch(8).len(), 1, "remaining work drains");
        assert!(q.pop_batch(8).is_empty(), "then workers see the close");
    }
}
